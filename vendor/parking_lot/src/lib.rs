//! Offline stand-in for the `parking_lot` crate.
//!
//! The container building this workspace has no network access, so the real
//! crates.io `parking_lot` cannot be fetched. This shim exposes the small
//! API surface the workspace uses (`RwLock` with non-poisoning `read` /
//! `write`, `Mutex` with non-poisoning `lock`) on top of `std::sync`.
//! Poisoning is deliberately swallowed — matching parking_lot semantics, a
//! panicking holder does not poison the lock for later users.

use std::sync::Mutex as StdMutex;
use std::sync::RwLock as StdRwLock;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_roundtrip_and_no_poisoning() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(1));
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 42);
        let mut owned = Mutex::new(7);
        *owned.get_mut() += 1;
        assert_eq!(owned.into_inner(), 8);
    }

    #[test]
    fn panicking_writer_does_not_poison() {
        use std::sync::Arc;
        let lock = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }
}
