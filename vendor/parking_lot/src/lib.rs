//! Offline stand-in for the `parking_lot` crate.
//!
//! The container building this workspace has no network access, so the real
//! crates.io `parking_lot` cannot be fetched. This shim exposes the small
//! API surface the workspace uses (`RwLock` with non-poisoning `read` /
//! `write`) on top of `std::sync::RwLock`. Poisoning is deliberately
//! swallowed — matching parking_lot semantics, a panicking writer does not
//! poison the lock for later readers.

use std::sync::RwLock as StdRwLock;

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn panicking_writer_does_not_poison() {
        use std::sync::Arc;
        let lock = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.read(), 0);
    }
}
