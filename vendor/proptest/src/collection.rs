//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A range of collection sizes (stub of upstream's `SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..self.hi_exclusive)
    }
}

/// Generates `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element`; duplicates collapse, so the set may
/// be smaller than the drawn size (same caveat as upstream).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(0u8..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_collapses_duplicates() {
        let mut rng = TestRng::for_test("set");
        let s = btree_set(0u8..3, 0..20);
        for _ in 0..50 {
            assert!(s.generate(&mut rng).len() <= 3);
        }
    }
}
