//! Case counting, per-test deterministic RNGs, and the case-failure error.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Cases run per property when `PROPTEST_CASES` is unset.
pub const DEFAULT_CASES: u32 = 64;

/// Number of cases to run per property.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Block-level configuration, as accepted by upstream's
/// `#![proptest_config(...)]` attribute. Only the `cases` knob is
/// implemented.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run per property in the configured block.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; deterministic per test name so failures
/// reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: SmallRng,
}

impl TestRng {
    /// A deterministic RNG derived from the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h),
        }
    }
}

/// Why one generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A case failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_test_rngs_are_deterministic_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        let mut c = TestRng::for_test("beta");
        assert_ne!(a.rng.next_u64(), c.rng.next_u64());
    }

    #[test]
    fn default_case_count_is_positive() {
        assert!(cases() > 0);
    }
}
