//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, integer-range / tuple / collection / array
//! strategies, and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Differences from upstream: no shrinking (a failing
//! case reports its case number and message only), and the case count
//! defaults to [`test_runner::DEFAULT_CASES`] (override with the
//! `PROPTEST_CASES` environment variable).

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The imports property tests conventionally glob in.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run a body over generated inputs.
///
/// Supported form (the one upstream documents first):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0i64..4, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Upstream's block-level config form: an explicit case count for the
    // block overrides the default (the `PROPTEST_CASES` environment
    // variable still caps it, so CI can dial everything down at once).
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases().min(($cfg).cases);
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!("property failed at case {}/{}: {}", case + 1, cases, e);
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!("property failed at case {}/{}: {}", case + 1, cases, e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
