//! The value-generation [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// `generate` directly produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying generation a bounded
    /// number of times before panicking.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (0u64..10, 5i64..6).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn filter_and_just() {
        let mut rng = TestRng::for_test("filter");
        let even = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
