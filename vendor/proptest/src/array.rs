//! Fixed-size array strategies (`uniform2`, …).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `[T; N]` arrays with every element drawn from `element`.
pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArrayStrategy<S, N> {
    UniformArrayStrategy { element }
}

/// Generates `[T; 2]` arrays.
pub fn uniform2<S: Strategy>(element: S) -> UniformArrayStrategy<S, 2> {
    uniform(element)
}

/// Generates `[T; 3]` arrays.
pub fn uniform3<S: Strategy>(element: S) -> UniformArrayStrategy<S, 3> {
    uniform(element)
}

/// Generates `[T; 4]` arrays.
pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
    uniform(element)
}

/// See [`uniform`].
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform2_draws_independent_elements() {
        let mut rng = TestRng::for_test("uniform2");
        let s = uniform2(0i64..100);
        let mut distinct = false;
        for _ in 0..50 {
            let [a, b] = s.generate(&mut rng);
            assert!((0..100).contains(&a) && (0..100).contains(&b));
            distinct |= a != b;
        }
        assert!(distinct, "elements should not always coincide");
    }
}
