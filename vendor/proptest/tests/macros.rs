//! Smoke tests for the `proptest!` macro plumbing: generated inputs reach
//! the body, assertions fail the test, and assumptions skip cases.

use proptest::prelude::*;
use proptest::strategy::Strategy;

proptest! {
    #[test]
    fn bodies_run_and_inputs_are_in_range(x in 0u32..10, v in prop::collection::vec(0i64..4, 1..5)) {
        prop_assert!(x < 10);
        prop_assert!((1..5).contains(&v.len()));
        prop_assert!(v.iter().all(|&e| (0..4).contains(&e)));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn violated_assertions_fail_the_test(x in 0u32..10) {
        prop_assert!(x > 100, "x was {}", x);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn violated_eq_assertions_fail_the_test(x in 5u32..6) {
        prop_assert_eq!(x, 7);
    }

    #[test]
    fn assumptions_skip_cases(x in 0u32..10) {
        prop_assume!(x % 2 == 0);
        prop_assert!(x % 2 == 0);
    }

    #[test]
    fn maps_and_tuples_compose(pair in (0u64..5, 0u64..5).prop_map(|(a, b)| a * 10 + b)) {
        prop_assert!(pair <= 44);
    }
}

#[test]
fn case_count_is_respected() {
    // The macro loop must execute `cases()` times; count via side effect.
    use std::sync::atomic::{AtomicU32, Ordering};
    static COUNT: AtomicU32 = AtomicU32::new(0);
    proptest! {
        #[allow(unused)]
        fn counted(_x in 0u8..2) {
            COUNT.fetch_add(1, Ordering::SeqCst);
        }
    }
    counted();
    assert_eq!(COUNT.load(Ordering::SeqCst), proptest::test_runner::cases());
}
