//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the criterion 0.5 API the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`] (with `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistical analysis: each
//! benchmark runs an adaptive timing loop and prints the mean time per
//! iteration. Measurement windows are honored but capped so `cargo bench`
//! stays quick.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark measurement window cap (the real criterion defaults to 5s
/// per benchmark; a stub without statistics does not need that long).
const MAX_MEASURE: Duration = Duration::from_millis(400);
const MAX_WARMUP: Duration = Duration::from_millis(100);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: MAX_WARMUP,
            measure: MAX_MEASURE,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, self.warm_up, self.measure, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measure: self.measure,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measure: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes sample counts; the stub records nothing per-sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window (capped at the stub's maximum).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d.min(MAX_WARMUP);
        self
    }

    /// Sets the measurement window (capped at the stub's maximum).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d.min(MAX_MEASURE);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.warm_up,
            self.measure,
            &mut f,
        );
        self
    }

    /// Runs one benchmark that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.warm_up,
            self.measure,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Handed to benchmark closures; `iter` runs and times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `payload` over an adaptively chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // One probe iteration sizes the batch.
        let probe_start = Instant::now();
        black_box(payload());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let budget = self.elapsed.max(Duration::from_millis(1));
        let batch = (budget.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, warm_up: Duration, measure: Duration, f: &mut F) {
    // Warm-up pass: small budget, result discarded.
    let mut warm = Bencher {
        iters: 0,
        elapsed: warm_up.min(MAX_WARMUP),
    };
    f(&mut warm);
    // Measurement pass.
    let mut bencher = Bencher {
        iters: 0,
        elapsed: measure.min(MAX_MEASURE),
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {name:<48} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "bench {name:<48} {:>14}/iter  ({} iters)",
        fmt_ns(per_iter),
        bencher.iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one group runner, mirroring upstream's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_payload() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1));
            ran = true;
        });
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| ()));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
    }
}
