//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of the rand 0.8 API the workspace uses: [`SeedableRng`] with
//! `seed_from_u64`, [`Rng::gen_range`] over integer ranges, `gen_bool`, and
//! [`rngs::SmallRng`] as a seeded xoshiro256++ generator. Distribution
//! details differ from upstream rand (no effort is made to match its value
//! streams); the workspace only relies on determinism given a seed.

use std::ops::{Bound, RangeBounds};

/// RNGs that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types samplable uniformly from a range (stub of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Smallest representable value (used for unbounded lower bounds).
    const MIN_VALUE: Self;
    /// Largest representable value (used for unbounded upper bounds).
    const MAX_VALUE: Self;
    /// The value one above `v`; saturates at the maximum.
    fn successor(v: Self) -> Self;
    /// The value one below `v`; saturates at the minimum.
    fn predecessor(v: Self) -> Self;
    /// Uniform sample from the inclusive interval `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            fn successor(v: Self) -> Self {
                v.saturating_add(1)
            }
            fn predecessor(v: Self) -> Self {
                v.saturating_sub(1)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // Modulo bias is acceptable for a test/bench shim: span is
                // astronomically smaller than 2^64 in every workspace use.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing RNG trait: `next_u64` plus derived sampling helpers.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => T::successor(x),
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => T::predecessor(x),
            Bound::Unbounded => T::MAX_VALUE,
        };
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(self, lo, hi)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ seeded through splitmix64 — deterministic, fast, and
    /// statistically solid for test/bench use.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            assert!(x < 10);
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: u32 = rng.gen_range(3..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
