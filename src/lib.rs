//! # join-query-inference
//!
//! A complete Rust implementation of *Interactive Inference of Join
//! Queries* (Angela Bonifati, Radu Ciucanu, Sławek Staworko — EDBT 2014):
//! a user who cannot write queries labels tuples of the Cartesian product
//! `R × P` as positive or negative examples, and the system infers the
//! equijoin predicate the user has in mind while asking as few questions as
//! possible — with no knowledge of schemas or integrity constraints.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`relation`] ([`jqi_relation`]) — typed values, schemas, relations,
//!   two-relation instances, the pair space Ω, equijoin/semijoin
//!   evaluation, CSV I/O.
//! * [`core`] ([`jqi_core`]) — the paper's theory (most specific predicates,
//!   consistency, certain/uninformative tuples, entropy) and the
//!   interaction strategies (RND, BU, TD, L1S, L2S, LkS, minimax-optimal),
//!   plus the inference engine and a step-by-step session API.
//! * [`semijoin`] ([`jqi_semijoin`]) — §6: the NP-complete semijoin
//!   consistency problem, an exact solver, the 3SAT reduction, a DPLL SAT
//!   solver, and greedy heuristics.
//! * [`datagen`] ([`jqi_datagen`]) — the synthetic generator of §5.2 and a
//!   TPC-H-shaped generator standing in for `dbgen` (§5.1).
//! * [`server`] ([`jqi_server`]) — a concurrent multi-session inference
//!   service: a sharded thread-safe session table over one shared
//!   universe, class-addressed batched answers, and session
//!   snapshot/restore by deterministic replay — plus the HTTP/JSON
//!   gateway ([`jqi_server::http`]) with multi-universe tenancy.
//! * [`net`] ([`jqi_net`]) — the dependency-free HTTP/1.1 transport the
//!   gateway runs on: an epoll + thread-pool server and a tiny
//!   keep-alive client.
//!
//! # Quickstart
//!
//! ```
//! use join_query_inference::prelude::*;
//!
//! // Two tables the user cannot write a join query over.
//! let mut b = InstanceBuilder::new();
//! b.relation_r("Flight", &["From", "To", "Airline"]);
//! b.relation_p("Hotel", &["City", "Discount"]);
//! b.row_r(&[Value::str("Paris"), Value::str("Lille"), Value::str("AF")]);
//! b.row_r(&[Value::str("Lille"), Value::str("NYC"), Value::str("AA")]);
//! b.row_p(&[Value::str("Lille"), Value::str("AF")]);
//! b.row_p(&[Value::str("NYC"), Value::str("AA")]);
//! let instance = b.build().unwrap();
//!
//! // The "user": labels pairs according to the hidden query
//! // Flight.To = Hotel.City.
//! let goal = predicate_from_names(&instance, &[("To", "City")]).unwrap();
//! let universe = Universe::build(instance);
//! let mut oracle = PredicateOracle::new(goal.clone());
//!
//! // Infer with the top-down strategy.
//! let run = run_inference(&universe, &mut TopDown::new(), &mut oracle).unwrap();
//! assert_eq!(
//!     universe.instance().equijoin(&run.predicate),
//!     universe.instance().equijoin(&goal),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jqi_core as core;
pub use jqi_datagen as datagen;
pub use jqi_net as net;
pub use jqi_relation as relation;
pub use jqi_semijoin as semijoin;
pub use jqi_server as server;

/// One-stop imports for applications embedding the inference loop.
pub mod prelude {
    pub use jqi_core::engine::{
        run_inference, AdversarialOracle, FnOracle, Oracle, PredicateOracle, RunResult,
    };
    pub use jqi_core::session::{Candidate, OwnedSession, Session};
    pub use jqi_core::strategy::{
        BottomUp, DynStrategy, Lookahead, Optimal, Random, Strategy, StrategyConfig, StrategyKind,
        TopDown,
    };
    pub use jqi_core::universe::Universe;
    pub use jqi_core::{predicate_from_names, ClassState, InferenceState, Label, Sample};
    pub use jqi_relation::{BitSet, Instance, InstanceBuilder, Value};
    pub use jqi_server::{ServerConfig, SessionManager, SessionSnapshot};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let u = Universe::build(jqi_core::paper::example_2_1());
        assert_eq!(u.num_classes(), 12);
        let _ = StrategyKind::PAPER;
        let _ = Label::Positive;
    }
}
