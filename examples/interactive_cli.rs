//! A real interactive session on the terminal: YOU are the user.
//!
//! Loads the flight & hotel instance (or two CSV files given as arguments),
//! presents tuples chosen by the L2S strategy, and infers the join from
//! your y/n answers. This is the paper's Algorithm 1 with a human oracle.
//!
//! ```text
//! cargo run --example interactive_cli                      # flight & hotel
//! cargo run --example interactive_cli r.csv p.csv          # your own data
//! ```
//!
//! Answer `y` (positive), `n` (negative), or `q` to stop early and accept
//! the most specific predicate consistent with the answers so far.

use join_query_inference::prelude::*;
use join_query_inference::relation::csv::relation_from_csv;
use join_query_inference::relation::{Instance, Interner};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn load_instance() -> Instance {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => join_query_inference::core::paper::flight_hotel(),
        [r_path, p_path] => {
            let interner = Arc::new(Interner::new());
            let r_text = std::fs::read_to_string(r_path).expect("readable R csv");
            let p_text = std::fs::read_to_string(p_path).expect("readable P csv");
            let r = relation_from_csv(&interner, "R", &r_text).expect("valid R csv");
            let p = relation_from_csv(&interner, "P", &p_text).expect("valid P csv");
            Instance::new(interner, r, p).expect("disjoint attribute names")
        }
        _ => {
            eprintln!("usage: interactive_cli [R.csv P.csv]");
            std::process::exit(2);
        }
    }
}

fn main() {
    let instance = load_instance();
    println!("{instance}");
    let header: Vec<String> = instance
        .r()
        .schema()
        .attrs()
        .iter()
        .chain(instance.p().schema().attrs())
        .cloned()
        .collect();
    println!("columns: {}", header.join(" | "));
    println!("label each proposed tuple: y = belongs to your join, n = does not, q = stop\n");

    // The owned-session API: the session co-owns the universe through an
    // Arc (no borrow), exactly as a long-running server would hold it.
    let universe = Arc::new(Universe::build(instance));
    let mut session =
        OwnedSession::with_config(Arc::clone(&universe), &StrategyConfig::Lks { depth: 2 });
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();

    loop {
        let candidate = match session.next() {
            Ok(Some(c)) => c,
            Ok(None) => break,
            Err(e) => {
                eprintln!("error: could not pick the next tuple: {e}");
                std::process::exit(1);
            }
        };
        let values: Vec<String> = candidate
            .values(&universe)
            .iter()
            .map(|v| v.to_string())
            .collect();
        print!("({})  [y/n/q] ", values.join(" | "));
        std::io::stdout().flush().expect("flush stdout");
        let answer = lines.next().and_then(Result::ok).unwrap_or_default();
        let label = match answer.trim() {
            "y" | "Y" => Label::Positive,
            "q" | "Q" | "" => break,
            _ => Label::Negative,
        };
        if let Err(e) = session.answer(label) {
            // A clean stop, not a panic: with informative-only strategies
            // this is unreachable, but custom data or future strategies
            // deserve a real message (Algorithm 1 lines 6–7).
            eprintln!();
            eprintln!("error: {e}");
            eprintln!("your answers admit no equijoin predicate — stopping early");
            break;
        }
    }

    let theta = session.inferred_predicate();
    println!();
    println!(
        "after {} answers the inferred join predicate is:\n  {}",
        session.interactions(),
        universe.instance().predicate_string(&theta)
    );
    let result = universe.instance().equijoin(&theta);
    println!(
        "it selects {} of the {} product tuples",
        result.len(),
        universe.total_tuples()
    );
}
