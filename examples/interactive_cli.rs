//! A real interactive session on the terminal: YOU are the user.
//!
//! Loads the flight & hotel instance (or two CSV files given as arguments),
//! presents tuples chosen by the L2S strategy, and infers the join from
//! your y/n answers. This is the paper's Algorithm 1 with a human oracle.
//!
//! ```text
//! cargo run --example interactive_cli                      # flight & hotel
//! cargo run --example interactive_cli r.csv p.csv          # your own data
//! ```
//!
//! Answer `y` (positive), `n` (negative), or `q` to stop early and accept
//! the most specific predicate consistent with the answers so far.

use join_query_inference::prelude::*;
use join_query_inference::relation::csv::relation_from_csv;
use join_query_inference::relation::{Instance, Interner};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn load_instance() -> Instance {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => join_query_inference::core::paper::flight_hotel(),
        [r_path, p_path] => {
            let interner = Arc::new(Interner::new());
            let r_text = std::fs::read_to_string(r_path).expect("readable R csv");
            let p_text = std::fs::read_to_string(p_path).expect("readable P csv");
            let r = relation_from_csv(&interner, "R", &r_text).expect("valid R csv");
            let p = relation_from_csv(&interner, "P", &p_text).expect("valid P csv");
            Instance::new(interner, r, p).expect("disjoint attribute names")
        }
        _ => {
            eprintln!("usage: interactive_cli [R.csv P.csv]");
            std::process::exit(2);
        }
    }
}

fn main() {
    let instance = load_instance();
    println!("{instance}");
    let header: Vec<String> = instance
        .r()
        .schema()
        .attrs()
        .iter()
        .chain(instance.p().schema().attrs())
        .cloned()
        .collect();
    println!("columns: {}", header.join(" | "));
    println!("label each proposed tuple: y = belongs to your join, n = does not, q = stop\n");

    let universe = Universe::build(instance);
    let mut session = Session::new(&universe, Lookahead::l2s());
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();

    while let Some(candidate) = session.next().expect("strategy never fails") {
        let values: Vec<String> = candidate.values.iter().map(|v| v.to_string()).collect();
        print!("({})  [y/n/q] ", values.join(" | "));
        std::io::stdout().flush().expect("flush stdout");
        let answer = lines.next().and_then(Result::ok).unwrap_or_default();
        match answer.trim() {
            "y" | "Y" => session.answer(Label::Positive).expect("consistent"),
            "q" | "Q" | "" => break,
            _ => session.answer(Label::Negative).expect("consistent"),
        }
    }

    let theta = session.inferred_predicate();
    println!();
    println!(
        "after {} answers the inferred join predicate is:\n  {}",
        session.interactions(),
        universe.instance().predicate_string(&theta)
    );
    let result = universe.instance().equijoin(&theta);
    println!(
        "it selects {} of the {} product tuples",
        result.len(),
        universe.total_tuples()
    );
}
