//! A miniature crowdsourcing backend on `jqi_server`.
//!
//! One shared universe (the paper's flight & hotel instance), many
//! concurrent user sessions driven from worker threads — answers arrive
//! class-addressed and batched, one session is "interrupted" and restored
//! from its JSON snapshot mid-run, and every inferred predicate is printed
//! at the end.
//!
//! ```text
//! cargo run --example server_demo
//! ```

use join_query_inference::prelude::*;
use std::sync::Arc;
use std::thread;

fn main() {
    let instance = join_query_inference::core::paper::flight_hotel();
    let universe = Arc::new(Universe::build(instance));
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig::default(),
    ));

    // Every "user" wants a different goal query; the service mixes
    // strategies freely because sessions are heterogeneous.
    let goals = join_query_inference::core::lattice::non_nullable_predicates(&universe, 10_000)
        .expect("tiny lattice");
    let configs = [
        StrategyConfig::Lks { depth: 2 },
        StrategyConfig::Bu,
        StrategyConfig::Td,
        StrategyConfig::Rnd { seed: 7 },
    ];
    let users: Vec<(u64, BitSet)> = goals
        .iter()
        .cycle()
        .take(12)
        .enumerate()
        .map(|(i, goal)| {
            let id = manager
                .create_session(configs[i % configs.len()].clone())
                .expect("in-memory");
            (id, goal.clone())
        })
        .collect();
    println!(
        "serving {} concurrent sessions over one universe",
        manager.session_count()
    );

    // Worker threads drive the sessions; answers go through the
    // class-addressed batch path, as they would from a task queue.
    let handles: Vec<_> = users
        .chunks(3)
        .map(|chunk| {
            let manager = Arc::clone(&manager);
            let universe = Arc::clone(&universe);
            let chunk = chunk.to_vec();
            thread::spawn(move || {
                for (id, goal) in chunk {
                    while let Some(q) = manager.next_question(id).expect("live session") {
                        let label = if goal.is_subset(universe.sig(q.class)) {
                            Label::Positive
                        } else {
                            Label::Negative
                        };
                        manager.answer(id, q.class, label).expect("honest oracle");
                    }
                }
            })
        })
        .collect();

    // Meanwhile, "crash" the first session and bring it back from its
    // snapshot — deterministic replay makes the restore exact.
    let (first_id, _) = users[0];
    let json = manager
        .snapshot(first_id)
        .expect("live session")
        .to_json_string();
    println!(
        "snapshot of session {first_id} is {} bytes of JSON",
        json.len()
    );
    let snapshot = SessionSnapshot::from_json(&json).expect("well-formed");
    let standby = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
    standby.restore(&snapshot).expect("history replays");
    println!(
        "restored session {first_id} on a standby manager at {} answers",
        standby.interactions(first_id).expect("live session")
    );

    for handle in handles {
        handle.join().expect("no panics");
    }

    println!("\ninferred join predicates:");
    for (id, goal) in &users {
        let theta = manager.inferred_predicate(*id).expect("live session");
        let interactions = manager.interactions(*id).expect("live session");
        assert_eq!(
            universe.instance().equijoin(&theta),
            universe.instance().equijoin(goal),
            "session {id} missed its goal"
        );
        println!(
            "  session {id:>2}: {} after {interactions} answers",
            universe.instance().predicate_string(&theta)
        );
    }
}
