//! Crowdsourcing cost estimation (§1, §7).
//!
//! The paper motivates minimizing interactions by crowdsourcing economics:
//! every label is a paid microtask. This example prices the inference of a
//! hidden join on synthetic data under each strategy, at a fixed cost per
//! label, and shows the skyline strategies' savings — including the
//! worst-case guarantee against an adversarial (maximally unhelpful)
//! worker.
//!
//! Run with `cargo run --release --example crowdsourcing_cost`.

use join_query_inference::datagen::SyntheticConfig;
use join_query_inference::prelude::*;

const CENTS_PER_LABEL: f64 = 5.0;

fn main() {
    let cfg = SyntheticConfig::new(3, 3, 50, 100);
    println!("dataset: synthetic {cfg}, hidden joins of size 1..=3");
    println!("microtask price: {CENTS_PER_LABEL} ¢/label");
    println!();

    let universe = Universe::build(cfg.generate(7));
    let groups = join_query_inference::core::lattice::goals_by_size(&universe, 200_000)
        .expect("lattice fits in memory");

    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>11}",
        "|θG|", "goals", "strategy", "labels", "cost"
    );
    for size in 1..=3usize {
        let Some(goals) = groups.get(size) else {
            continue;
        };
        let sample: Vec<_> = goals.iter().take(10).collect();
        if sample.is_empty() {
            continue;
        }
        for kind in StrategyKind::PAPER {
            let mut total = 0usize;
            for goal in &sample {
                let mut strategy = kind.build(99);
                let mut oracle = PredicateOracle::new((*goal).clone());
                let run = run_inference(&universe, strategy.as_mut(), &mut oracle)
                    .expect("consistent oracle");
                total += run.interactions;
            }
            let mean = total as f64 / sample.len() as f64;
            println!(
                "{:>6} {:>7} {:>9} {:>9.1} {:>10.1}¢",
                size,
                sample.len(),
                kind.name(),
                mean,
                mean * CENTS_PER_LABEL
            );
        }
        println!();
    }

    // Worst-case budget: an adversarial worker on the paper's Example 2.1.
    let tiny = Universe::build(join_query_inference::core::paper::example_2_1());
    let optimal =
        join_query_inference::core::strategy::optimal_worst_case(&tiny, 14).expect("12 classes");
    println!(
        "worst-case budget on Example 2.1: {} labels ({}¢) under the \
         minimax-optimal strategy",
        optimal,
        optimal as f64 * CENTS_PER_LABEL
    );
    for kind in [StrategyKind::Bu, StrategyKind::Td, StrategyKind::L2s] {
        let mut strategy = kind.build(0);
        let mut adversary = AdversarialOracle::new();
        let run = run_inference(&tiny, strategy.as_mut(), &mut adversary)
            .expect("adversary stays consistent");
        println!(
            "  {:>3} against an adversarial worker: {} labels ({}¢)",
            kind.name(),
            run.interactions,
            run.interactions as f64 * CENTS_PER_LABEL
        );
    }
}
