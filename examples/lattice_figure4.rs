//! Regenerates Figure 4: the lattice of join predicates for Example 2.1,
//! as a Graphviz DOT graph on stdout.
//!
//! ```text
//! cargo run --example lattice_figure4 > figure4.dot
//! dot -Tpng figure4.dot -o figure4.png     # if graphviz is installed
//! ```
//!
//! Boxed nodes have a corresponding tuple in the Cartesian product (the
//! twelve T-equivalence classes of Figure 3); ellipses are the remaining
//! non-nullable predicates plus Ω. Edges are Hasse covers of `⊆`.

use join_query_inference::core::lattice::{hasse_dot, LatticeStats};
use join_query_inference::core::paper::example_2_1;
use join_query_inference::prelude::*;

fn main() {
    let universe = Universe::build(example_2_1());
    let stats = LatticeStats::of(&universe);
    eprintln!(
        "Example 2.1: {} classes over |D| = {}, join ratio {} (§5.3 computes 2), \
         {} maximal nodes",
        stats.num_classes, stats.product_size, stats.join_ratio, stats.num_maximal
    );
    let dot = hasse_dot(&universe, 10_000).expect("Example 2.1 lattice is tiny");
    println!("{dot}");
}
