//! The HTTP gateway end-to-end, over a real loopback socket.
//!
//! Spawns the `jqi_net` server with two tenants on one universe, then
//! drives the full operator workflow from a keep-alive client: create a
//! session, loop question → answer until the predicate is inferred,
//! snapshot the session, restore it into the twin tenant, and finally
//! demonstrate the wrong-universe guard — restoring the same snapshot
//! into a tenant built from a *different* instance is a loud `409
//! universe_mismatch` carrying both fingerprints, never silent
//! corruption.
//!
//! ```text
//! cargo run --example http_client
//! ```

use join_query_inference::core::paper::{example_2_1, flight_hotel};
use join_query_inference::net::{Client, NetConfig};
use join_query_inference::prelude::*;
use join_query_inference::server::http::{serve, UniverseRegistry};
use join_query_inference::server::json::Json;
use std::sync::Arc;

fn body(resp: &join_query_inference::net::ClientResponse) -> &str {
    resp.body_str().expect("gateway responses are UTF-8 JSON")
}

fn main() {
    // Three tenants: "demo" and "twin" share one universe (same
    // fingerprint — snapshots move freely between them); "other" is built
    // from a different instance, so its fingerprint differs.
    let universe = Arc::new(Universe::build(flight_hotel()));
    let registry = Arc::new(UniverseRegistry::new());
    for uid in ["demo", "twin"] {
        registry
            .register(
                uid,
                Arc::new(SessionManager::new(
                    Arc::clone(&universe),
                    ServerConfig::default(),
                )),
            )
            .expect("fresh registry");
    }
    registry
        .register(
            "other",
            Arc::new(SessionManager::new(
                Arc::new(Universe::build(example_2_1())),
                ServerConfig::default(),
            )),
        )
        .expect("fresh registry");

    let (mut server, _gateway) =
        serve(Arc::clone(&registry), "127.0.0.1:0", NetConfig::default()).expect("loopback bind");
    let addr = server.local_addr();
    println!("gateway listening on http://{addr}");

    let mut client = Client::connect(addr).expect("loopback connect");

    // Create: POST the strategy, get the session id and the universe
    // fingerprint back.
    let resp = client
        .post("/v1/universes/demo/sessions", "{\"strategy\": \"LKS:2\"}")
        .expect("create");
    assert_eq!(resp.status, 201, "{}", body(&resp));
    let doc = Json::parse(body(&resp)).expect("json");
    let sid = doc.get("session").and_then(Json::as_num).expect("id") as u64;
    println!(
        "created session {sid} (universe {})",
        doc.get("universe").and_then(Json::as_str).expect("hex")
    );

    // Question → answer loop: the "user" wants Q2 — city AND discount
    // airline must match (the paper's Example 1).
    let mut rounds = 0usize;
    let predicate = loop {
        let resp = client
            .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
            .expect("question");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        let doc = Json::parse(body(&resp)).expect("json");
        if doc.get("done") == Some(&Json::Bool(true)) {
            break doc
                .get("predicate")
                .and_then(Json::as_str)
                .expect("inferred predicate")
                .to_string();
        }
        let q = doc.get("question").expect("open question");
        let class = q.get("class").and_then(Json::as_num).expect("class") as u64;
        let values: Vec<&str> = q
            .get("values")
            .and_then(Json::as_arr)
            .expect("values")
            .iter()
            .map(|v| v.as_str().expect("strings"))
            .collect();
        let keep = values[1] == values[3] && values[2] == values[4];
        let label = if keep { "+" } else { "-" };
        let resp = client
            .post(
                &format!("/v1/universes/demo/sessions/{sid}/answers"),
                &format!("{{\"answers\": [{{\"class\": {class}, \"label\": \"{label}\"}}]}}"),
            )
            .expect("answer");
        assert_eq!(resp.status, 200, "{}", body(&resp));
        rounds += 1;
    };
    println!("inferred after {rounds} answers: {predicate}");
    assert_eq!(
        predicate,
        "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
    );

    // Snapshot the finished session and restore it into the twin tenant.
    let snap = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/snapshot"))
        .expect("snapshot");
    assert_eq!(snap.status, 200, "{}", body(&snap));
    let snapshot_doc = body(&snap).to_string();
    let resp = client
        .post("/v1/universes/twin/restore", &snapshot_doc)
        .expect("restore");
    assert_eq!(resp.status, 201, "{}", body(&resp));
    let doc = Json::parse(body(&resp)).expect("json");
    println!(
        "restored into twin as session {} with {} interactions",
        doc.get("session").and_then(Json::as_num).expect("id"),
        doc.get("interactions").and_then(Json::as_num).expect("n"),
    );

    // The wrong-universe guard: the same snapshot against a tenant with a
    // different fingerprint is refused loudly.
    let resp = client
        .post("/v1/universes/other/restore", &snapshot_doc)
        .expect("mismatched restore still gets a response");
    assert_eq!(resp.status, 409, "{}", body(&resp));
    let doc = Json::parse(body(&resp)).expect("json");
    let err = doc.get("error").expect("error body");
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some("universe_mismatch")
    );
    println!(
        "wrong-universe restore refused: expected {} found {}",
        err.get("expected").and_then(Json::as_str).expect("hex"),
        err.get("found").and_then(Json::as_str).expect("hex"),
    );

    // Live metrics: the gateway kept per-endpoint latency histograms.
    let resp = client.get("/v1/stats").expect("stats");
    assert_eq!(resp.status, 200, "{}", body(&resp));
    let doc = Json::parse(body(&resp)).expect("json");
    let answers = doc
        .get("endpoints")
        .and_then(|e| e.get("answers"))
        .and_then(|a| a.get("count"))
        .and_then(Json::as_num)
        .expect("answer count");
    println!("gateway served {answers} answer batches; shutting down");

    server.shutdown();
}
