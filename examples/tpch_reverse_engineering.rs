//! Reverse-engineering key–foreign-key joins on TPC-H-shaped data (§5.1).
//!
//! The system knows nothing about primary or foreign keys; it discovers the
//! five TPC-H joins purely from membership answers, and we compare how many
//! questions each strategy needs — a miniature of Figure 6.
//!
//! Run with `cargo run --release --example tpch_reverse_engineering`.

use join_query_inference::datagen::tpch::{TpchJoin, TpchScale, TpchTables};
use join_query_inference::prelude::*;

fn main() {
    let tables = TpchTables::generate(TpchScale::Small, 2024);
    println!("strategy interactions per TPC-H join (goal never revealed):");
    println!();
    print!("{:8}", "join");
    for kind in StrategyKind::PAPER {
        print!(" {:>5}", kind.name());
    }
    println!("  inferred predicate (most specific, via TD)");

    for join in TpchJoin::ALL {
        let w = tables.workload(join);
        let universe = Universe::build(w.instance.clone());
        print!("{:8}", join.name());
        let mut td_predicate = None;
        for kind in StrategyKind::PAPER {
            let mut strategy = kind.build(42);
            let mut oracle = PredicateOracle::new(w.goal.clone());
            let run = run_inference(&universe, strategy.as_mut(), &mut oracle)
                .expect("goal oracles are consistent");
            // Every strategy must land on an instance-equivalent predicate.
            assert_eq!(
                universe.instance().equijoin(&run.predicate),
                universe.instance().equijoin(&w.goal),
            );
            if kind == StrategyKind::Td {
                td_predicate = Some(run.predicate.clone());
            }
            print!(" {:>5}", run.interactions);
        }
        let inferred = td_predicate.expect("TD ran");
        println!("  {}", w.instance.predicate_string(&inferred));
    }
    println!();
    println!(
        "note: the inferred predicate can be more specific than the PK–FK\n\
         join when the instance cannot distinguish them (§3.3 instance-\n\
         equivalence) — exactly the paper's point about unknown constraints."
    );
}
