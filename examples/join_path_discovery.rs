//! Join-path discovery across three relations (§7 future work).
//!
//! A data-integration user chains City → Flight → Hotel without knowing
//! any schema: each adjacent pair is inferred independently with the
//! paper's machinery, and the full path join is counted at the end.
//!
//! Run with `cargo run --example join_path_discovery`.

use join_query_inference::core::paths::PathBuilder;
use join_query_inference::prelude::*;

fn main() {
    let mut b = PathBuilder::new();
    b.relation(
        "City",
        &["Name", "Country"],
        vec![
            vec![Value::str("Paris"), Value::str("FR")],
            vec![Value::str("Lille"), Value::str("FR")],
            vec![Value::str("NYC"), Value::str("US")],
        ],
    );
    b.relation(
        "Flight",
        &["From", "To", "Airline"],
        vec![
            vec![Value::str("Paris"), Value::str("Lille"), Value::str("AF")],
            vec![Value::str("Lille"), Value::str("NYC"), Value::str("AA")],
            vec![Value::str("NYC"), Value::str("Paris"), Value::str("AA")],
            vec![Value::str("Paris"), Value::str("NYC"), Value::str("AF")],
        ],
    );
    b.relation(
        "Hotel",
        &["HCity", "Discount"],
        vec![
            vec![Value::str("NYC"), Value::str("AA")],
            vec![Value::str("Paris"), Value::str("None")],
            vec![Value::str("Lille"), Value::str("AF")],
        ],
    );
    let path = b.build().expect("well-formed path");

    // The user's hidden intent: departures from a listed city, arriving at
    // the hotel's city.
    let goals = vec![
        path.predicate_from_names(0, &[("Name", "From")])
            .expect("hop 0 attrs"),
        path.predicate_from_names(1, &[("To", "HCity")])
            .expect("hop 1 attrs"),
    ];

    println!("inferring a {}-hop join path:", path.num_hops());
    for kind in [StrategyKind::Td, StrategyKind::L2s] {
        let run = path
            .infer_with_goals(&goals, kind, 1)
            .expect("consistent oracles");
        println!("\nstrategy {}:", kind.name());
        for (h, theta) in run.predicates.iter().enumerate() {
            println!(
                "  hop {h}: {} ({} questions)",
                path.hop(h).instance().predicate_string(theta),
                run.interactions_per_hop[h]
            );
        }
        println!(
            "  total: {} questions; full path join has {} tuples",
            run.total_interactions(),
            path.count_path_tuples(&run.predicates)
        );
    }
}
