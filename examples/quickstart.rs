//! Quickstart: infer the flight & hotel join of the paper's introduction.
//!
//! Reproduces the scenario of Figures 1–2: a travel-agency employee wants
//! flight & hotel packages but cannot write the join; the system asks her
//! to label a handful of flight–hotel pairs and infers the predicate.
//!
//! Run with `cargo run --example quickstart`.

use join_query_inference::prelude::*;

fn main() {
    // Figure 1's instance.
    let mut b = InstanceBuilder::new();
    b.relation_r("Flight", &["From", "To", "Airline"]);
    b.relation_p("Hotel", &["City", "Discount"]);
    b.row_r(&[Value::str("Paris"), Value::str("Lille"), Value::str("AF")]);
    b.row_r(&[Value::str("Lille"), Value::str("NYC"), Value::str("AA")]);
    b.row_r(&[Value::str("NYC"), Value::str("Paris"), Value::str("AA")]);
    b.row_r(&[Value::str("Paris"), Value::str("NYC"), Value::str("AF")]);
    b.row_p(&[Value::str("NYC"), Value::str("AA")]);
    b.row_p(&[Value::str("Paris"), Value::str("None")]);
    b.row_p(&[Value::str("Lille"), Value::str("AF")]);
    let instance = b.build().expect("well-formed instance");
    println!("{instance}");
    println!();

    // The user's hidden query is Q2: packages whose hotel is in the flight's
    // destination AND offers a discount for the flight's airline.
    let goal = predicate_from_names(&instance, &[("To", "City"), ("Airline", "Discount")])
        .expect("attributes exist");

    let universe = Universe::build(instance);
    println!(
        "Cartesian product: {} tuples in {} equivalence classes",
        universe.total_tuples(),
        universe.num_classes()
    );
    println!();

    // Drive a session with the top-down strategy; the "user" answers
    // according to the hidden query.
    let mut session = Session::new(&universe, TopDown::new());
    while let Some(candidate) = session.next().expect("strategy never fails") {
        let selected = goal.is_subset(universe.sig(candidate.class));
        let label = if selected {
            Label::Positive
        } else {
            Label::Negative
        };
        let values: Vec<String> = candidate
            .values(&universe)
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!(
            "  Q{}: ({})  →  {}",
            session.interactions() + 1,
            values.join(", "),
            label
        );
        session.answer(label).expect("consistent labels");
    }

    let inferred = session.inferred_predicate();
    println!();
    println!(
        "Inferred after {} questions: {}",
        session.interactions(),
        universe.instance().predicate_string(&inferred)
    );
    println!(
        "Selected packages: {:?}",
        universe.instance().equijoin(&inferred)
    );
    assert_eq!(
        universe.instance().equijoin(&inferred),
        universe.instance().equijoin(&goal),
        "inferred predicate must be instance-equivalent to the goal"
    );
}
