//! Semijoin intractability demo (§6, Theorem 6.1, appendix A.1).
//!
//! Encodes the appendix's running formula φ0 — and a parameterized family
//! of random 3SAT instances — as semijoin consistency problems, solves them
//! exactly, decodes the satisfying valuations, and cross-checks everything
//! against an independent DPLL SAT solver.
//!
//! Run with `cargo run --release --example semijoin_hardness`.

use join_query_inference::semijoin::consistency::find_consistent_semijoin;
use join_query_inference::semijoin::reduction::{decode_valuation, reduce};
use join_query_inference::semijoin::sat::{dpll, random_3sat, Cnf};

fn main() {
    // The appendix's φ0 = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ x4).
    let phi0 = Cnf::new(4, vec![vec![1, 2, 3], vec![-1, 3, 4]]);
    let red = reduce(&phi0);
    println!("φ0 reduced to {}", red.instance);
    println!(
        "  sample: {} positive clause-rows, {} negative rows",
        red.sample.positives().len(),
        red.sample.negatives().len()
    );
    let theta = find_consistent_semijoin(&red.instance, &red.sample)
        .expect("φ0 is satisfiable, so a consistent semijoin predicate exists");
    println!("  consistent θ = {}", red.instance.predicate_string(&theta));
    let valuation = decode_valuation(&red, &theta);
    println!("  decoded valuation: {valuation:?}");
    assert!(phi0.is_satisfied_by(&valuation));
    println!();

    // A sweep over the 3SAT phase transition: consistency of the reduced
    // instance tracks satisfiability exactly.
    println!("random 3SAT at the phase transition (4.27 clauses/var):");
    println!("{:>5} {:>8} {:>8} {:>7}", "vars", "DPLL", "CONS⋉", "agree");
    for num_vars in [4usize, 5, 6, 7] {
        let clauses = (num_vars as f64 * 4.27).round() as usize;
        let mut agree = 0usize;
        let trials = 10usize;
        let mut sat_count = 0usize;
        for seed in 0..trials as u64 {
            let cnf = random_3sat(num_vars, clauses, 1000 + seed);
            let sat = dpll(&cnf).is_some();
            let red = reduce(&cnf);
            let cons = find_consistent_semijoin(&red.instance, &red.sample).is_some();
            if sat {
                sat_count += 1;
            }
            if sat == cons {
                agree += 1;
            }
        }
        println!(
            "{:>5} {:>7}% {:>7}% {:>6}/{}",
            num_vars,
            sat_count * 100 / trials,
            sat_count * 100 / trials,
            agree,
            trials
        );
        assert_eq!(agree, trials, "Theorem 6.1 reduction must be exact");
    }
    println!();
    println!(
        "every decision agreed — the CONS⋉ solver is a (necessarily\n\
         exponential-time) SAT solver in disguise, which is Theorem 6.1."
    );
}
