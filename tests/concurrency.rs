//! Concurrency tests: the shared interner is the only synchronized piece
//! of the substrate (parking_lot RwLock); everything downstream is
//! immutable after construction and safely shareable across threads.

use join_query_inference::prelude::*;
use join_query_inference::relation::{Interner, Symbol};
use std::sync::Arc;
use std::thread;

/// Many threads interning overlapping value sets agree on every symbol.
#[test]
fn interner_is_thread_safe_and_canonical() {
    let interner = Arc::new(Interner::new());
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let interner = Arc::clone(&interner);
            thread::spawn(move || {
                let mut symbols = Vec::new();
                // Overlapping ranges so every value is interned by several
                // threads racing each other.
                for i in 0..200i64 {
                    let v = Value::int((i + t) % 150);
                    symbols.push((v.clone(), interner.intern(&v)));
                }
                symbols
            })
        })
        .collect();
    let mut all: Vec<(Value, Symbol)> = Vec::new();
    for h in handles {
        all.extend(h.join().expect("no panics"));
    }
    // Canonical: equal values always got the same symbol, across threads.
    for (v, s) in &all {
        assert_eq!(interner.get(v), Some(*s));
        assert_eq!(&interner.resolve(*s), v);
    }
    assert!(interner.len() <= 150 + 8);
}

/// A built universe is immutable and can drive inference runs from many
/// threads simultaneously (e.g. a crowdsourcing backend fanning out
/// sessions).
#[test]
fn parallel_inference_runs_share_one_universe() {
    use join_query_inference::datagen::SyntheticConfig;
    let universe = Arc::new(Universe::build(
        SyntheticConfig::new(2, 3, 15, 6).generate(2),
    ));
    let goals = join_query_inference::core::lattice::goals_by_size(&universe, 100_000)
        .unwrap()
        .into_iter()
        .flatten()
        .take(8)
        .collect::<Vec<_>>();
    let handles: Vec<_> = goals
        .into_iter()
        .map(|goal| {
            let universe = Arc::clone(&universe);
            thread::spawn(move || {
                let mut strategy = TopDown::new();
                let mut oracle = PredicateOracle::new(goal.clone());
                let run = run_inference(&universe, &mut strategy, &mut oracle)
                    .expect("consistent oracle");
                assert_eq!(
                    universe.instance().equijoin(&run.predicate),
                    universe.instance().equijoin(&goal)
                );
                run.interactions
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().expect("no panics") >= 1);
    }
}
