//! Integration tests pinning every worked example of the paper:
//! Figures 1–5, Examples 2.1/3.1/3.3, the §3.4 and §4.3/§4.4 walkthroughs.

use join_query_inference::core::certain::{certain_label, informative_classes};
use join_query_inference::core::entropy::{entropy, entropy2, Entropy};
use join_query_inference::core::lattice::{join_ratio, LatticeStats};
use join_query_inference::core::paper::{example_2_1, example_3_3, flight_hotel, pair};
use join_query_inference::core::CountMode;
use join_query_inference::prelude::*;

fn class(u: &Universe, figure_3_pair: (usize, usize)) -> usize {
    let (i, j) = figure_3_pair;
    u.class_of(i, j).expect("every product tuple has a class")
}

/// Figure 2: the Cartesian product of Flight × Hotel has twelve tuples; Q1
/// and Q2 of the introduction select {3,4,8,10} and {3,4} respectively, and
/// tuple (8) distinguishes them.
#[test]
fn figures_1_and_2() {
    let inst = flight_hotel();
    assert_eq!(inst.product_size(), 12);
    let q1 = predicate_from_names(&inst, &[("To", "City")]).unwrap();
    let q2 = predicate_from_names(&inst, &[("To", "City"), ("Airline", "Discount")]).unwrap();
    // Figure 2 numbering: tuple k = (row k) of the product in row-major
    // order, 1-based: (ri, pi) = ((k-1)/3, (k-1)%3).
    let tuple = |k: usize| ((k - 1) / 3, (k - 1) % 3);
    let j1 = inst.equijoin(&q1);
    let j2 = inst.equijoin(&q2);
    assert_eq!(j1, vec![tuple(3), tuple(4), tuple(8), tuple(10)]);
    assert_eq!(j2, vec![tuple(3), tuple(4)]);
    // Labeling (3) + keeps both queries consistent; (8) separates them.
    assert!(j1.contains(&tuple(3)) && j2.contains(&tuple(3)));
    assert!(j1.contains(&tuple(8)) && !j2.contains(&tuple(8)));
}

/// Example 2.1: the three joins computed in the paper.
#[test]
fn example_2_1_joins() {
    let inst = example_2_1();
    let theta1 = predicate_from_names(&inst, &[("A1", "B1"), ("A2", "B3")]).unwrap();
    let theta2 = predicate_from_names(&inst, &[("A2", "B2")]).unwrap();
    let theta3 = predicate_from_names(&inst, &[("A2", "B1"), ("A2", "B2"), ("A2", "B3")]).unwrap();
    assert_eq!(inst.equijoin(&theta1), vec![pair(2, 2), pair(4, 1)]);
    assert_eq!(inst.semijoin(&theta1), vec![1, 3]);
    assert_eq!(
        inst.equijoin(&theta2),
        vec![pair(1, 1), pair(1, 2), pair(4, 3)]
    );
    assert_eq!(inst.semijoin(&theta2), vec![0, 3]);
    assert!(inst.equijoin(&theta3).is_empty());
    assert!(inst.semijoin(&theta3).is_empty());
}

/// Figure 3: all twelve signatures, transcribed.
#[test]
fn figure_3_signatures() {
    let inst = example_2_1();
    let sig = |i: usize, j: usize, pairs: &[(&str, &str)]| {
        let expect = predicate_from_names(&inst, pairs).unwrap();
        let (ri, pi) = pair(i, j);
        assert_eq!(inst.signature(ri, pi), expect, "T(t{i},t{j}')");
    };
    sig(1, 1, &[("A1", "B3"), ("A2", "B1"), ("A2", "B2")]);
    sig(1, 2, &[("A1", "B1"), ("A2", "B2")]);
    sig(1, 3, &[("A1", "B2"), ("A1", "B3")]);
    sig(2, 1, &[("A1", "B3")]);
    sig(2, 2, &[("A1", "B1"), ("A2", "B3")]);
    sig(2, 3, &[("A1", "B2"), ("A1", "B3"), ("A2", "B1")]);
    sig(3, 1, &[]);
    sig(3, 2, &[("A1", "B3"), ("A2", "B3")]);
    sig(3, 3, &[("A1", "B1"), ("A2", "B1")]);
    sig(4, 1, &[("A1", "B1"), ("A1", "B2"), ("A2", "B3")]);
    sig(4, 2, &[("A1", "B2"), ("A2", "B1")]);
    sig(4, 3, &[("A2", "B2"), ("A2", "B3")]);
}

/// Example 3.1: S0 is consistent with most specific predicate θ0; S0' is
/// inconsistent.
#[test]
fn example_3_1_consistency() {
    let inst = example_2_1();
    let universe = Universe::build(inst);
    let mut s0 = Sample::new(&universe);
    s0.add(&universe, class(&universe, pair(2, 2)), Label::Positive)
        .unwrap();
    s0.add(&universe, class(&universe, pair(4, 1)), Label::Positive)
        .unwrap();
    s0.add(&universe, class(&universe, pair(3, 2)), Label::Negative)
        .unwrap();
    let theta0 = s0.check_consistent(&universe).expect("S0 is consistent");
    let expect = predicate_from_names(universe.instance(), &[("A1", "B1"), ("A2", "B3")]).unwrap();
    assert_eq!(theta0, expect);

    let mut s0p = Sample::new(&universe);
    s0p.add(&universe, class(&universe, pair(1, 2)), Label::Positive)
        .unwrap();
    s0p.add(&universe, class(&universe, pair(1, 3)), Label::Positive)
        .unwrap();
    s0p.add(&universe, class(&universe, pair(3, 1)), Label::Negative)
        .unwrap();
    assert!(!s0p.is_consistent(&universe));
}

/// §3.3: the single-tuple instance returns an instance-equivalent (not
/// syntactically equal) predicate.
#[test]
fn section_3_3_instance_equivalence() {
    let inst = example_3_3();
    let goal = predicate_from_names(&inst, &[("A1", "B1")]).unwrap();
    let universe = Universe::build(inst);
    let mut oracle = PredicateOracle::new(goal.clone());
    let run = run_inference(&universe, &mut BottomUp::new(), &mut oracle).unwrap();
    // T(S⁺) = {(A1,B1),(A2,B1)} ⊋ θG, yet equivalent over the instance.
    assert_eq!(run.predicate.len(), 2);
    assert!(goal.is_subset(&run.predicate));
    assert_eq!(
        universe.instance().equijoin(&run.predicate),
        universe.instance().equijoin(&goal)
    );
}

/// §3.4's uninformative examples with goal {(A2,B3)}.
#[test]
fn section_3_4_uninformative() {
    let universe = Universe::build(example_2_1());
    let mut s = Sample::new(&universe);
    s.add(&universe, class(&universe, pair(2, 2)), Label::Positive)
        .unwrap();
    s.add(&universe, class(&universe, pair(1, 3)), Label::Negative)
        .unwrap();
    assert_eq!(
        certain_label(&universe, &s, class(&universe, pair(4, 1))),
        Some(Label::Positive)
    );
    assert_eq!(
        certain_label(&universe, &s, class(&universe, pair(2, 1))),
        Some(Label::Negative)
    );
}

/// §5.3: Example 2.1's join ratio is 2 (1 signature of size 0, 1 of size 1,
/// 7 of size 2, 3 of size 3).
#[test]
fn section_5_3_join_ratio() {
    let universe = Universe::build(example_2_1());
    assert_eq!(join_ratio(&universe), 2.0);
    let stats = LatticeStats::of(&universe);
    assert_eq!(stats.size_histogram, vec![1, 1, 7, 3]);
}

/// §4.3 walkthrough: BU asks (t3,t1') first; on the lattice of Figure 4,
/// labeling (t1,t3') positive renders (t2,t3') uninformative, labeling it
/// negative renders (t2,t1') and (t3,t1') uninformative.
#[test]
fn section_4_3_lattice_pruning() {
    let universe = Universe::build(example_2_1());
    // Positive case.
    let mut sp = Sample::new(&universe);
    sp.add(&universe, class(&universe, pair(1, 3)), Label::Positive)
        .unwrap();
    assert_eq!(
        certain_label(&universe, &sp, class(&universe, pair(2, 3))),
        Some(Label::Positive),
        "(t2,t3') ⊇ {{(A1,B2),(A1,B3)}} becomes certain-positive"
    );
    // Negative case.
    let mut sn = Sample::new(&universe);
    sn.add(&universe, class(&universe, pair(1, 3)), Label::Negative)
        .unwrap();
    assert_eq!(
        certain_label(&universe, &sn, class(&universe, pair(2, 1))),
        Some(Label::Negative)
    );
    assert_eq!(
        certain_label(&universe, &sn, class(&universe, pair(3, 1))),
        Some(Label::Negative)
    );
}

/// §4.4's entropy² walkthrough: with S = {((t1,t3'),+), ((t3,t1'),−)},
/// five informative tuples remain and entropy²((t2,t1')) = (3,3).
#[test]
fn section_4_4_entropy2_walkthrough() {
    let universe = Universe::build(example_2_1());
    let mut s = Sample::new(&universe);
    s.add(&universe, class(&universe, pair(1, 3)), Label::Positive)
        .unwrap();
    s.add(&universe, class(&universe, pair(3, 1)), Label::Negative)
        .unwrap();
    let informative = informative_classes(&universe, &s);
    assert_eq!(informative.len(), 5);
    let e2 = entropy2(
        &universe,
        &s,
        class(&universe, pair(2, 1)),
        CountMode::Tuples,
    );
    assert_eq!(e2, Entropy { lo: 3, hi: 3 });
}

/// Figure 5 consistency with Lemma 3.3/3.4 counting: spot-check the
/// unambiguous rows (the (t2,t1') row is corrected, see jqi-core's entropy
/// tests for the full table and the typo discussion).
#[test]
fn figure_5_spot_checks() {
    let universe = Universe::build(example_2_1());
    let s = Sample::new(&universe);
    let e = |p: (usize, usize)| entropy(&universe, &s, class(&universe, p), CountMode::Tuples);
    assert_eq!(e(pair(3, 1)), Entropy { lo: 0, hi: 11 }); // the ∅ tuple
    assert_eq!(e(pair(2, 2)), Entropy { lo: 1, hi: 1 });
    assert_eq!(e(pair(2, 3)), Entropy { lo: 0, hi: 4 });
    assert_eq!(e(pair(1, 2)), Entropy { lo: 0, hi: 1 });
}

/// The introduction's promise: positive examples alone cannot separate
/// Q2 ⊆ Q1; a negative example is necessary.
#[test]
fn negative_examples_are_necessary() {
    let inst = flight_hotel();
    let q1 = predicate_from_names(&inst, &[("To", "City")]).unwrap();
    let q2 = predicate_from_names(&inst, &[("To", "City"), ("Airline", "Discount")]).unwrap();
    let universe = Universe::build(inst);
    // Label all of Q2's tuples positive — Q1 remains consistent too.
    let mut s = Sample::new(&universe);
    for (ri, pi) in universe.instance().equijoin(&q2) {
        let c = universe.class_of(ri, pi).unwrap();
        if s.label(c).is_none() {
            s.add(&universe, c, Label::Positive).unwrap();
        }
    }
    assert!(s.admits(&universe, &q1));
    assert!(s.admits(&universe, &q2));
    // Tuple (8) = (NYC,Paris,AA,Paris,None) labeled negative kills Q1.
    let c8 = universe.class_of(2, 1).unwrap();
    s.add(&universe, c8, Label::Negative).unwrap();
    assert!(!s.admits(&universe, &q1));
    assert!(s.admits(&universe, &q2));
}
