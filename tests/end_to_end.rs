//! Integration tests spanning the workspace crates: generators → universe →
//! strategies → engine, plus CSV ingestion.

use join_query_inference::datagen::tpch::{TpchScale, TpchTables};
use join_query_inference::datagen::{SyntheticConfig, PAPER_CONFIGS};
use join_query_inference::prelude::*;
use join_query_inference::relation::csv::{relation_from_csv, relation_to_csv};
use join_query_inference::relation::{Instance, Interner};
use std::sync::Arc;

/// Every paper strategy recovers every TPC-H goal join on generated data,
/// at both scales.
#[test]
fn tpch_joins_recovered_by_all_strategies() {
    for scale in [TpchScale::Small, TpchScale::Large] {
        let tables = TpchTables::generate(scale, 11);
        for w in tables.workloads() {
            let universe = Universe::build(w.instance.clone());
            for kind in StrategyKind::PAPER {
                let mut strategy = kind.build(1);
                let mut oracle = PredicateOracle::new(w.goal.clone());
                let run = run_inference(&universe, strategy.as_mut(), &mut oracle)
                    .expect("consistent oracle");
                assert_eq!(
                    universe.instance().equijoin(&run.predicate),
                    universe.instance().equijoin(&w.goal),
                    "{kind} missed {} at {scale}",
                    w.join
                );
            }
        }
    }
}

/// On synthetic data, inference converges for goals of every size and the
/// inferred predicate is always the most specific consistent one.
#[test]
fn synthetic_goals_of_every_size_converge() {
    let cfg = SyntheticConfig::new(2, 3, 25, 10);
    let universe = Universe::build(cfg.generate(3));
    let groups = join_query_inference::core::lattice::goals_by_size(&universe, 200_000).unwrap();
    for goals in &groups {
        for goal in goals.iter().take(5) {
            let mut strategy = TopDown::new();
            let mut oracle = PredicateOracle::new(goal.clone());
            let run = run_inference(&universe, &mut strategy, &mut oracle).unwrap();
            assert_eq!(
                universe.instance().equijoin(&run.predicate),
                universe.instance().equijoin(goal),
            );
            assert!(run.sample.is_consistent(&universe));
            assert!(!join_query_inference::core::certain::any_informative(
                &universe,
                &run.sample
            ));
        }
    }
}

/// The halt condition is tight: after a full run, *every* unlabeled class is
/// certain, with the label the goal predicate would give it.
#[test]
fn after_halt_every_class_is_certain_with_the_true_label() {
    let cfg = SyntheticConfig::new(3, 3, 20, 8);
    let universe = Universe::build(cfg.generate(5));
    let goal = {
        // Pick a nonempty signature as goal so the join is non-trivial.
        let c = (0..universe.num_classes())
            .max_by_key(|&c| universe.sig(c).len())
            .expect("classes exist");
        universe.sig(c).clone()
    };
    let mut strategy = Lookahead::l1s();
    let mut oracle = PredicateOracle::new(goal.clone());
    let run = run_inference(&universe, &mut strategy, &mut oracle).unwrap();
    for c in 0..universe.num_classes() {
        let truth = if goal.is_subset(universe.sig(c)) {
            Label::Positive
        } else {
            Label::Negative
        };
        let known = run.sample.label(c).or_else(|| {
            join_query_inference::core::certain::certain_label(&universe, &run.sample, c)
        });
        assert_eq!(known, Some(truth), "class {c} not resolved correctly");
    }
}

/// CSV round trip feeds the whole pipeline: parse two tables, infer a join.
#[test]
fn csv_to_inference_pipeline() {
    let interner = Arc::new(Interner::new());
    let flights = "From,To,Airline\nParis,Lille,AF\nLille,NYC,AA\nNYC,Paris,AA\nParis,NYC,AF\n";
    let hotels = "City,Discount\nNYC,AA\nParis,None\nLille,AF\n";
    let r = relation_from_csv(&interner, "Flight", flights).unwrap();
    let p = relation_from_csv(&interner, "Hotel", hotels).unwrap();
    // Round trip preserves content.
    assert_eq!(relation_to_csv(&interner, &r), flights);
    let instance = Instance::new(interner, r, p).unwrap();
    let goal = predicate_from_names(&instance, &[("To", "City")]).unwrap();
    let universe = Universe::build(instance);
    let mut oracle = PredicateOracle::new(goal.clone());
    let run = run_inference(&universe, &mut TopDown::new(), &mut oracle).unwrap();
    assert_eq!(
        universe.instance().equijoin(&run.predicate),
        universe.instance().equijoin(&goal)
    );
}

/// Different strategies may ask different questions but always agree on the
/// semantics of the result (instance equivalence — §3.3).
#[test]
fn strategies_agree_semantically_pairwise() {
    let universe = Universe::build(SyntheticConfig::new(2, 4, 15, 6).generate(13));
    let groups = join_query_inference::core::lattice::goals_by_size(&universe, 200_000).unwrap();
    let goals: Vec<_> = groups.iter().flat_map(|g| g.iter().take(3)).collect();
    for goal in goals {
        let mut results = Vec::new();
        for kind in StrategyKind::PAPER {
            let mut strategy = kind.build(17);
            let mut oracle = PredicateOracle::new(goal.clone());
            let run = run_inference(&universe, strategy.as_mut(), &mut oracle).unwrap();
            results.push(universe.instance().equijoin(&run.predicate));
        }
        for pair in results.windows(2) {
            assert_eq!(pair[0], pair[1], "strategies disagree on goal {goal:?}");
        }
    }
}

/// The average interaction counts reproduce the paper's headline ordering
/// on synthetic data: the informed strategies beat RND, and TD dominates BU
/// for size-2 goals (§5.3).
#[test]
fn figure_7_shape_td_beats_bu_on_size_2_goals() {
    let cfg = PAPER_CONFIGS[1]; // (3,3,50,100)
    let mut bu_total = 0usize;
    let mut td_total = 0usize;
    let mut goals_seen = 0usize;
    for seed in 0..3u64 {
        let universe = Universe::build(cfg.generate(seed));
        let groups =
            join_query_inference::core::lattice::goals_by_size(&universe, 500_000).unwrap();
        let Some(size2) = groups.get(2) else { continue };
        for goal in size2.iter().take(6) {
            goals_seen += 1;
            for (kind, total) in [
                (StrategyKind::Bu, &mut bu_total),
                (StrategyKind::Td, &mut td_total),
            ] {
                let mut strategy = kind.build(0);
                let mut oracle = PredicateOracle::new(goal.clone());
                *total += run_inference(&universe, strategy.as_mut(), &mut oracle)
                    .unwrap()
                    .interactions;
            }
        }
    }
    assert!(goals_seen > 0, "no size-2 goals found");
    assert!(
        td_total < bu_total,
        "TD ({td_total}) should beat BU ({bu_total}) on size-2 goals"
    );
}
