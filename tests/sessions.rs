//! Integration tests for the step-by-step `Session` API: equivalence with
//! the batch engine, early stopping, and misuse handling.

use join_query_inference::core::session::Session;
use join_query_inference::datagen::SyntheticConfig;
use join_query_inference::prelude::*;

/// Driving a session manually produces byte-identical history, predicate
/// and interaction count to the batch engine, for every paper strategy on
/// random instances.
#[test]
fn session_equals_engine_for_every_strategy() {
    for seed in 0..4u64 {
        let universe = Universe::build(SyntheticConfig::new(2, 3, 12, 5).generate(seed));
        let goals = join_query_inference::core::lattice::goals_by_size(&universe, 100_000).unwrap();
        let goal = goals
            .iter()
            .rev()
            .find_map(|g| g.first())
            .expect("some goal")
            .clone();
        // RND must use the same seed in both runs to stay comparable.
        for kind in StrategyKind::PAPER {
            let mut engine_strategy = kind.build(seed);
            let mut oracle = PredicateOracle::new(goal.clone());
            let engine_run =
                run_inference(&universe, engine_strategy.as_mut(), &mut oracle).unwrap();

            let mut session = Session::new(&universe, kind.build(seed));
            while let Some(candidate) = session.next().unwrap() {
                let label = if goal.is_subset(universe.sig(candidate.class)) {
                    Label::Positive
                } else {
                    Label::Negative
                };
                session.answer(label).unwrap();
            }
            assert!(session.is_done());
            assert_eq!(session.history(), &engine_run.history[..], "{kind} history");
            assert_eq!(session.inferred_predicate(), engine_run.predicate);
            assert_eq!(session.interactions(), engine_run.interactions);
        }
    }
}

/// Stopping early returns T(S⁺) — usable, monotonically more specific
/// with more positive answers, and always consistent with the answers.
#[test]
fn early_stop_predicates_are_consistent_prefixes() {
    let universe = Universe::build(SyntheticConfig::new(3, 3, 15, 6).generate(9));
    let goals = join_query_inference::core::lattice::goals_by_size(&universe, 100_000).unwrap();
    let goal = goals
        .iter()
        .rev()
        .find_map(|g| g.first())
        .expect("some goal")
        .clone();
    let mut session = Session::new(&universe, Lookahead::l1s());
    let mut previous = universe.omega();
    while let Some(candidate) = session.next().unwrap() {
        let label = if goal.is_subset(universe.sig(candidate.class)) {
            Label::Positive
        } else {
            Label::Negative
        };
        session.answer(label).unwrap();
        let current = session.inferred_predicate();
        // T(S⁺) only loses pairs over time (intersection of signatures).
        assert!(current.is_subset(&previous));
        assert!(session.sample().is_consistent(&universe));
        previous = current;
    }
    // At the end, instance-equivalent to the goal.
    assert_eq!(
        universe.instance().equijoin(&previous),
        universe.instance().equijoin(&goal)
    );
}

/// Misuse is rejected with the documented errors, and the session stays
/// usable afterwards.
#[test]
fn misuse_errors_do_not_poison_the_session() {
    use join_query_inference::core::InferenceError;
    let universe = Universe::build(SyntheticConfig::new(2, 2, 8, 4).generate(1));
    let mut session = Session::new(&universe, TopDown::new());
    assert_eq!(
        session.answer(Label::Positive).unwrap_err(),
        InferenceError::NoPendingCandidate
    );
    let first = session.next().unwrap().expect("something informative");
    assert_eq!(
        session.next().unwrap_err(),
        InferenceError::CandidateAlreadyPending
    );
    session.answer(Label::Negative).unwrap();
    // Still progresses normally.
    let second = session.next().unwrap().expect("more informative tuples");
    assert_ne!(first.class, second.class);
    session.answer(Label::Negative).unwrap();
    assert!(session.interactions() == 2);
}

/// `known_label` grows monotonically: once a class is decided (labeled or
/// certain) it stays decided with the same label.
#[test]
fn known_labels_are_stable() {
    let universe = Universe::build(SyntheticConfig::new(2, 3, 10, 4).generate(4));
    let goals = join_query_inference::core::lattice::goals_by_size(&universe, 100_000).unwrap();
    let goal = goals
        .iter()
        .rev()
        .find_map(|g| g.first())
        .expect("some goal")
        .clone();
    let mut session = Session::new(&universe, BottomUp::new());
    let mut decided: Vec<Option<Label>> = vec![None; universe.num_classes()];
    while let Some(candidate) = session.next().unwrap() {
        let label = if goal.is_subset(universe.sig(candidate.class)) {
            Label::Positive
        } else {
            Label::Negative
        };
        session.answer(label).unwrap();
        for (c, slot) in decided.iter_mut().enumerate() {
            let now = session.known_label(c);
            if let Some(prev) = *slot {
                assert_eq!(now, Some(prev), "class {c} flipped its decided label");
            } else {
                *slot = now;
            }
        }
    }
    // Everything is decided at the end.
    assert!(decided.iter().all(Option::is_some));
}
