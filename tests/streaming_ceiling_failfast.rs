//! Regression test: a streaming-ingestion byte-ceiling trip with threads > 1 and more
//! chunks than channel capacity should fail fast, not hang.

use join_query_inference::core::universe::Universe;
use join_query_inference::core::IngestOptions;
use join_query_inference::relation::{RowChunk, Side, StreamSchema, Value};

#[test]
fn ceiling_trip_multithreaded_fails_fast() {
    let schema = StreamSchema::from_names("R", &["A1"], "P", &["B1"]).unwrap();
    // 64 chunks, each one row, all distinct profiles -> ceiling trips early.
    let mut chunks = Vec::new();
    for i in 0..64i64 {
        chunks.push(RowChunk {
            side: Side::R,
            rows: vec![schema.intern_row(Side::R, &[Value::int(i)]).unwrap()],
        });
    }
    for i in 0..64i64 {
        chunks.push(RowChunk {
            side: Side::P,
            rows: vec![schema.intern_row(Side::P, &[Value::int(i)]).unwrap()],
        });
    }
    let mut options = IngestOptions::with_threads(4);
    options.channel_chunks = 2;
    options.byte_ceiling = Some(8);

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Universe::build_streaming_with_options(schema, || chunks.clone().into_iter(), &options)
        }));
        done_tx.send(result.is_err()).ok();
    });
    match done_rx.recv_timeout(std::time::Duration::from_secs(10)) {
        Ok(panicked) => {
            assert!(panicked, "ceiling must trip");
            handle.join().ok();
        }
        Err(_) => panic!("DEADLOCK: build_streaming hung after ceiling trip"),
    }
}
