//! Integration tests for the §6 semijoin stack: reduction ∘ solver vs
//! DPLL, greedy vs exact, the interactive loop, and minimality — wired
//! together across modules the way the benchmarks use them.

use join_query_inference::semijoin::consistency::find_consistent_semijoin;
use join_query_inference::semijoin::heuristic::greedy_consistent_semijoin;
use join_query_inference::semijoin::interactive::{run_interactive, GoalOracle};
use join_query_inference::semijoin::minimality::{
    is_maximally_specific, maximally_specific_predicates,
};
use join_query_inference::semijoin::reduction::{decode_valuation, encode_valuation, reduce};
use join_query_inference::semijoin::sat::{dpll, random_3sat};
use join_query_inference::semijoin::SemijoinSample;

/// The full Theorem 6.1 pipeline at a slightly larger scale than the unit
/// tests: 6 variables, phase-transition density, 15 formulas.
#[test]
fn reduction_solver_dpll_triangle() {
    for seed in 100..115u64 {
        let cnf = random_3sat(6, 26, seed);
        let sat = dpll(&cnf);
        let red = reduce(&cnf);
        let cons = find_consistent_semijoin(&red.instance, &red.sample);
        assert_eq!(cons.is_some(), sat.is_some(), "seed {seed}");
        match (cons, sat) {
            (Some(theta), Some(model)) => {
                // Decoded valuation satisfies; encoded model is consistent.
                assert!(cnf.is_satisfied_by(&decode_valuation(&red, &theta)));
                let encoded = encode_valuation(&red, &model);
                assert!(red.sample.admits(&red.instance, &encoded));
            }
            (None, None) => {}
            _ => unreachable!(),
        }
    }
}

/// Greedy is sound on reductions too — whenever it answers, the formula is
/// satisfiable and the witness is genuinely consistent.
#[test]
fn greedy_is_sound_on_reductions() {
    let mut greedy_hits = 0usize;
    let mut solvable = 0usize;
    for seed in 200..220u64 {
        let cnf = random_3sat(5, 18, seed); // slightly under-constrained
        let red = reduce(&cnf);
        let exact = find_consistent_semijoin(&red.instance, &red.sample);
        if exact.is_some() {
            solvable += 1;
        }
        if let Some(theta) = greedy_consistent_semijoin(&red.instance, &red.sample) {
            assert!(
                red.sample.admits(&red.instance, &theta),
                "unsound greedy, seed {seed}"
            );
            assert!(exact.is_some());
            greedy_hits += 1;
        }
    }
    assert!(solvable > 0, "test needs satisfiable formulas");
    // Greedy needn't match the exact solver, but it should not be useless.
    assert!(greedy_hits > 0, "greedy solved nothing on reductions");
}

/// The interactive loop agrees with the one-shot solver when the oracle
/// labels by a goal predicate: the final predicate selects the same rows.
#[test]
fn interactive_loop_matches_goal_semantics_on_reductions() {
    // Use the reduction instance as a convenient structured playground.
    let cnf = random_3sat(4, 10, 7);
    let red = reduce(&cnf);
    let inst = &red.instance;
    // Goal: the canonical predicate of some valuation (always meaningful).
    let goal = encode_valuation(&red, &[true, false, true, false]);
    let mut oracle = GoalOracle(goal.clone());
    let run = run_interactive(inst, &mut oracle).expect("goal oracle is consistent");
    assert_eq!(inst.semijoin(&run.predicate), inst.semijoin(&goal));
    assert!(run.interactions <= inst.r().len());
}

/// Maximally specific predicates found by enumeration really are maximal,
/// and every returned predicate is pairwise ⊆-incomparable.
#[test]
fn maximally_specific_enumeration_is_an_antichain() {
    let inst = join_query_inference::core::paper::example_2_1();
    for positives in [vec![0usize], vec![0, 1], vec![1, 3], vec![0, 1, 2, 3]] {
        let maxes = maximally_specific_predicates(&inst, &positives);
        for (i, a) in maxes.iter().enumerate() {
            assert!(is_maximally_specific(&inst, &positives, a));
            for (j, b) in maxes.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.is_subset(b),
                        "antichain violated for positives {positives:?}"
                    );
                }
            }
        }
    }
}

/// Consistency interacts correctly with sample composition: splitting a
/// consistent sample's rows keeps each part consistent (downward closure
/// in the sample), while the converse can fail.
#[test]
fn sample_monotonicity() {
    let inst = join_query_inference::core::paper::example_2_1();
    let full = SemijoinSample::from_rows(vec![0, 1], vec![2]);
    if let Some(theta) = find_consistent_semijoin(&inst, &full) {
        for sub in [
            SemijoinSample::from_rows(vec![0], vec![2]),
            SemijoinSample::from_rows(vec![1], vec![]),
            SemijoinSample::from_rows(vec![], vec![2]),
        ] {
            assert!(
                sub.admits(&inst, &theta),
                "θ consistent with the full sample must admit every sub-sample"
            );
            assert!(find_consistent_semijoin(&inst, &sub).is_some());
        }
    } else {
        panic!("the §6 example sample is consistent");
    }
}
