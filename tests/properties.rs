//! Property-based tests (proptest) on the core invariants of the paper.

use join_query_inference::core::CountMode;
use join_query_inference::prelude::*;
use join_query_inference::semijoin::consistency::{
    exists_consistent_brute_force, find_consistent_semijoin,
};
use join_query_inference::semijoin::sample::SemijoinSample;
use proptest::prelude::*;
// Our inference `Strategy` trait collides with proptest's generator trait;
// inside this file, `Strategy` means proptest's.
use proptest::strategy::Strategy;

/// Proptest generator for a small random instance: R (2 attrs), P (2
/// attrs), up to 5 rows each, values in 0..4.
fn small_instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(prop::array::uniform2(0i64..4), 1..5),
        prop::collection::vec(prop::array::uniform2(0i64..4), 1..5),
    )
        .prop_map(|(r_rows, p_rows)| {
            let mut b = InstanceBuilder::new();
            b.relation_r("R", &["A1", "A2"]);
            b.relation_p("P", &["B1", "B2"]);
            for r in &r_rows {
                b.row_r_ints(r);
            }
            for p in &p_rows {
                b.row_p_ints(p);
            }
            b.build().expect("well-formed")
        })
}

/// A goal predicate over Ω (|Ω| = 4 for the 2×2 instances).
fn goal_mask() -> impl Strategy<Value = u8> {
    0u8..16
}

/// Like [`small_instance`], but duplicate-heavy: rows are drawn from small
/// pools with repetition (values in 0..3, up to 12 rows per relation drawn
/// from ≤4 distinct rows), so profile deduplication has real work to do.
fn duplicate_heavy_instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(prop::array::uniform2(0i64..3), 1..4),
        prop::collection::vec(0usize..4, 1..12),
        prop::collection::vec(prop::array::uniform2(0i64..3), 1..4),
        prop::collection::vec(0usize..4, 1..12),
    )
        .prop_map(|(r_pool, r_picks, p_pool, p_picks)| {
            let mut b = InstanceBuilder::new();
            b.relation_r("R", &["A1", "A2"]);
            b.relation_p("P", &["B1", "B2"]);
            for &i in &r_picks {
                b.row_r_ints(&r_pool[i % r_pool.len()]);
            }
            for &j in &p_picks {
                b.row_p_ints(&p_pool[j % p_pool.len()]);
            }
            b.build().expect("well-formed")
        })
}

fn mask_to_theta(nbits: usize, mask: u8) -> BitSet {
    BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1))
}

/// Asserts that an [`InferenceState`] agrees with the from-scratch
/// recomputation via `certain.rs` / `entropy.rs` on every derived quantity.
fn assert_state_matches_scratch(state: &InferenceState<'_>, sample: &Sample) {
    use join_query_inference::core::certain;
    let universe = state.universe();
    assert_eq!(state.is_consistent(), sample.is_consistent(universe));
    assert_eq!(state.t_pos(), sample.t_pos());
    if !state.is_consistent() {
        return; // the partition is only defined for consistent samples
    }
    assert_eq!(
        state.informative().collect::<Vec<_>>(),
        certain::informative_classes(universe, sample),
        "informative sets diverge"
    );
    assert_eq!(
        state.informative_len(),
        certain::informative_classes(universe, sample).len(),
        "maintained informative popcount diverges"
    );
    assert_eq!(
        state.any_informative(),
        certain::any_informative(universe, sample)
    );
    for mode in [CountMode::Tuples, CountMode::Classes] {
        assert_eq!(
            state.uninformative_count(mode),
            certain::uninformative_count(universe, sample, mode),
            "uninformative counts diverge under {mode:?}"
        );
    }
    for c in 0..universe.num_classes() {
        assert_eq!(
            state.label(c),
            sample.label(c),
            "labels diverge for class {c}"
        );
        if sample.label(c).is_none() {
            assert_eq!(
                state.class_state(c).certain_label(),
                certain::certain_label(universe, sample, c),
                "certain labels diverge for class {c}"
            );
        }
    }
    // One-step entropies of the informative classes.
    for c in state.informative() {
        for mode in [CountMode::Tuples, CountMode::Classes] {
            assert_eq!(
                state.entropy(c, mode),
                join_query_inference::core::entropy::entropy(universe, sample, c, mode),
                "one-step entropy diverges for class {c} under {mode:?}"
            );
        }
    }
    // Spot-check the depth-2 lookahead recursion over speculated states
    // against Algorithm 5's reference implementation (bounded: it is
    // quadratic in the informative set).
    if state.informative_len() <= 10 {
        let l2s = Lookahead::l2s();
        for (c, e) in l2s.entropies(state).into_iter().take(3) {
            assert_eq!(
                e,
                join_query_inference::core::entropy::entropy_k(
                    universe,
                    sample,
                    c,
                    2,
                    CountMode::Tuples
                ),
                "two-step entropy diverges for class {c}"
            );
        }
    }
}

/// Tentpole equivalence on the paper's own instance: a retraction-free
/// replay of Example 2.1 (every class labeled by the goal oracle of the
/// worked example, in class order) keeps the incremental state equal to the
/// from-scratch derivation after every single label.
#[test]
fn example_2_1_replay_matches_from_scratch() {
    use join_query_inference::core::paper::example_2_1;
    let universe = Universe::build(example_2_1());
    // The goal of Example 3.1: θ0 = {(A1,B1),(A2,B3)}.
    let goal = predicate_from_names(universe.instance(), &[("A1", "B1"), ("A2", "B3")])
        .expect("paper attributes exist");
    let mut state = InferenceState::new(&universe);
    let mut sample = Sample::new(&universe);
    assert_state_matches_scratch(&state, &sample);
    for c in 0..universe.num_classes() {
        if !state.is_informative(c) {
            continue; // replay is retraction-free: only informative asks
        }
        let label = if goal.is_subset(universe.sig(c)) {
            Label::Positive
        } else {
            Label::Negative
        };
        state
            .apply(c, label)
            .expect("informative class is unlabeled");
        sample.add(&universe, c, label).expect("mirrored");
        assert!(state.is_consistent(), "goal labels stay consistent");
        assert_state_matches_scratch(&state, &sample);
    }
    assert!(
        !state.any_informative(),
        "replay must exhaust informativeness"
    );
    assert_eq!(
        universe.instance().equijoin(state.t_pos()),
        universe.instance().equijoin(&goal),
    );
}

/// A deterministic instance with > 64 T-equivalence classes, so every
/// class-index mask of the inference state spans multiple words.
fn multiword_class_instance() -> Instance {
    let mut b = InstanceBuilder::new();
    b.relation_r("R", &["A1", "A2", "A3"]);
    b.relation_p("P", &["B1", "B2", "B3"]);
    for i in 0..40i64 {
        b.row_r_ints(&[i % 5, (i * 3) % 4, (i * 7) % 6]);
    }
    for j in 0..30i64 {
        b.row_p_ints(&[(j * 2) % 5, j % 4, (j * 5) % 6]);
    }
    b.build().expect("well-formed")
}

/// Multi-word class masks: the mask-compressed state must track the
/// from-scratch specs bit-for-bit when the partition masks span several
/// words (> 64 classes), through a full goal-driven replay.
#[test]
fn mask_state_matches_scratch_beyond_64_classes() {
    let universe = Universe::build(multiword_class_instance());
    assert!(
        universe.num_classes() > 64,
        "want multi-word class masks, got {} classes",
        universe.num_classes()
    );
    let goal = BitSet::from_iter(universe.omega_len(), [0usize, 4]);
    let mut state = InferenceState::new(&universe);
    let mut sample = Sample::new(&universe);
    let mut step = 0usize;
    while let Some(c) = state.nth_informative(0) {
        let label = if goal.is_subset(universe.sig(c)) {
            Label::Positive
        } else {
            Label::Negative
        };
        state.apply(c, label).expect("informative class");
        sample.add(&universe, c, label).expect("mirrored");
        // The full cross-check is cubic-ish in classes; sample it.
        if step.is_multiple_of(13) {
            assert_state_matches_scratch(&state, &sample);
        }
        step += 1;
    }
    assert_state_matches_scratch(&state, &sample);
}

/// Proptest generator for a wide instance: `R` with one attribute, `P`
/// with m = 70 — every Ω-mask (signatures, θ bounds) spans two words, the
/// regression surface of the former `m ≤ 64` limit.
fn wide_instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(0i64..4, 1..4),
        prop::collection::vec(prop::collection::vec(0i64..4, 70..71), 1..4),
    )
        .prop_map(|(r_rows, p_rows)| {
            let mut b = InstanceBuilder::new();
            let p_attrs: Vec<String> = (0..70).map(|j| format!("B{j}")).collect();
            let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
            b.relation_r("R", &["A1"]);
            b.relation_p("P", &p_refs);
            for &r in &r_rows {
                b.row_r_ints(&[r]);
            }
            for p in &p_rows {
                b.row_p_ints(p);
            }
            b.build().expect("well-formed")
        })
}

proptest! {
    /// Satellite equivalence at m = 70 (multi-word Ω): after ANY label
    /// sequence, the mask-compressed `InferenceState` equals the
    /// from-scratch recomputation via `certain.rs` / `entropy.rs`.
    #[test]
    fn mask_state_matches_scratch_on_wide_instances(
        inst in wide_instance(),
        labels in prop::collection::vec(0u8..3, 0..8),
    ) {
        let universe = Universe::build(inst);
        let mut state = InferenceState::new(&universe);
        let mut sample = Sample::new(&universe);
        for (c, &l) in labels.iter().enumerate().take(universe.num_classes()) {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            if sample.label(c).is_some() {
                continue;
            }
            sample.add(&universe, c, label).expect("unlabeled");
            state.apply(c, label).expect("mirrored");
            assert_state_matches_scratch(&state, &sample);
            if !state.is_consistent() {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite equivalence on duplicate-heavy `ScaledConfig` instances:
    /// class weights are real multiplicities, so the weighted
    /// uninformative counts and gains exercise the tuple-mode folds.
    #[test]
    fn mask_state_matches_scratch_on_scaled_config(
        seed in 0u64..1000,
        labels in prop::collection::vec(0u8..3, 0..10),
    ) {
        use join_query_inference::datagen::ScaledConfig;
        let cfg = ScaledConfig::new(3, 3, 120, 90, 10, 8, 6);
        let universe = Universe::build(cfg.generate(seed));
        prop_assert!(universe.total_tuples() == 120 * 90);
        let mut state = InferenceState::new(&universe);
        let mut sample = Sample::new(&universe);
        for (i, &l) in labels.iter().enumerate() {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            // Spread the labels over the class range.
            let c = (i * 7) % universe.num_classes().max(1);
            if sample.label(c).is_some() {
                continue;
            }
            sample.add(&universe, c, label).expect("unlabeled");
            state.apply(c, label).expect("mirrored");
            assert_state_matches_scratch(&state, &sample);
            if !state.is_consistent() {
                break;
            }
        }
    }
}

proptest! {
    /// The deduplicated (and parallel) `Universe::build` is equivalent to
    /// the naive sequential row-pair reference build on duplicate-heavy
    /// random instances: same signature/count multiset, same total tuple
    /// count, and every representative lies in its own class. Class ids,
    /// counts, and representatives are identical across worker counts.
    #[test]
    fn dedup_parallel_build_matches_rowpair_reference(
        inst in duplicate_heavy_instance(),
    ) {
        let fast = Universe::build(inst.clone());
        let reference = Universe::build_rowpair_reference(inst.clone());
        prop_assert_eq!(fast.num_classes(), reference.num_classes());
        prop_assert_eq!(fast.total_tuples(), reference.total_tuples());
        prop_assert_eq!(fast.total_tuples(), inst.product_size());
        // Same signature → count mapping (orders may differ).
        let key = |u: &Universe| {
            let mut v: Vec<(BitSet, u64)> =
                u.iter().map(|(_, s, n)| (s.clone(), n)).collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&fast), key(&reference));
        // Representatives belong to the class they represent, and class_of
        // agrees with the signature partition for every product tuple.
        for u in [&fast, &reference] {
            for c in 0..u.num_classes() {
                let (ri, pi) = u.representative(c);
                prop_assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
            }
        }
        for (ri, pi) in inst.product() {
            let c = fast.class_of(ri, pi).expect("every tuple has a class");
            prop_assert_eq!(fast.sig(c), &inst.signature(ri, pi));
        }
        // Forced-parallel builds merge into the identical sequential result.
        let seq = Universe::build_with_parallelism(inst.clone(), 1);
        for threads in [2usize, 4] {
            let par = Universe::build_with_parallelism(inst.clone(), threads);
            prop_assert_eq!(seq.sigs(), par.sigs());
            prop_assert_eq!(seq.num_classes(), par.num_classes());
            for c in 0..seq.num_classes() {
                prop_assert_eq!(seq.count(c), par.count(c));
                prop_assert_eq!(seq.representative(c), par.representative(c));
            }
        }
    }

    /// The branch-and-bound LkS recursion is exact: pruned entropies and
    /// selections match the exhaustive Algorithm 5 recursion over cloned
    /// samples, at depths 2 and 3, from arbitrary reachable states.
    #[test]
    fn pruned_lks_matches_unpruned_recursion(
        inst in duplicate_heavy_instance(),
        labels in prop::collection::vec(0u8..3, 0..4),
    ) {
        let universe = Universe::build(inst);
        let mut state = InferenceState::new(&universe);
        for (c, &l) in labels.iter().enumerate().take(universe.num_classes()) {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            if state.is_informative(c) {
                state.apply(c, label).expect("informative is unlabeled");
            }
        }
        prop_assert!(state.is_consistent(), "goal-free labels of informative classes stay consistent");
        let sample = state.as_sample();
        prop_assume!(state.informative_len() <= 8);
        for k in [2usize, 3] {
            let mut strategy = Lookahead::new(k);
            let entries = strategy.entropies(&state);
            for &(c, e) in &entries {
                prop_assert_eq!(
                    e,
                    join_query_inference::core::entropy::entropy_k(
                        &universe,
                        &sample,
                        c,
                        k,
                        CountMode::Tuples,
                    ),
                    "depth-{} entropy diverges for class {}", k, c
                );
            }
            // Inference `Strategy` is shadowed by proptest's in this file;
            // call `next` fully qualified.
            let picked = join_query_inference::core::strategy::Strategy::next(
                &mut strategy,
                &state,
            )
            .expect("strategies are infallible");
            let exhaustive = join_query_inference::core::entropy::select_best(&entries)
                .map(|(c, _)| c);
            prop_assert_eq!(picked, exhaustive, "depth-{} selection diverges", k);
        }
    }

    /// Tentpole equivalence: after ANY label sequence (including labels on
    /// certain classes and inconsistent labelings), the incremental
    /// `InferenceState` equals the from-scratch recomputation via
    /// `certain.rs` / `entropy.rs`.
    #[test]
    fn incremental_state_matches_from_scratch(
        inst in small_instance(),
        labels in prop::collection::vec(0u8..3, 0..10),
    ) {
        let universe = Universe::build(inst);
        let mut state = InferenceState::new(&universe);
        let mut sample = Sample::new(&universe);
        for (c, &l) in labels.iter().enumerate().take(universe.num_classes()) {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            if sample.label(c).is_some() {
                continue;
            }
            sample.add(&universe, c, label).expect("unlabeled");
            state.apply(c, label).expect("mirrored");
            assert_state_matches_scratch(&state, &sample);
            if !state.is_consistent() {
                break; // both representations agree it's inconsistent
            }
        }
    }

    /// The interval `[θ_certain, θ_possible]` brackets every consistent
    /// predicate, tightly: θ_certain is the meet and θ_possible the join
    /// of C(S), verified by brute-force enumeration.
    #[test]
    fn state_interval_is_the_consistent_hull(
        inst in small_instance(),
        labels in prop::collection::vec(0u8..3, 0..8),
    ) {
        let universe = Universe::build(inst);
        let mut state = InferenceState::new(&universe);
        for (c, &l) in labels.iter().enumerate().take(universe.num_classes()) {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            let hypothetical = state.speculate(c, label);
            if hypothetical.is_consistent() {
                state = hypothetical;
            }
        }
        prop_assert!(state.is_consistent());
        let sample = state.as_sample();
        let nbits = universe.omega_len();
        let consistent: Vec<BitSet> = (0u16..(1 << nbits))
            .map(|mask| BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1)))
            .filter(|theta| sample.admits(&universe, theta))
            .collect();
        prop_assert!(!consistent.is_empty());
        let (lo, hi) = state.interval();
        let mut meet = consistent[0].clone();
        let mut join = consistent[0].clone();
        for theta in &consistent {
            prop_assert!(lo.is_subset(theta), "θ_certain outside a consistent θ");
            prop_assert!(theta.is_subset(&hi), "consistent θ outside θ_possible");
            meet.intersect_with(theta);
            join.union_with(theta);
        }
        prop_assert_eq!(meet, lo, "θ_certain must be the meet of C(S)");
        prop_assert_eq!(join, hi, "θ_possible must be the join of C(S)");
    }

    /// Anti-monotonicity (§2): θ1 ⊆ θ2 ⇒ R ⋈θ2 P ⊆ R ⋈θ1 P and likewise
    /// for semijoins.
    #[test]
    fn join_is_anti_monotone(inst in small_instance(), m1 in goal_mask(), m2 in goal_mask()) {
        let nbits = inst.pairs().len();
        let t1 = mask_to_theta(nbits, m1 & m2); // t1 ⊆ t2 by construction
        let t2 = mask_to_theta(nbits, m2);
        let j1 = inst.equijoin(&t1);
        let j2 = inst.equijoin(&t2);
        prop_assert!(j2.iter().all(|t| j1.contains(t)));
        let s1 = inst.semijoin(&t1);
        let s2 = inst.semijoin(&t2);
        prop_assert!(s2.iter().all(|t| s1.contains(t)));
    }

    /// T is the most specific selector: θ selects t iff θ ⊆ T(t).
    #[test]
    fn signature_characterizes_selection(inst in small_instance(), m in goal_mask()) {
        let nbits = inst.pairs().len();
        let theta = mask_to_theta(nbits, m);
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            prop_assert_eq!(inst.selects(&theta, ri, pi), theta.is_subset(&sig));
        }
    }

    /// §3.1 soundness & completeness of consistency checking: the sample
    /// labeled by ANY goal predicate is consistent, and T(S⁺) is consistent
    /// with it.
    #[test]
    fn goal_labeled_samples_are_consistent(inst in small_instance(), m in goal_mask()) {
        let nbits = inst.pairs().len();
        let goal = mask_to_theta(nbits, m);
        let universe = Universe::build(inst);
        let mut sample = Sample::new(&universe);
        for c in 0..universe.num_classes() {
            let label = if goal.is_subset(universe.sig(c)) {
                Label::Positive
            } else {
                Label::Negative
            };
            sample.add(&universe, c, label).expect("fresh class");
        }
        prop_assert!(sample.is_consistent(&universe));
        let tpos = sample.t_pos();
        // T(S⁺) selects exactly the goal's selection (instance equivalence).
        prop_assert_eq!(
            universe.instance().equijoin(tpos),
            universe.instance().equijoin(&goal)
        );
    }

    /// Lemma 3.2 semantics: a class is certain-positive iff *every*
    /// consistent predicate selects it, certain-negative iff none does
    /// (checked by brute-force enumeration of C(S)).
    #[test]
    fn certain_tuples_match_brute_force(
        inst in small_instance(),
        labels in prop::collection::vec(0u8..3, 0..6),
    ) {
        let universe = Universe::build(inst);
        let mut sample = Sample::new(&universe);
        for (c, &l) in labels.iter().enumerate().take(universe.num_classes()) {
            let label = match l {
                0 => continue,
                1 => Label::Positive,
                _ => Label::Negative,
            };
            let mut trial = sample.clone();
            if trial.add(&universe, c, label).is_ok() && trial.is_consistent(&universe) {
                sample = trial;
            }
        }
        let nbits = universe.omega_len();
        let consistent: Vec<BitSet> = (0u16..(1 << nbits))
            .map(|mask| BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1)))
            .filter(|theta| sample.admits(&universe, theta))
            .collect();
        prop_assert!(!consistent.is_empty());
        for c in 0..universe.num_classes() {
            let sig = universe.sig(c);
            let always = consistent.iter().all(|t| t.is_subset(sig));
            let never = consistent.iter().all(|t| !t.is_subset(sig));
            prop_assert_eq!(
                join_query_inference::core::certain::is_certain_positive(&universe, &sample, c),
                always
            );
            prop_assert_eq!(
                join_query_inference::core::certain::is_certain_negative(&universe, &sample, c),
                never
            );
        }
    }

    /// Every strategy infers an instance-equivalent predicate for every
    /// goal, and never exceeds the number of classes in interactions.
    #[test]
    fn inference_is_correct_and_bounded(inst in small_instance(), m in goal_mask(), seed in 0u64..1000) {
        let nbits = inst.pairs().len();
        let goal = mask_to_theta(nbits, m);
        let universe = Universe::build(inst);
        for kind in StrategyKind::PAPER.into_iter().chain([StrategyKind::Eg]) {
            let mut strategy = kind.build(seed);
            let mut oracle = PredicateOracle::new(goal.clone());
            let run = run_inference(&universe, strategy.as_mut(), &mut oracle)
                .expect("goal oracles are consistent");
            prop_assert_eq!(
                universe.instance().equijoin(&run.predicate),
                universe.instance().equijoin(&goal)
            );
            prop_assert!(run.interactions <= universe.num_classes());
            // No question was wasted on an already-certain tuple: replaying
            // the history, every asked class is informative at ask time.
            let mut replay = Sample::new(&universe);
            for &(c, label) in &run.history {
                prop_assert!(
                    join_query_inference::core::certain::is_informative(&universe, &replay, c),
                    "asked an uninformative class"
                );
                replay.add(&universe, c, label).expect("fresh");
            }
        }
    }

    /// The minimax-optimal worst case lower-bounds every deterministic
    /// heuristic's true worst case (maximum over all consistent answer
    /// sequences, i.e. the full adversary game tree).
    #[test]
    fn optimal_is_a_lower_bound(inst in small_instance()) {
        use join_query_inference::core::strategy::{optimal_worst_case, strategy_worst_case};
        let universe = Universe::build(inst);
        prop_assume!(universe.num_classes() <= 8);
        let opt = optimal_worst_case(&universe, 8).expect("small universe");
        for kind in [StrategyKind::Bu, StrategyKind::Td, StrategyKind::L1s] {
            let mut strategy = kind.build(0);
            let wc = strategy_worst_case(&universe, strategy.as_mut())
                .expect("deterministic strategy");
            prop_assert!(wc >= opt, "{} worst case {} < OPT {}", kind.name(), wc, opt);
        }
        // And OPT attains its own bound.
        let mut optimal = Optimal::with_limit(8);
        let wc = strategy_worst_case(&universe, &mut optimal).expect("fits limit");
        prop_assert_eq!(wc, opt);
    }

    /// The exact CONS⋉ solver agrees with brute-force enumeration and its
    /// witness is semantically consistent.
    #[test]
    fn semijoin_solver_matches_brute_force(
        inst in small_instance(),
        labels in prop::collection::vec(0u8..3, 0..5),
    ) {
        let rows = inst.r().len();
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (r, &l) in labels.iter().enumerate().take(rows) {
            match l {
                1 => pos.push(r),
                2 => neg.push(r),
                _ => {}
            }
        }
        let sample = SemijoinSample::from_rows(pos, neg);
        let exact = find_consistent_semijoin(&inst, &sample);
        let brute = exists_consistent_brute_force(&inst, &sample);
        prop_assert_eq!(exact.is_some(), brute);
        if let Some(theta) = exact {
            prop_assert!(sample.admits(&inst, &theta));
        }
    }

    /// TPC-H generator invariants hold for every seed: dense keys, valid
    /// foreign keys, nonempty goal joins for all five workloads.
    #[test]
    fn tpch_generator_invariants(seed in 0u64..10_000) {
        use join_query_inference::datagen::tpch::{TpchScale, TpchTables};
        let t = TpchTables::generate(TpchScale::Small, seed);
        let n_part = t.parts.len() as i64;
        let n_supp = t.suppliers.len() as i64;
        let n_ord = t.orders.len() as i64;
        for &(pk, sk, ..) in &t.partsupps {
            prop_assert!((0..n_part).contains(&pk));
            prop_assert!((0..n_supp).contains(&sk));
        }
        for &(ok, pk, sk, ln, q) in &t.lineitems {
            prop_assert!((0..n_ord).contains(&ok));
            prop_assert!((0..n_part).contains(&pk));
            prop_assert!((0..n_supp).contains(&sk));
            prop_assert!((1..=3).contains(&ln));
            prop_assert!((1..=50).contains(&q));
        }
        for w in t.workloads() {
            prop_assert!(!w.instance.equijoin(&w.goal).is_empty(), "{} empty", w.join);
        }
    }

    /// Synthetic generator invariants for arbitrary configurations.
    #[test]
    fn synthetic_generator_invariants(
        attrs_r in 1usize..4,
        attrs_p in 1usize..4,
        rows in 1usize..20,
        values in 1u32..12,
        seed in 0u64..1000,
    ) {
        use join_query_inference::datagen::SyntheticConfig;
        let cfg = SyntheticConfig::new(attrs_r, attrs_p, rows, values);
        let inst = cfg.generate(seed);
        prop_assert_eq!(inst.r().len(), rows);
        prop_assert_eq!(inst.p().len(), rows);
        prop_assert_eq!(inst.pairs().len(), attrs_r * attrs_p);
        for row in inst.r().rows().iter().chain(inst.p().rows()) {
            for v in row.resolve(inst.interner()) {
                let i = v.as_int().expect("ints only");
                prop_assert!((0..values as i64).contains(&i));
            }
        }
        // Regeneration with the same seed is identical.
        let again = cfg.generate(seed);
        for (a, b) in inst.r().rows().iter().zip(again.r().rows()) {
            prop_assert_eq!(a.symbols(), b.symbols());
        }
    }

    /// BitSet algebra laws on the sizes the predicates actually use.
    #[test]
    fn bitset_laws(
        xs in prop::collection::btree_set(0usize..130, 0..20),
        ys in prop::collection::btree_set(0usize..130, 0..20),
    ) {
        let a = BitSet::from_iter(130, xs.iter().copied());
        let b = BitSet::from_iter(130, ys.iter().copied());
        let inter = a.intersection(&b);
        let union = a.union(&b);
        prop_assert!(inter.is_subset(&a) && inter.is_subset(&b));
        prop_assert!(a.is_subset(&union) && b.is_subset(&union));
        prop_assert_eq!(inter.len() + union.len(), a.len() + b.len());
        // intersection_is_subset ≡ naive composition, on a third set.
        let c = BitSet::from_iter(130, xs.iter().map(|&x| (x * 7) % 130));
        prop_assert_eq!(
            a.intersection_is_subset(&b, &c),
            a.intersection(&b).is_subset(&c)
        );
        // Iteration is sorted and round-trips.
        let back: Vec<usize> = a.iter().collect();
        let expect: Vec<usize> = xs.into_iter().collect();
        prop_assert_eq!(back, expect);
    }
}

/// The strategy configs the universe-level decision cache covers.
fn deterministic_configs() -> Vec<StrategyConfig> {
    vec![
        StrategyConfig::Bu,
        StrategyConfig::Td,
        StrategyConfig::Lks { depth: 1 },
        StrategyConfig::Lks { depth: 2 },
        StrategyConfig::Eg,
    ]
}

/// Drives goal-oracle sessions over `cached` and `uncached` in lock-step,
/// asserting the cached move equals the cache-free reference at every
/// step. Runs two passes over the cached universe so the second pass is
/// served from a populated cache.
fn assert_cached_moves_match(cached: &Universe, uncached: &Universe, goal: &BitSet) {
    use join_query_inference::core::strategy::Strategy as InferenceStrategy;
    for config in deterministic_configs() {
        for pass in 0..2 {
            let mut s_cached = config.build();
            let mut s_uncached = config.build();
            let mut st_cached = InferenceState::new(cached);
            let mut st_uncached = InferenceState::new(uncached);
            let mut step = 0usize;
            loop {
                let a = InferenceStrategy::next(&mut s_cached, &st_cached)
                    .expect("deterministic strategies are infallible");
                let b = InferenceStrategy::next(&mut s_uncached, &st_uncached)
                    .expect("deterministic strategies are infallible");
                assert_eq!(
                    a, b,
                    "cached move diverges from uncached for {config} at step {step} (pass {pass})"
                );
                let Some(c) = a else { break };
                let label = if goal.is_subset(cached.sig(c)) {
                    Label::Positive
                } else {
                    Label::Negative
                };
                st_cached.apply(c, label).expect("informative class");
                st_uncached.apply(c, label).expect("informative class");
                step += 1;
                assert!(step <= cached.num_classes() + 1, "runaway session");
            }
        }
    }
    let stats = cached.decision_cache_stats();
    assert!(stats.hits > 0, "the second pass must hit the cache");
    assert!(stats.bytes <= stats.budget_bytes.max(1));
}

proptest! {
    /// Tentpole equivalence: for every deterministic strategy, in BOTH
    /// phases (all-negative openings and below-Ω positive states), the
    /// move served through the universe-level decision cache equals the
    /// move computed without any cache — across arbitrary instances and
    /// goals, including repeat sessions over the same warm universe.
    #[test]
    fn cached_moves_match_uncached(inst in small_instance(), m in goal_mask()) {
        let goal = mask_to_theta(inst.pairs().len(), m);
        let cached = Universe::build(inst.clone());
        let uncached = Universe::build_with_cache_budget(inst, 0);
        assert_cached_moves_match(&cached, &uncached, &goal);
    }

    /// The same equivalence under byte-budget pressure: a cache big enough
    /// for only a few entries keeps evicting mid-session, and every probe
    /// must still return exactly the uncached move.
    #[test]
    fn cached_moves_match_uncached_under_eviction(
        inst in small_instance(),
        m in goal_mask(),
    ) {
        let goal = mask_to_theta(inst.pairs().len(), m);
        // ~1 KiB: a handful of entries, so LRU eviction churns constantly.
        let cached = Universe::build_with_cache_budget(inst.clone(), 1 << 10);
        let uncached = Universe::build_with_cache_budget(inst, 0);
        for config in deterministic_configs() {
            use join_query_inference::core::strategy::Strategy as InferenceStrategy;
            let mut s_cached = config.build();
            let mut s_uncached = config.build();
            let mut st_cached = InferenceState::new(&cached);
            let mut st_uncached = InferenceState::new(&uncached);
            loop {
                let a = InferenceStrategy::next(&mut s_cached, &st_cached).unwrap();
                let b = InferenceStrategy::next(&mut s_uncached, &st_uncached).unwrap();
                prop_assert_eq!(a, b, "eviction-pressure move diverges for {}", config);
                let Some(c) = a else { break };
                let label = if goal.is_subset(cached.sig(c)) {
                    Label::Positive
                } else {
                    Label::Negative
                };
                st_cached.apply(c, label).unwrap();
                st_uncached.apply(c, label).unwrap();
            }
        }
        let stats = cached.decision_cache_stats();
        prop_assert!(stats.bytes <= 1 << 10, "cache exceeded its byte budget");
    }
}

/// Multi-word **negative masks** (> 64 classes): cached ≡ uncached for
/// every deterministic strategy on an instance whose class masks span
/// several words, driven by goals that exercise both phases.
#[test]
fn cached_moves_match_uncached_beyond_64_classes() {
    let inst = multiword_class_instance();
    let cached = Universe::build(inst.clone());
    let uncached = Universe::build_with_cache_budget(inst, 0);
    assert!(cached.num_classes() > 64, "want multi-word class masks");
    // Ω itself (all-negative answers, pure negative phase) and a small
    // predicate (positives arrive, θ shrinks below Ω).
    let nbits = cached.omega_len();
    for goal in [cached.omega(), BitSet::from_iter(nbits, [0usize, 4])] {
        assert_cached_moves_match(&cached, &uncached, &goal);
    }
}

/// Multi-word **Ω** (m = 70, two words per signature/θ): cached ≡ uncached
/// with positive-phase keys that carry a genuinely multi-word T(S⁺).
#[test]
fn cached_moves_match_uncached_on_wide_omega() {
    let mut b = InstanceBuilder::new();
    let p_attrs: Vec<String> = (0..70).map(|j| format!("B{j}")).collect();
    let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
    b.relation_r("R", &["A1"]);
    b.relation_p("P", &p_refs);
    for r in [0i64, 1, 2] {
        b.row_r_ints(&[r]);
    }
    for s in 0..3i64 {
        let row: Vec<i64> = (0..70).map(|j| (j as i64 + s) % 4).collect();
        b.row_p_ints(&row);
    }
    let inst = b.build().expect("well-formed");
    let cached = Universe::build(inst.clone());
    let uncached = Universe::build_with_cache_budget(inst, 0);
    assert!(cached.omega_len() > 64, "want multi-word Ω");
    let goal = BitSet::from_iter(cached.omega_len(), [1usize, 67]);
    assert_cached_moves_match(&cached, &uncached, &goal);
}

// ---------------------------------------------------------------------------
// Streaming ingestion ≡ materialized build
// ---------------------------------------------------------------------------

use join_query_inference::relation::{RowChunk, Side, StreamSchema};

/// The instance's rows re-cut into side-tagged chunks of `chunk_rows`,
/// plus the matching [`StreamSchema`] (same interner, same schemas), so a
/// streamed build sees byte-identical input to the materialized one.
fn chunked(inst: &Instance, chunk_rows: usize) -> (StreamSchema, Vec<RowChunk>) {
    let schema = StreamSchema::new(
        inst.interner_handle(),
        inst.r().schema().clone(),
        inst.p().schema().clone(),
    )
    .expect("instance schemas are disjoint");
    let mut chunks = Vec::new();
    for rows in inst.r().rows().chunks(chunk_rows) {
        chunks.push(RowChunk {
            side: Side::R,
            rows: rows.to_vec(),
        });
    }
    for rows in inst.p().rows().chunks(chunk_rows) {
        chunks.push(RowChunk {
            side: Side::P,
            rows: rows.to_vec(),
        });
    }
    (schema, chunks)
}

/// Asserts a streamed universe is indistinguishable from the materialized
/// one everywhere the inference layer looks: class count and order,
/// signatures, weights, profile counts, closure masks, and representative
/// tuples (compared by content — the streamed instance holds one row per
/// distinct profile, so row *indices* legitimately differ).
fn assert_universes_equivalent(materialized: &Universe, streamed: &Universe) {
    assert_eq!(streamed.num_classes(), materialized.num_classes());
    assert_eq!(streamed.sigs(), materialized.sigs());
    assert_eq!(streamed.counts(), materialized.counts());
    assert_eq!(streamed.total_tuples(), materialized.total_tuples());
    assert_eq!(
        streamed.distinct_r_profiles(),
        materialized.distinct_r_profiles()
    );
    assert_eq!(
        streamed.distinct_p_profiles(),
        materialized.distinct_p_profiles()
    );
    let (mc, sc) = (materialized.closure(), streamed.closure());
    assert_eq!(sc.classes(), mc.classes());
    for b in 0..materialized.omega_len() {
        assert_eq!(sc.members(b), mc.members(b), "members mask of Ω-bit {b}");
    }
    assert_eq!(sc.has_static_masks(), mc.has_static_masks());
    for c in 0..mc.classes() {
        assert_eq!(sc.up(c), mc.up(c), "up mask of class {c}");
        assert_eq!(sc.down(c), mc.down(c), "down mask of class {c}");
        let (mri, mpi) = materialized.representative(c);
        let (sri, spi) = streamed.representative(c);
        // Both instances share one interner, so symbol-level equality is
        // value-level equality.
        assert_eq!(
            streamed.instance().r().rows()[sri].symbols(),
            materialized.instance().r().rows()[mri].symbols(),
            "R representative of class {c}"
        );
        assert_eq!(
            streamed.instance().p().rows()[spi].symbols(),
            materialized.instance().p().rows()[mpi].symbols(),
            "P representative of class {c}"
        );
    }
}

/// Streams `inst` at every (thread count × chunk size) combination the
/// issue calls out and checks each result against `Universe::build`.
fn assert_streaming_matches_build(inst: Instance) {
    let materialized = Universe::build(inst.clone());
    for threads in [1usize, 2, 8] {
        for chunk_rows in [1usize, 7, 4096] {
            let (schema, chunks) = chunked(&inst, chunk_rows);
            let (streamed, stats) =
                Universe::build_streaming(schema, || chunks.clone().into_iter(), threads);
            assert_eq!(stats.rows_r as usize, inst.r().len());
            assert_eq!(stats.rows_p as usize, inst.p().len());
            assert_universes_equivalent(&materialized, &streamed);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole equivalence: `Universe::build_streaming` ≡
    /// `Universe::build` — identical class signatures, ids, counts,
    /// closure masks, and representative tuples — on duplicate-heavy
    /// instances, for 1/2/8 ingestion threads × chunk sizes {1, 7, 4096}.
    #[test]
    fn streamed_build_matches_materialized(inst in duplicate_heavy_instance()) {
        assert_streaming_matches_build(inst);
    }
}

/// The same equivalence on duplicate-heavy `ScaledConfig` instances (the
/// scaling sweep's generator, where profile deduplication collapses
/// thousands of rows into ≤ 2⁶ profiles per side).
#[test]
fn streamed_build_matches_materialized_on_scaled_config() {
    use join_query_inference::datagen::ScaledConfig;
    for seed in [1u64, 0x5CA1E] {
        let inst = ScaledConfig::new(3, 3, 200, 200, 8, 8, 12).generate(seed);
        assert_streaming_matches_build(inst);
    }
}

/// The same equivalence on TPC-H small (Join 3, Customer ⋈ Orders — the
/// low-duplication end where nearly every row is its own profile).
#[test]
fn streamed_build_matches_materialized_on_tpch_small() {
    use join_query_inference::datagen::tpch::{workload, TpchJoin, TpchScale};
    let w = workload(TpchScale::Small, TpchJoin::Join3, 7);
    assert_streaming_matches_build(w.instance);
}

/// End-to-end: the `SfStream` chunk generator (parallel workers, bounded
/// channels) streamed into `build_streaming` equals materializing the
/// same stream and running `Universe::build`, for several worker counts.
#[test]
fn sf_stream_streamed_matches_materialized() {
    use join_query_inference::datagen::stream::{SfConfig, SfJoin, SfStream};
    let config = SfConfig::new(0.0005, 11).with_chunk_rows(128);
    for join in [SfJoin::CustomerOrders, SfJoin::OrdersLineitem] {
        let stream = SfStream::new(config, join).expect("well-formed stream schema");
        let materialized = Universe::build(stream.materialize().expect("well-formed rows"));
        for (threads, gen_workers) in [(1usize, 1usize), (2, 3), (8, 2)] {
            let (streamed, stats) = Universe::build_streaming(
                stream.schema().clone(),
                || stream.par_chunks(gen_workers, 2),
                threads,
            );
            assert!(stats.rows_r > 0 && stats.rows_p > 0);
            assert_universes_equivalent(&materialized, &streamed);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental universe maintenance ≡ rebuild of the edited instance
// ---------------------------------------------------------------------------

use join_query_inference::core::{ClassId, UniverseDelta};
use join_query_inference::relation::{Relation, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// One abstract edit: side, insert-or-delete, row material (inserts draw
/// values overlapping the instance pool — recombining live symbols — and
/// past it, so genuinely fresh and newly-shared symbols appear too), and
/// an index seed (deletes pick a surviving row with it).
type AbstractEdit = (u8, u8, [i64; 2], usize);

fn edit_scripts() -> impl Strategy<Value = Vec<AbstractEdit>> {
    prop::collection::vec(
        (0u8..2, 0u8..2, prop::array::uniform2(0i64..6), 0usize..64),
        1..10,
    )
}

/// Folds an abstract script into a concrete [`UniverseDelta`] against
/// `inst`, mirroring every edit on plain row lists (the rebuild oracle's
/// input). A delete aimed at an emptied side falls back to an insert, so
/// every generated script is valid by construction.
fn concrete_delta(
    inst: &Instance,
    script: &[AbstractEdit],
) -> (UniverseDelta, Vec<Tuple>, Vec<Tuple>) {
    let mut delta = UniverseDelta::new();
    let mut r: Vec<Tuple> = inst.r().rows().to_vec();
    let mut p: Vec<Tuple> = inst.p().rows().to_vec();
    for &(on_r, insert, vals, pick) in script {
        let (side, rows) = if on_r == 1 {
            (Side::R, &mut r)
        } else {
            (Side::P, &mut p)
        };
        if insert == 1 || rows.is_empty() {
            let row = Tuple::intern(inst.interner(), &[Value::int(vals[0]), Value::int(vals[1])]);
            delta.insert(side, row.clone());
            rows.push(row);
        } else {
            let row = rows.remove(pick % rows.len());
            delta.delete(side, row);
        }
    }
    (delta, r, p)
}

/// `Universe::build` of the edited rows, sharing the original interner
/// (so symbol-level comparisons against the delta result are value-level
/// comparisons), with the decision cache sized by `cache_bytes`.
fn rebuild_edited(inst: &Instance, r: Vec<Tuple>, p: Vec<Tuple>, cache_bytes: usize) -> Universe {
    let mut rr = Relation::new(inst.r().schema().clone());
    for t in r {
        rr.push_tuple(t).expect("edited rows keep the schema arity");
    }
    let mut pp = Relation::new(inst.p().schema().clone());
    for t in p {
        pp.push_tuple(t).expect("edited rows keep the schema arity");
    }
    let edited = Instance::new(inst.interner_handle(), rr, pp).expect("schemas are disjoint");
    Universe::build(edited).with_decision_cache_budget(cache_bytes)
}

/// Class structure keyed by signature words rather than class id: the
/// count, and the up/down closure sets expressed as signature sets. Two
/// universes with equal maps are indistinguishable to the inference
/// layer up to class relabeling.
#[allow(clippy::type_complexity)]
fn class_structure(
    u: &Universe,
) -> BTreeMap<Vec<u64>, (u64, BTreeSet<Vec<u64>>, BTreeSet<Vec<u64>>)> {
    let n = u.num_classes();
    let sig_words = |c: usize| u.sig(c as ClassId).words().to_vec();
    let mask_sigs = |mask: &[u64]| -> BTreeSet<Vec<u64>> {
        (0..n)
            .filter(|&t| mask[t / 64] >> (t % 64) & 1 == 1)
            .map(sig_words)
            .collect()
    };
    (0..n)
        .map(|c| {
            let up = u
                .closure()
                .up(c as ClassId)
                .map(mask_sigs)
                .unwrap_or_default();
            let down = u
                .closure()
                .down(c as ClassId)
                .map(mask_sigs)
                .unwrap_or_default();
            (sig_words(c), (u.count(c as ClassId), up, down))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite equivalence: `Universe::apply_delta` over a random edit
    /// script equals `Universe::build` of the edited instance — same
    /// signature multiset, counts, and closure structure — on
    /// duplicate-heavy instances where deletes retire whole profiles and
    /// inserts mint new ones.
    #[test]
    fn delta_applied_matches_rebuild_of_edited_instance(
        inst in duplicate_heavy_instance(),
        script in edit_scripts(),
    ) {
        let base = Universe::build(inst.clone());
        let (delta, r, p) = concrete_delta(&inst, &script);
        let applied = base.apply_delta(&delta).expect("folded scripts are valid");
        let rebuilt = rebuild_edited(&inst, r, p, 0);
        prop_assert_eq!(applied.epoch(), 1);
        prop_assert!(applied.fingerprint() != base.fingerprint());
        prop_assert_eq!(applied.total_tuples(), rebuilt.total_tuples());
        prop_assert_eq!(applied.num_classes(), rebuilt.num_classes());
        prop_assert_eq!(
            class_structure(&applied),
            class_structure(&rebuilt),
            "class structure diverged from the from-scratch build"
        );
        // Every representative must live in the class it represents.
        for c in 0..applied.num_classes() {
            let (ri, pi) = applied.representative(c as ClassId);
            prop_assert_eq!(applied.class_of(ri, pi), Some(c as ClassId));
        }
    }
}

/// Regression: a move cached on the pre-delta universe is never served
/// after `apply_delta`. The delta result starts with an empty decision
/// cache, its epoch is folded into the cache key and the fingerprint,
/// and its cached moves still equal the uncached reference over the
/// edited data.
#[test]
fn post_delta_universe_serves_no_stale_cached_moves() {
    let mut b = InstanceBuilder::new();
    b.relation_r("R", &["A1", "A2"]);
    b.relation_p("P", &["B1", "B2"]);
    for r in [[0i64, 1], [0, 2], [2, 2], [1, 0]] {
        b.row_r_ints(&r);
    }
    for p in [[1i64, 1], [0, 1], [2, 0]] {
        b.row_p_ints(&p);
    }
    let inst = b.build().expect("well-formed");
    let base = Universe::build(inst.clone());

    // Warm the pre-delta cache (the lock-step driver runs two passes, so
    // the second is served from the cache).
    let goal = mask_to_theta(inst.pairs().len(), 0b0101);
    let uncached = rebuild_edited(&inst, inst.r().rows().to_vec(), inst.p().rows().to_vec(), 0);
    assert_cached_moves_match(&base, &uncached, &goal);
    let warm = base.decision_cache_stats();
    assert!(warm.hits > 0 && warm.entries > 0, "pre-delta cache is warm");

    // A structural delta: (2,1) recombines live symbols into signatures
    // the base universe has no class for.
    let mut delta = UniverseDelta::new();
    let row = Tuple::intern(inst.interner(), &[Value::int(2), Value::int(1)]);
    delta.insert(Side::R, row.clone());
    let applied = base.apply_delta(&delta).expect("valid edit");
    assert_eq!(applied.epoch(), 1);
    assert_ne!(applied.fingerprint(), base.fingerprint());

    // Nothing cached before the delta survives into the result: the
    // cache starts empty, and the epoch in the key makes even an
    // accidental carry-over unmatchable.
    let fresh = applied.decision_cache_stats();
    assert_eq!(fresh.hits, 0, "no pre-delta cached move was served");
    assert_eq!(fresh.entries, 0, "the post-delta cache starts empty");

    // And the post-delta universe's cached moves equal the uncached
    // reference built from scratch over the edited rows.
    let mut r = inst.r().rows().to_vec();
    r.push(row);
    let rebuilt_uncached = rebuild_edited(&inst, r, inst.p().rows().to_vec(), 0);
    assert_cached_moves_match(&applied, &rebuilt_uncached, &goal);
}
