//! Property test: scripted crashes × workloads. A fleet that loses its
//! process mid-write must recover to a state indistinguishable from one
//! that stopped cleanly at the same log prefix — or refuse loudly. Never
//! silent divergence.
//!
//! The crash is injected at the storage seam ([`MemWal`] with a
//! [`CrashScript`]): at a scripted append the write is dropped entirely,
//! torn mid-frame, or bit-flipped, and everything after it never reaches
//! the durable image — exactly the shapes a `kill -9` (or worse, bit rot)
//! leaves behind. The real-process variant lives in
//! `tests/crash_recovery.rs`.

use jqi_core::{ClassId, Label, StrategyConfig, Universe};
use jqi_datagen::SyntheticConfig;
use jqi_relation::BitSet;
use jqi_server::durability::{CrashScript, Damage, MemSegments, MemWal};
use jqi_server::{DurabilityConfig, ServerConfig, SessionManager};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn strategy_mix(i: usize, seed: u64) -> StrategyConfig {
    match i % 4 {
        0 => StrategyConfig::Bu,
        1 => StrategyConfig::Td,
        2 => StrategyConfig::Lks { depth: 1 },
        _ => StrategyConfig::Rnd { seed },
    }
}

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

/// Drives `id` to completion, returning the final history and predicate.
fn drive(manager: &SessionManager, id: u64, goal: &BitSet) -> (Vec<(ClassId, Label)>, BitSet) {
    while let Some(q) = manager.next_question(id).expect("live session") {
        let label = oracle_label(&manager.universe(), goal, q.class);
        manager.answer(id, q.class, label).expect("consistent");
    }
    let history = manager.snapshot(id).expect("live session").history;
    let theta = manager.inferred_predicate(id).expect("live session");
    (history, theta)
}

fn recover(
    universe: &Arc<Universe>,
    wal_bytes: Vec<u8>,
    segments: MemSegments,
) -> Result<SessionManager, jqi_server::DurabilityError> {
    let durability = DurabilityConfig {
        group_commit_every: 4,
        resident_watermark_bytes: Some(0),
        segment_max_bytes: 512,
    };
    SessionManager::recover_with_storage(
        Arc::clone(universe),
        ServerConfig::default(),
        durability,
        Box::new(MemWal::from_bytes(wal_bytes)),
        Box::new(segments),
    )
    .map(|(m, _)| m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn crashed_fleet_recovers_to_a_clean_prefix_or_fails_loudly(
        instance_seed in 0u64..100,
        goal_base in 0usize..32,
        n_sessions in 1usize..4,
        crash_at in 0usize..48,
        damage_pick in 0usize..4,
        torn_keep in 0usize..16,
        flip_bit in 0u64..1_000_000,
        sweep_mask in 0u16..1024,
    ) {
        let universe = Arc::new(Universe::build(
            SyntheticConfig::new(2, 2, 10, 5).generate(instance_seed),
        ));
        let goals = jqi_core::lattice::non_nullable_predicates(&universe, 100_000)
            .expect("small lattice");
        prop_assume!(!goals.is_empty());
        let goal_of = |i: usize| goals[(goal_base + i) % goals.len()].clone();

        let damage = match damage_pick {
            0 => Damage::Lost,
            1 => Damage::Torn { keep: torn_keep },
            _ => Damage::BitFlip { bit: flip_bit },
        };
        let wal = MemWal::with_script(CrashScript { at_append: crash_at, damage });
        let segments = MemSegments::new();
        let durability = DurabilityConfig {
            group_commit_every: 4,
            resident_watermark_bytes: Some(0),
            segment_max_bytes: 512,
        };
        let (m, _) = SessionManager::recover_with_storage(
            Arc::clone(&universe),
            ServerConfig { shards: 3, ..ServerConfig::default() },
            durability,
            Box::new(wal.clone()),
            Box::new(segments.clone()),
        ).expect("fresh durable fleet");

        // The workload: interleaved question/answer rounds across the
        // fleet, with hibernation sweeps (which, at a zero watermark,
        // spill everything parked) sprinkled in. The scripted crash fires
        // somewhere inside; the manager keeps running — writes after the
        // crash simply never reach the durable image, exactly as the
        // dying process's unflushed appends never reached disk.
        let ids: Vec<u64> = (0..n_sessions)
            .map(|i| m.create_session(strategy_mix(i, instance_seed)).expect("in-memory"))
            .collect();
        let mut round = 0usize;
        loop {
            let mut progressed = false;
            for (i, &id) in ids.iter().enumerate() {
                if let Some(q) = m.next_question(id).expect("live session") {
                    let label = oracle_label(&universe, &goal_of(i), q.class);
                    m.answer(id, q.class, label).expect("consistent");
                    progressed = true;
                }
            }
            m.flush_wal().expect("mem wal never errors");
            if sweep_mask >> (round % 10) & 1 == 1 {
                m.hibernate_idle(Duration::ZERO).expect("mem wal never errors");
                m.sweep().expect("mem segments never error");
            }
            round += 1;
            prop_assert!(round < 10_000, "runaway workload");
            if !progressed {
                break;
            }
        }
        drop(m);

        // The uninterrupted references: per-session full history + θ,
        // driven on a plain in-memory manager (strategies are
        // deterministic, sessions independent — interleaving is
        // irrelevant).
        let reference = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
        let refs: Vec<(Vec<(ClassId, Label)>, BitSet)> = (0..n_sessions)
            .map(|i| {
                let id = reference
                    .create_session(strategy_mix(i, instance_seed))
                    .expect("in-memory");
                drive(&reference, id, &goal_of(i))
            })
            .collect();

        match recover(&universe, wal.durable_image(), segments.clone()) {
            Err(err) => {
                // Loud refusal is only legitimate for bit rot — a torn or
                // lost append is a clean-prefix crash and MUST recover.
                prop_assert!(
                    matches!(damage, Damage::BitFlip { .. }),
                    "recovery refused a {damage:?} crash: {err}"
                );
            }
            Ok(r) => {
                for (i, &id) in ids.iter().enumerate() {
                    let Ok(snap) = r.snapshot(id) else {
                        // The session's Create never reached the durable
                        // image — a clean prefix may simply not know it.
                        continue;
                    };
                    let (ref_history, ref_theta) = &refs[i];
                    // Recovered history is a *prefix* of the uninterrupted
                    // one: nothing invented, nothing reordered.
                    prop_assert!(
                        snap.history.len() <= ref_history.len()
                            && snap.history[..] == ref_history[..snap.history.len()],
                        "session {id}: recovered history diverges from the \
                         uninterrupted run at some index"
                    );
                    // And the recovered session, continued with the same
                    // oracle, is indistinguishable from never crashing:
                    // same question sequence from the cut, same final θ.
                    let (final_history, theta) = drive(&r, id, &goal_of(i));
                    prop_assert_eq!(&final_history, ref_history);
                    prop_assert_eq!(&theta, ref_theta);
                }
            }
        }

        // A torn append and a clean stop just before it are the same
        // crash: recovering the damaged image must equal recovering the
        // pristine prefix (when the script actually fired and recovery
        // accepts both).
        if wal.crashed() && matches!(damage, Damage::Lost | Damage::Torn { .. }) {
            let from_damaged = recover(&universe, wal.durable_image(), segments.clone());
            let from_prefix = recover(&universe, wal.pristine_prefix(crash_at), segments);
            let (damaged, prefix) = match (from_damaged, from_prefix) {
                (Ok(a), Ok(b)) => (a, b),
                (a, b) => {
                    prop_assert!(false, "clean-prefix crashes must recover: {:?} / {:?}", a.err(), b.err());
                    unreachable!()
                }
            };
            for &id in &ids {
                match (damaged.snapshot(id), prefix.snapshot(id)) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                    (Err(_), Err(_)) => {}
                    (a, b) => prop_assert!(
                        false,
                        "session {} known to one recovery but not the other: {:?} / {:?}",
                        id, a.is_ok(), b.is_ok()
                    ),
                }
            }
        }
    }
}
