//! Concurrency tests: many threads creating, answering, snapshotting and
//! dropping sessions over one shared `Arc<Universe>`, with every inferred
//! predicate checked against a single-threaded replay.

use jqi_core::session::Session;
use jqi_core::{ClassId, Label, StrategyConfig, Universe};
use jqi_datagen::SyntheticConfig;
use jqi_relation::BitSet;
use jqi_server::{ServerConfig, SessionManager, SessionSnapshot};
use std::sync::Arc;
use std::thread;

/// The strategy mix the concurrency tests cycle through — heterogeneous on
/// purpose: the session table holds them all behind one `DynStrategy`.
fn strategy_mix(i: usize) -> StrategyConfig {
    match i % 5 {
        0 => StrategyConfig::Bu,
        1 => StrategyConfig::Td,
        2 => StrategyConfig::Lks { depth: 1 },
        3 => StrategyConfig::Lks { depth: 2 },
        _ => StrategyConfig::Rnd { seed: i as u64 },
    }
}

fn goals(universe: &Universe, take: usize) -> Vec<BitSet> {
    jqi_core::lattice::non_nullable_predicates(universe, 100_000)
        .expect("small lattice")
        .into_iter()
        .cycle()
        .take(take)
        .collect()
}

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

/// Drives a borrowing single-threaded session to completion — the
/// reference every concurrent session is compared against.
fn single_threaded_reference(
    universe: &Universe,
    config: &StrategyConfig,
    goal: &BitSet,
) -> (BitSet, Vec<(ClassId, Label)>) {
    let mut session = Session::new(universe, config.build());
    while let Some(q) = session.next().expect("strategies do not fail") {
        session
            .answer(oracle_label(universe, goal, q.class))
            .expect("goal oracles are consistent");
    }
    (session.inferred_predicate(), session.history().to_vec())
}

#[test]
fn many_threads_many_sessions_match_single_threaded_replays() {
    let universe = Arc::new(Universe::build(
        SyntheticConfig::new(2, 3, 14, 6).generate(11),
    ));
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: 4,
            ..ServerConfig::default()
        },
    ));
    const THREADS: usize = 8;
    const SESSIONS_PER_THREAD: usize = 8;
    let goals = goals(&universe, THREADS * SESSIONS_PER_THREAD);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let manager = Arc::clone(&manager);
            let universe = Arc::clone(&universe);
            let goals = goals.clone();
            thread::spawn(move || {
                let mut outcomes = Vec::new();
                for s in 0..SESSIONS_PER_THREAD {
                    let i = t * SESSIONS_PER_THREAD + s;
                    let config = strategy_mix(i);
                    let goal = goals[i].clone();
                    let id = manager.create_session(config.clone()).expect("in-memory");
                    while let Some(q) = manager.next_question(id).expect("live session") {
                        let label = oracle_label(&universe, &goal, q.class);
                        manager.answer(id, q.class, label).expect("consistent");
                    }
                    let theta = manager.inferred_predicate(id).expect("live session");
                    let snap = manager.snapshot(id).expect("live session");
                    outcomes.push((config, goal, theta, snap.history));
                }
                outcomes
            })
        })
        .collect();

    let mut total = 0usize;
    for handle in handles {
        for (config, goal, theta, history) in handle.join().expect("no panics") {
            let (ref_theta, ref_history) = single_threaded_reference(&universe, &config, &goal);
            assert_eq!(theta, ref_theta, "θ diverged for {config}");
            assert_eq!(history, ref_history, "history diverged for {config}");
            total += 1;
        }
    }
    assert_eq!(total, THREADS * SESSIONS_PER_THREAD);
    assert_eq!(manager.session_count(), total);
}

/// Several workers hammer the *same* session: questions are re-delivered
/// idempotently, duplicate answers are no-ops, and the outcome is exactly
/// the single-threaded run.
#[test]
fn concurrent_workers_on_one_session_agree_with_the_reference() {
    let universe = Arc::new(Universe::build(
        SyntheticConfig::new(2, 2, 12, 5).generate(3),
    ));
    let goal = goals(&universe, 1).remove(0);
    let config = StrategyConfig::Lks { depth: 1 };
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig::default(),
    ));
    let id = manager.create_session(config.clone()).expect("in-memory");

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let manager = Arc::clone(&manager);
            let universe = Arc::clone(&universe);
            let goal = goal.clone();
            thread::spawn(move || loop {
                match manager.next_question(id).expect("live session") {
                    None => break,
                    Some(q) => {
                        let label = oracle_label(&universe, &goal, q.class);
                        // Racing duplicates of the same answer are fine.
                        manager.answer(id, q.class, label).expect("no conflicts");
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panics");
    }

    let (ref_theta, ref_history) = single_threaded_reference(&universe, &config, &goal);
    assert_eq!(manager.inferred_predicate(id).unwrap(), ref_theta);
    assert_eq!(manager.snapshot(id).unwrap().history, ref_history);
    assert!(manager.is_done(id).unwrap());
}

/// Batched, out-of-order answering: a whole crowdsourcing round folded in
/// per call still reaches an instance-equivalent predicate.
#[test]
fn batched_answers_reach_equivalent_predicates() {
    let universe = Arc::new(Universe::build(
        SyntheticConfig::new(2, 3, 14, 6).generate(7),
    ));
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig::default(),
    ));
    let goals = goals(&universe, 8);
    let handles: Vec<_> = goals
        .into_iter()
        .map(|goal| {
            let manager = Arc::clone(&manager);
            let universe = Arc::clone(&universe);
            thread::spawn(move || {
                let id = manager
                    .create_session(StrategyConfig::Bu)
                    .expect("in-memory");
                loop {
                    // Gather a "round" of up to 3 outstanding questions by
                    // labeling classes straight from the goal oracle —
                    // answers the strategy never asked for, out of order.
                    let mut batch: Vec<(ClassId, Label)> = Vec::new();
                    match manager.next_question(id).expect("live") {
                        None => break,
                        Some(q) => {
                            batch.push((q.class, oracle_label(&universe, &goal, q.class)));
                        }
                    }
                    for c in (0..universe.num_classes()).rev().take(2) {
                        batch.push((c, oracle_label(&universe, &goal, c)));
                    }
                    manager.answer_batch(id, &batch).expect("consistent batch");
                }
                let theta = manager.inferred_predicate(id).expect("live");
                assert_eq!(
                    universe.instance().equijoin(&theta),
                    universe.instance().equijoin(&goal),
                    "batched inference missed the goal"
                );
                manager.remove(id).expect("live");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panics");
    }
    assert_eq!(manager.session_count(), 0);
}

/// Create/answer/snapshot/drop churn from many threads leaves the table
/// consistent and empty.
#[test]
fn churn_leaves_an_empty_consistent_table() {
    let universe = Arc::new(Universe::build(
        SyntheticConfig::new(2, 2, 10, 4).generate(1),
    ));
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: 2,
            ..ServerConfig::default()
        },
    ));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let manager = Arc::clone(&manager);
            let universe = Arc::clone(&universe);
            thread::spawn(move || {
                for round in 0..20 {
                    let id = manager
                        .create_session(strategy_mix(t + round))
                        .expect("in-memory");
                    if let Some(q) = manager.next_question(id).expect("live") {
                        manager.answer(id, q.class, Label::Negative).expect("ok");
                        let snap = manager.snapshot(id).expect("live");
                        assert_eq!(snap.history.len(), 1);
                        // Round-trip through JSON while the session lives.
                        let json = snap.to_json_string();
                        assert_eq!(SessionSnapshot::from_json(&json).unwrap(), snap);
                    }
                    let _ = universe.num_classes();
                    manager.remove(id).expect("live");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panics");
    }
    assert_eq!(manager.session_count(), 0);
}
