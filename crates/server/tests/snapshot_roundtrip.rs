//! Property test: snapshot → JSON → restore → continue is
//! indistinguishable from an uninterrupted session, for every strategy,
//! at every cut point.

use jqi_core::{ClassId, Label, StrategyConfig, Universe};
use jqi_datagen::SyntheticConfig;
use jqi_relation::BitSet;
use jqi_server::{ServerConfig, SessionManager, SessionSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

fn strategy_mix(i: usize, seed: u64) -> StrategyConfig {
    match i % 5 {
        0 => StrategyConfig::Bu,
        1 => StrategyConfig::Td,
        2 => StrategyConfig::Lks { depth: 1 },
        3 => StrategyConfig::Lks { depth: 2 },
        _ => StrategyConfig::Rnd { seed },
    }
}

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

/// Drives `id` until done or `max_steps` answers, returning the number of
/// answers given.
fn drive(manager: &SessionManager, id: u64, goal: &BitSet, max_steps: usize) -> usize {
    let universe = manager.universe();
    let mut steps = 0;
    while steps < max_steps {
        match manager.next_question(id).expect("live session") {
            None => break,
            Some(q) => {
                let label = oracle_label(&universe, goal, q.class);
                manager.answer(id, q.class, label).expect("consistent");
                steps += 1;
            }
        }
    }
    steps
}

proptest! {
    #[test]
    fn snapshot_restore_continue_equals_uninterrupted(
        instance_seed in 0u64..200,
        goal_index in 0usize..64,
        strategy_index in 0usize..5,
        cut in 0usize..10,
    ) {
        let universe = Arc::new(Universe::build(
            SyntheticConfig::new(2, 2, 10, 5).generate(instance_seed),
        ));
        let goals = jqi_core::lattice::non_nullable_predicates(&universe, 100_000)
            .expect("small lattice");
        prop_assume!(!goals.is_empty());
        let goal = goals[goal_index % goals.len()].clone();
        let config = strategy_mix(strategy_index, instance_seed);

        // Uninterrupted run.
        let uninterrupted = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
        let u_id = uninterrupted.create_session(config.clone()).expect("in-memory");
        drive(&uninterrupted, u_id, &goal, usize::MAX);
        let u_theta = uninterrupted.inferred_predicate(u_id).unwrap();
        let u_snap = uninterrupted.snapshot(u_id).unwrap();

        // Interrupted at `cut` answers — *mid-question*: the next question
        // is asked (and left outstanding) before the snapshot, so the
        // pending candidate must survive the restart too.
        let before = SessionManager::new(Arc::clone(&universe), ServerConfig { shards: 3, ..ServerConfig::default() });
        let id = before.create_session(config.clone()).expect("in-memory");
        drive(&before, id, &goal, cut);
        let outstanding = before.next_question(id).expect("live session");
        let json = before.snapshot(id).unwrap().to_json_string();

        let after = SessionManager::new(Arc::clone(&universe), ServerConfig { shards: 5, ..ServerConfig::default() });
        let snap = SessionSnapshot::from_json(&json).expect("well-formed snapshot");
        prop_assert_eq!(snap.strategy.clone(), config);
        prop_assert_eq!(snap.pending, outstanding.as_ref().map(|q| q.class));
        let restored = after.restore(&snap).expect("history replays");
        prop_assert_eq!(restored, id);
        // The restored session re-delivers exactly the question that was
        // in flight when the process "died".
        let redelivered = after.next_question(id).expect("live session");
        prop_assert_eq!(
            redelivered.map(|q| q.class),
            outstanding.map(|q| q.class)
        );
        drive(&after, id, &goal, usize::MAX);

        // Indistinguishable from the uninterrupted session: same final
        // predicate, same question/answer sequence, same count.
        prop_assert_eq!(after.inferred_predicate(id).unwrap(), u_theta);
        let final_snap = after.snapshot(id).unwrap();
        prop_assert_eq!(final_snap.history, u_snap.history);
        prop_assert!(after.is_done(id).unwrap());
    }
}
