//! End-to-end tests of the HTTP/JSON gateway over a real loopback
//! socket: the full create → question → answer → snapshot → restore
//! loop, the loud wrong-universe rejections (both restore and startup
//! recovery), and a malformed-request matrix asserting every abuse gets
//! a clean 4xx/5xx — the process never panics, and the server keeps
//! serving afterwards.

use jqi_core::paper::{example_2_1, flight_hotel};
use jqi_core::{StrategyConfig, Universe};
use jqi_net::{Client, ClientResponse, NetConfig};
use jqi_server::http::{serve, UniverseRegistry};
use jqi_server::json::Json;
use jqi_server::{DurabilityConfig, ServerConfig, SessionManager};
use std::sync::Arc;

/// A loopback server with universe `demo` (flight/hotel) and a second
/// tenant `twin` sharing the same instance (same fingerprint).
fn demo_server() -> (jqi_net::Server, Arc<UniverseRegistry>) {
    let registry = Arc::new(UniverseRegistry::new());
    let universe = Arc::new(Universe::build(flight_hotel()));
    registry
        .register(
            "demo",
            Arc::new(SessionManager::new(
                Arc::clone(&universe),
                ServerConfig::default(),
            )),
        )
        .unwrap();
    registry
        .register(
            "twin",
            Arc::new(SessionManager::new(universe, ServerConfig::default())),
        )
        .unwrap();
    let (server, _gateway) =
        serve(Arc::clone(&registry), "127.0.0.1:0", NetConfig::default()).expect("loopback bind");
    (server, registry)
}

fn json(response: &ClientResponse) -> Json {
    Json::parse(response.body_str().expect("UTF-8 body")).expect("JSON body")
}

fn error_code(response: &ClientResponse) -> String {
    json(response)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {:?}", response.body_str()))
        .to_string()
}

#[test]
fn full_inference_loop_over_http() {
    let (server, _registry) = demo_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Create a session driving L2S.
    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "LKS:2"}"#)
        .unwrap();
    assert_eq!(created.status, 201, "{:?}", created.body_str());
    let sid = json(&created)
        .get("session")
        .and_then(Json::as_num)
        .unwrap() as u64;

    // Answer questions as the paper's Q2 oracle (city AND discount
    // airline must match) until the session halts.
    let mut rounds = 0;
    loop {
        let q = client
            .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
            .unwrap();
        assert_eq!(q.status, 200, "{:?}", q.body_str());
        let doc = json(&q);
        if doc.get("done") == Some(&Json::Bool(true)) {
            let predicate = doc.get("predicate").and_then(Json::as_str).unwrap();
            assert_eq!(
                predicate,
                "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
            );
            break;
        }
        let question = doc.get("question").expect("question object");
        let class = question.get("class").and_then(Json::as_num).unwrap() as u64;
        let values: Vec<&str> = question
            .get("values")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        let keep = values[1] == values[3] && values[2] == values[4];
        let label = if keep { "+" } else { "-" };
        let answered = client
            .post(
                &format!("/v1/universes/demo/sessions/{sid}/answers"),
                &format!(r#"{{"answers": [{{"class": {class}, "label": "{label}"}}]}}"#),
            )
            .unwrap();
        assert_eq!(answered.status, 200, "{:?}", answered.body_str());
        rounds += 1;
        assert!(rounds < 100, "inference did not converge");
    }
    assert!(rounds > 0);

    // The status endpoint agrees.
    let status = client
        .get(&format!("/v1/universes/demo/sessions/{sid}"))
        .unwrap();
    assert_eq!(status.status, 200);
    assert_eq!(json(&status).get("done"), Some(&Json::Bool(true)));
    server.stats();
}

#[test]
fn snapshot_restores_across_tenants_of_the_same_universe() {
    let (server, _registry) = demo_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "BU"}"#)
        .unwrap();
    let sid = json(&created)
        .get("session")
        .and_then(Json::as_num)
        .unwrap() as u64;
    let q = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    let class = json(&q)
        .get("question")
        .and_then(|q| q.get("class"))
        .and_then(Json::as_num)
        .unwrap() as u64;
    client
        .post(
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            &format!(r#"{{"answers": [{{"class": {class}, "label": "-"}}]}}"#),
        )
        .unwrap();

    // Snapshot is the jqi-session/1 document itself.
    let snapshot = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/snapshot"))
        .unwrap();
    assert_eq!(snapshot.status, 200);
    let doc = snapshot.body_str().unwrap().to_string();
    assert!(doc.contains("\"format\": \"jqi-session/1\""), "{doc}");

    // Restore into the twin tenant (same universe fingerprint) works and
    // preserves the answer history.
    let restored = client.post("/v1/universes/twin/restore", &doc).unwrap();
    assert_eq!(restored.status, 201, "{:?}", restored.body_str());
    let rdoc = json(&restored);
    assert_eq!(
        rdoc.get("session").and_then(Json::as_num),
        Some(sid as f64),
        "restore keeps the session id"
    );
    assert_eq!(rdoc.get("interactions").and_then(Json::as_num), Some(1.0));

    // Restoring the same document again collides: 409 session_exists.
    let again = client.post("/v1/universes/twin/restore", &doc).unwrap();
    assert_eq!(again.status, 409);
    assert_eq!(error_code(&again), "session_exists");
    drop(server);
}

#[test]
fn delta_endpoint_migrates_the_fleet_and_stale_snapshots_get_409() {
    let (server, _registry) = demo_server();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Open a session, answer one question, and stamp a pre-delta
    // snapshot — that document carries the epoch-0 fingerprint.
    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "BU"}"#)
        .unwrap();
    assert_eq!(created.status, 201, "{:?}", created.body_str());
    let cdoc = json(&created);
    let sid = cdoc.get("session").and_then(Json::as_num).unwrap() as u64;
    let fingerprint_before = cdoc
        .get("universe")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let q = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    let class = json(&q)
        .get("question")
        .and_then(|q| q.get("class"))
        .and_then(Json::as_num)
        .unwrap() as u64;
    client
        .post(
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            &format!(r#"{{"answers": [{{"class": {class}, "label": "-"}}]}}"#),
        )
        .unwrap();
    let stale = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/snapshot"))
        .unwrap()
        .body_str()
        .unwrap()
        .to_string();

    // A duplicate of an existing flight is a count-only edit: every
    // class keeps its signature, so the open session carries over
    // without replay — and the epoch still advances.
    let applied = client
        .post(
            "/v1/universes/demo/delta",
            r#"{"insert_r": [["Paris", "Lille", "AF"]]}"#,
        )
        .unwrap();
    assert_eq!(applied.status, 200, "{:?}", applied.body_str());
    let adoc = json(&applied);
    assert_eq!(adoc.get("epoch").and_then(Json::as_num), Some(1.0));
    assert_eq!(adoc.get("edits").and_then(Json::as_num), Some(1.0));
    assert_eq!(adoc.get("sessions").and_then(Json::as_num), Some(1.0));
    assert_eq!(adoc.get("carried").and_then(Json::as_num), Some(1.0));
    assert_eq!(adoc.get("replayed").and_then(Json::as_num), Some(0.0));
    assert_eq!(adoc.get("invalidated"), Some(&Json::Arr(vec![])));
    let fingerprint_after = adoc
        .get("universe")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(
        fingerprint_before, fingerprint_after,
        "the epoch is folded into the serving fingerprint"
    );

    // The carried session keeps serving on the new universe.
    let q = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    assert_eq!(q.status, 200, "{:?}", q.body_str());

    // The pre-delta snapshot is stamped with the epoch-0 fingerprint:
    // restoring it after the delta is the loud 409, same as any other
    // wrong-universe document.
    let rejected = client.post("/v1/universes/demo/restore", &stale).unwrap();
    assert_eq!(rejected.status, 409, "{:?}", rejected.body_str());
    assert_eq!(error_code(&rejected), "universe_mismatch");

    // Malformed scripts are clean 400s and leave the epoch alone:
    // schema violations and deletes of absent rows are `bad_delta`
    // (validated inside apply_delta), shape abuse is `bad_request`.
    for (body, code) in [
        (r#"{"insert_r": [["Paris", "Lille"]]}"#, "bad_delta"),
        (r#"{"delete_p": [["Atlantis", "ZZ"]]}"#, "bad_delta"),
        (r#"{}"#, "bad_request"),
        (r#"{"insert_r": 5}"#, "bad_request"),
        (r#"{"insert_r": [["Paris", "Lille", true]]}"#, "bad_request"),
    ] {
        let response = client.post("/v1/universes/demo/delta", body).unwrap();
        assert_eq!(response.status, 400, "{body} → {:?}", response.body_str());
        assert_eq!(error_code(&response), code, "{body}");
    }
    let get = client.get("/v1/universes/demo/delta").unwrap();
    assert_eq!(get.status, 405);
    let applied = client
        .post(
            "/v1/universes/demo/delta",
            r#"{"delete_r": [["Paris", "Lille", "AF"]]}"#,
        )
        .unwrap();
    assert_eq!(applied.status, 200, "{:?}", applied.body_str());
    assert_eq!(
        json(&applied).get("epoch").and_then(Json::as_num),
        Some(2.0),
        "rejected scripts never advanced the epoch"
    );
    drop(server);
}

#[test]
fn wrong_universe_restore_is_a_loud_409_with_both_fingerprints() {
    let (server, registry) = demo_server();
    // A genuinely different universe: different instance, different
    // fingerprint.
    let other = Arc::new(Universe::build(example_2_1()));
    registry
        .register(
            "other",
            Arc::new(SessionManager::new(other, ServerConfig::default())),
        )
        .unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "TD"}"#)
        .unwrap();
    let sid = json(&created)
        .get("session")
        .and_then(Json::as_num)
        .unwrap() as u64;
    let snapshot = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/snapshot"))
        .unwrap();
    let doc = snapshot.body_str().unwrap().to_string();

    let rejected = client.post("/v1/universes/other/restore", &doc).unwrap();
    assert_eq!(rejected.status, 409, "{:?}", rejected.body_str());
    let error = json(&rejected);
    let error = error.get("error").unwrap();
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("universe_mismatch")
    );
    let expected = error
        .get("expected")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let found = error
        .get("found")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_ne!(expected, found);
    assert_eq!(expected.len(), 16, "fingerprints are 16-hex strings");
    assert!(
        doc.contains(&found),
        "snapshot carries the found fingerprint"
    );
}

#[test]
fn failed_startup_recovery_serves_503_with_the_fingerprint_cause() {
    let dir = std::env::temp_dir().join(format!(
        "jqi-http-recovery-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Write a durable directory under the flight/hotel universe.
    {
        let registry = UniverseRegistry::new();
        let a = Arc::new(Universe::build(flight_hotel()));
        let (manager, _) = registry
            .open_durable(
                "tenant",
                a,
                ServerConfig::default(),
                DurabilityConfig::default(),
                &dir,
            )
            .unwrap();
        manager.create_session(StrategyConfig::Bu).unwrap();
        manager.flush_wal().unwrap();
    }

    // A new process serves the same directory as a *different* universe:
    // recovery fails, and the failure is visible over HTTP.
    let registry = Arc::new(UniverseRegistry::new());
    let b = Arc::new(Universe::build(example_2_1()));
    let err = registry
        .open_durable(
            "tenant",
            b,
            ServerConfig::default(),
            DurabilityConfig::default(),
            &dir,
        )
        .unwrap_err();
    assert!(err.to_string().contains("fingerprint mismatch"), "{err}");

    let (server, _gateway) =
        serve(Arc::clone(&registry), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client
        .post("/v1/universes/tenant/sessions", r#"{"strategy": "BU"}"#)
        .unwrap();
    assert_eq!(response.status, 503, "{:?}", response.body_str());
    assert_eq!(error_code(&response), "universe_failed");
    // Every 503 carries a Retry-After hint for the retrying client.
    assert_eq!(
        response
            .headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.as_str()),
        Some("5")
    );
    assert!(
        response
            .body_str()
            .unwrap()
            .contains("fingerprint mismatch"),
        "503 carries the recovery cause: {:?}",
        response.body_str()
    );

    // The failed tenant also shows up in /v1/universes as failed.
    let list = client.get("/v1/universes").unwrap();
    let doc = json(&list);
    let tenant = doc.get("universes").and_then(|u| u.get("tenant")).unwrap();
    assert_eq!(tenant.get("status").and_then(Json::as_str), Some("failed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_request_matrix_gets_clean_4xx_never_a_panic() {
    use std::io::{Read, Write};

    let (server, _registry) = demo_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // A live session to aim some of the abuse at.
    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "BU"}"#)
        .unwrap();
    let sid = json(&created)
        .get("session")
        .and_then(Json::as_num)
        .unwrap() as u64;
    let answers_path = format!("/v1/universes/demo/sessions/{sid}/answers");

    // (status, code) expectations over the gateway-level matrix.
    let cases: Vec<(u16, &str, ClientResponse)> = vec![
        // Bad JSON body.
        (
            400,
            "bad_json",
            client.post(&answers_path, "{not json").unwrap(),
        ),
        // Valid JSON, wrong shape.
        (
            400,
            "bad_request",
            client.post(&answers_path, r#"{"answers": 7}"#).unwrap(),
        ),
        // Missing label.
        (
            400,
            "bad_request",
            client
                .post(&answers_path, r#"{"answers": [{"class": 0}]}"#)
                .unwrap(),
        ),
        // Label outside "+"/"-".
        (
            400,
            "bad_request",
            client
                .post(
                    &answers_path,
                    r#"{"answers": [{"class": 0, "label": "?"}]}"#,
                )
                .unwrap(),
        ),
        // Empty body where JSON is required.
        (
            400,
            "bad_request",
            client.post("/v1/universes/demo/sessions", "").unwrap(),
        ),
        // Unknown strategy.
        (
            400,
            "bad_strategy",
            client
                .post("/v1/universes/demo/sessions", r#"{"strategy": "MAGIC"}"#)
                .unwrap(),
        ),
        // Unknown session.
        (
            404,
            "unknown_session",
            client
                .get("/v1/universes/demo/sessions/999999/question")
                .unwrap(),
        ),
        // Non-numeric session id.
        (
            404,
            "unknown_session",
            client
                .get("/v1/universes/demo/sessions/abc/question")
                .unwrap(),
        ),
        // Unknown universe.
        (
            404,
            "unknown_universe",
            client
                .post("/v1/universes/nope/sessions", r#"{"strategy": "BU"}"#)
                .unwrap(),
        ),
        // Unknown route.
        (404, "unknown_route", client.get("/v2/whatever").unwrap()),
        // Wrong method on a known route.
        (
            405,
            "method_not_allowed",
            client.get("/v1/universes/demo/sessions").unwrap(),
        ),
        // Malformed snapshot document.
        (
            400,
            "bad_snapshot",
            client
                .post("/v1/universes/demo/restore", r#"{"format": "nope"}"#)
                .unwrap(),
        ),
        // Inference-level conflict: contradictory duplicate answers.
        (400, "inference_error", {
            let q = client
                .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
                .unwrap();
            let class = json(&q)
                .get("question")
                .and_then(|q| q.get("class"))
                .and_then(Json::as_num)
                .unwrap() as u64;
            client
                    .post(
                        &answers_path,
                        &format!(
                            r#"{{"answers": [{{"class": {class}, "label": "+"}}, {{"class": {class}, "label": "-"}}]}}"#
                        ),
                    )
                    .unwrap()
        }),
    ];
    for (want_status, want_code, response) in &cases {
        assert_eq!(
            response.status,
            *want_status,
            "expected {want_status} {want_code}, got {:?}",
            response.body_str()
        );
        assert_eq!(&error_code(response), want_code);
    }

    // Oversized batch: 413 before any answer is applied.
    let big: Vec<String> = (0..5000)
        .map(|i| format!(r#"{{"class": {}, "label": "+"}}"#, i % 7))
        .collect();
    let response = client
        .post(
            &answers_path,
            &format!(r#"{{"answers": [{}]}}"#, big.join(",")),
        )
        .unwrap();
    assert_eq!(response.status, 413, "{:?}", response.body_str());
    assert_eq!(error_code(&response), "batch_too_large");

    // Wire-level abuse on raw sockets (each one burns its connection).
    // Truncated body: promised 100 bytes, sent 5, hung up.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /v1/universes/demo/sessions HTTP/1.1\r\ncontent-length: 100\r\n\r\nhello")
        .unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400"), "truncated body: {text:?}");
    assert!(text.contains("truncated_request"));

    // Oversized declared body: refused from the header alone.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /v1/universes/demo/sessions HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 413"), "oversized body: {text:?}");

    // Chunked transfer coding: deliberately unimplemented.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(
        b"POST /v1/universes/demo/sessions HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    )
    .unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 501"), "chunked: {text:?}");

    // Garbage request line.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400"), "garbage: {text:?}");

    // After all of that, the server still serves normal traffic on a
    // fresh connection — nothing panicked, nothing wedged.
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    assert_eq!(response.status, 200);
    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let doc = json(&stats);
    assert!(doc.get("universes").and_then(|u| u.get("demo")).is_some());
    assert!(
        doc.get("endpoints")
            .and_then(|e| e.get("answers"))
            .and_then(|a| a.get("count"))
            .is_some(),
        "live endpoint histograms are populated: {:?}",
        stats.body_str()
    );
}

#[test]
fn stats_expose_manager_decision_cache_and_durability_blocks() {
    let (server, _registry) = demo_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "LKS:2"}"#)
        .unwrap();
    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let doc = json(&stats);
    let demo = doc
        .get("universes")
        .and_then(|u| u.get("demo"))
        .and_then(|d| d.get("stats"))
        .expect("demo stats block");
    assert_eq!(demo.get("sessions").and_then(Json::as_num), Some(1.0));
    assert!(demo
        .get("decision_cache")
        .and_then(|c| c.get("entries"))
        .is_some());
    // Non-durable manager: durability block is null, not absent.
    assert_eq!(demo.get("durability"), Some(&Json::Null));

    // The transport block surfaces the live NetStats counters —
    // accepted connections, the overload/abuse counters, and the
    // instantaneous worker queue depth.
    let transport = doc.get("transport").expect("transport block");
    for counter in [
        "accepted",
        "requests",
        "shed",
        "idle_timeouts",
        "peer_resets",
        "protocol_errors",
        "deadlines_exceeded",
        "queue_depth",
    ] {
        assert!(
            transport.get(counter).and_then(Json::as_num).is_some(),
            "missing transport counter {counter:?} in {transport:?}"
        );
    }
    assert!(transport.get("accepted").and_then(Json::as_num).unwrap() >= 1.0);
}
