//! The real thing: a child process running a durable fleet is `kill -9`ed
//! mid-round, and the parent recovers its directory.
//!
//! The parent re-invokes this test binary with `JQI_CRASH_DIR` set, which
//! turns the otherwise-inert `crash_child` "test" into an endless durable
//! workload (waves of sessions created, driven, parked, and spilled). The
//! parent watches `wal.log` grow, SIGKILLs the child at an arbitrary
//! point in that traffic — no shutdown hook runs, whatever was mid-write
//! stays mid-write — then recovers and checks every surviving session
//! against a deterministic oracle: histories must be exact prefixes of
//! the uninterrupted run, and every session must still drive to the
//! reference predicate. The in-memory, finely scripted variant of this
//! test is `tests/durability_props.rs`; this one exists so the claim
//! holds for real files, real fsync, and a real dead process.

use jqi_core::{ClassId, Label, StrategyConfig, Universe};
use jqi_datagen::SyntheticConfig;
use jqi_relation::BitSet;
use jqi_server::{DurabilityConfig, ServerConfig, SessionManager};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WAVE: usize = 4;
/// Kill once the WAL holds at least this much committed traffic — several
/// complete waves plus, almost surely, a wave in flight.
const KILL_AFTER_WAL_BYTES: u64 = 32 * 1024;

fn build_universe() -> Arc<Universe> {
    Arc::new(Universe::build(
        SyntheticConfig::new(2, 2, 12, 6).generate(7),
    ))
}

fn durability() -> DurabilityConfig {
    DurabilityConfig {
        group_commit_every: 8,
        // Zero watermark: every sweep spills every parked session, so the
        // kill also lands amid segment traffic.
        resident_watermark_bytes: Some(0),
        segment_max_bytes: 4096,
    }
}

/// Everything about session `id` is a deterministic function of `id`:
/// same strategy, same goal, in parent and child alike.
fn strategy_of(id: u64) -> StrategyConfig {
    match id % 4 {
        0 => StrategyConfig::Bu,
        1 => StrategyConfig::Td,
        2 => StrategyConfig::Lks { depth: 1 },
        _ => StrategyConfig::Rnd { seed: id },
    }
}

fn goal_of(goals: &[BitSet], id: u64) -> &BitSet {
    &goals[id as usize % goals.len()]
}

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

fn goals(universe: &Universe) -> Vec<BitSet> {
    let goals =
        jqi_core::lattice::non_nullable_predicates(universe, 100_000).expect("small lattice");
    assert!(
        !goals.is_empty(),
        "the crash workload needs goal predicates"
    );
    goals
}

/// The child workload. Inert under a normal `cargo test` run (the env var
/// is unset); an endless durable workload when the parent spawns it.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("JQI_CRASH_DIR") else {
        return;
    };
    let universe = build_universe();
    let goals = goals(&universe);
    let (manager, _) = SessionManager::recover(
        Arc::clone(&universe),
        ServerConfig::default(),
        durability(),
        Path::new(&dir),
    )
    .expect("fresh durable fleet");
    // Waves forever, until the parent kills us. The directory is fresh,
    // so ids are dense from 0 and each wave's ids are predictable — the
    // parent relies on `strategy_of(id)` matching on both sides.
    let mut next_id: u64 = 0;
    for _wave in 0..u64::MAX {
        let ids: Vec<u64> = (0..WAVE)
            .map(|_| {
                let id = manager
                    .create_session(strategy_of(next_id))
                    .expect("durable create");
                assert_eq!(id, next_id, "session ids must be dense");
                next_id += 1;
                id
            })
            .collect();
        loop {
            let mut progressed = false;
            for &id in &ids {
                if let Some(q) = manager.next_question(id).expect("live session") {
                    let label = oracle_label(&universe, goal_of(&goals, id), q.class);
                    manager.answer(id, q.class, label).expect("honest oracle");
                    progressed = true;
                }
            }
            // One fsync per round — the durability contract under test.
            manager.flush_wal().expect("wal flush");
            if !progressed {
                break;
            }
        }
        // Park and spill the finished wave so the kill also interrupts
        // hibernate/spill traffic, not just answers.
        manager.hibernate_idle(Duration::ZERO).expect("park");
        manager.sweep().expect("spill");
    }
}

#[test]
fn kill_nine_mid_round_recovers_the_fleet() {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "jqi-crash-recovery-{}-{:x}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture"])
        .env("JQI_CRASH_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn crash child");

    // Wait for real committed traffic, then pull the plug. `kill()` is
    // SIGKILL on unix: the child gets no chance to flush or unwind.
    let wal_path = dir.join("wal.log");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        if len >= KILL_AFTER_WAL_BYTES {
            break;
        }
        if let Some(status) = child.try_wait().expect("child status") {
            panic!("crash child exited on its own: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "crash child produced no WAL traffic (len {len})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap child");

    // Recover the directory the dead process left behind.
    let universe = build_universe();
    let goals = goals(&universe);
    let (recovered, report) = SessionManager::recover(
        Arc::clone(&universe),
        ServerConfig::default(),
        durability(),
        &dir,
    )
    .unwrap_or_else(|e| panic!("recovery after kill -9 failed: {e}"));
    assert!(
        report.sessions >= WAVE,
        "expected at least one full wave, recovered {} sessions",
        report.sessions
    );

    // The child never removes sessions, so recovered ids are dense from 0.
    // Check each against the uninterrupted oracle run.
    let reference = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
    for id in 0..report.sessions as u64 {
        let snap = recovered
            .snapshot(id)
            .unwrap_or_else(|e| panic!("session {id} missing after recovery: {e}"));
        let ref_id = reference
            .create_session(strategy_of(id))
            .expect("in-memory");
        assert_eq!(ref_id, id, "reference fleet must mirror the child's ids");
        let goal = goal_of(&goals, id);
        while let Some(q) = reference.next_question(id).expect("live session") {
            let label = oracle_label(&universe, goal, q.class);
            reference.answer(id, q.class, label).expect("honest oracle");
        }
        let ref_history = reference.snapshot(id).expect("live session").history;
        assert!(
            snap.history.len() <= ref_history.len()
                && snap.history[..] == ref_history[..snap.history.len()],
            "session {id}: recovered history is not a prefix of the \
             uninterrupted run ({} vs {} answers)",
            snap.history.len(),
            ref_history.len()
        );
        // Continue the recovered session: it must converge to the same
        // predicate as if the process had never died.
        while let Some(q) = recovered.next_question(id).expect("live session") {
            let label = oracle_label(&universe, goal, q.class);
            recovered.answer(id, q.class, label).expect("honest oracle");
        }
        assert_eq!(
            recovered.inferred_predicate(id).expect("live session"),
            reference.inferred_predicate(id).expect("live session"),
            "session {id} diverged after recovery"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
