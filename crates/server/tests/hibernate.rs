//! Property test: a session that is hibernated (parked to its bare replay
//! log) and re-materialized on the next touch is indistinguishable from
//! one that stayed resident — for every strategy, with parks injected
//! between arbitrary steps, including mid-question.

use jqi_core::{ClassId, Label, StrategyConfig, Universe};
use jqi_datagen::SyntheticConfig;
use jqi_relation::BitSet;
use jqi_server::{ServerConfig, SessionManager};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn strategy_mix(i: usize, seed: u64) -> StrategyConfig {
    match i % 6 {
        0 => StrategyConfig::Bu,
        1 => StrategyConfig::Td,
        2 => StrategyConfig::Lks { depth: 1 },
        3 => StrategyConfig::Lks { depth: 2 },
        4 => StrategyConfig::Eg,
        _ => StrategyConfig::Rnd { seed },
    }
}

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

proptest! {
    /// hibernate → touch ≡ never-hibernated: the parked session asks the
    /// same questions, gives the same predicate, and records the same
    /// history as its resident twin, no matter where the parks land.
    #[test]
    fn hibernate_touch_equals_never_hibernated(
        instance_seed in 0u64..200,
        goal_index in 0usize..64,
        strategy_index in 0usize..6,
        park_mask in 0u32..1024,
    ) {
        let universe = Arc::new(Universe::build(
            SyntheticConfig::new(2, 2, 10, 5).generate(instance_seed),
        ));
        let goals = jqi_core::lattice::non_nullable_predicates(&universe, 100_000)
            .expect("small lattice");
        prop_assume!(!goals.is_empty());
        let goal = goals[goal_index % goals.len()].clone();
        let config = strategy_mix(strategy_index, instance_seed);

        // Both managers share ONE universe — and hence one decision cache —
        // so the comparison also exercises cached strategy moves across
        // the park/wake boundary.
        let resident = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
        let parked = SessionManager::new(
            Arc::clone(&universe),
            ServerConfig { shards: 3, ..ServerConfig::default() },
        );
        let r_id = resident.create_session(config.clone()).expect("in-memory");
        let p_id = parked.create_session(config.clone()).expect("in-memory");

        let mut step = 0usize;
        loop {
            // Park between steps according to the mask — sometimes before
            // the question (mid-nothing), sometimes after it was asked
            // (mid-question, pending outstanding).
            if park_mask >> (step % 10) & 1 == 1 {
                parked.hibernate(p_id).expect("live session");
                prop_assert_eq!(parked.stats().hibernated_sessions, 1);
            }
            let rq = resident.next_question(r_id).expect("live session");
            let pq = parked.next_question(p_id).expect("live session");
            prop_assert_eq!(
                rq.as_ref().map(|q| q.class),
                pq.as_ref().map(|q| q.class),
                "question diverged at step {}", step
            );
            let Some(q) = rq else { break };
            if park_mask >> ((step + 5) % 10) & 1 == 1 {
                // Park with the question outstanding; zero-TTL sweep form.
                prop_assert_eq!(parked.hibernate_idle(Duration::ZERO).unwrap().parked, 1);
            }
            let label = oracle_label(&universe, &goal, q.class);
            resident.answer(r_id, q.class, label).expect("consistent");
            parked.answer(p_id, q.class, label).expect("consistent");
            step += 1;
            prop_assert!(step < 10_000, "runaway session");
        }

        prop_assert_eq!(
            resident.inferred_predicate(r_id).unwrap(),
            parked.inferred_predicate(p_id).unwrap()
        );
        let r_snap = resident.snapshot(r_id).unwrap();
        let p_snap = parked.snapshot(p_id).unwrap();
        prop_assert_eq!(r_snap.history, p_snap.history);
        prop_assert!(parked.is_done(p_id).unwrap());
    }
}
