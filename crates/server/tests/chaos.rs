//! Network-chaos integration: the gateway behind the scripted fault
//! proxy, plus deterministic shedding and deadline propagation.
//!
//! The CI `chaos-smoke` job runs this suite over a small *fixed* seed
//! set; every fault schedule and jitter stream is derived from the seed,
//! so a failure here reproduces locally with the same seed. The
//! invariants, in the order the tests assert them:
//!
//! * Accepted responses are always well-formed JSON with the documented
//!   error shape — faults corrupt *connections*, never *state*.
//! * Answer batches are class-addressed idempotent end-to-end: a
//!   duplicated delivery (the retrying client's worst case) does not
//!   double-count interactions.
//! * An expired deadline on a mutating request answers `504
//!   deadline_exceeded` and appends nothing.
//! * Under pressure, the shed order holds: `question` before `answers`,
//!   `/v1/stats` never — and the shed shows up in the transport
//!   counters on `/v1/stats`.
//! * [`RetryingClient`] rides `Retry-After` through a shed and rides a
//!   reconnect through a mid-request reset.

use jqi_core::paper::flight_hotel;
use jqi_core::Universe;
use jqi_net::{
    ChaosProxy, ChaosScript, Client, ClientResponse, Fault, NetConfig, RetryPolicy, RetryingClient,
};
use jqi_server::http::{serve, serve_with, OverloadConfig, UniverseRegistry};
use jqi_server::json::Json;
use jqi_server::{ServerConfig, SessionManager};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A loopback gateway over the flight/hotel universe, tenant `demo`.
fn demo_server() -> jqi_net::Server {
    let (server, _gateway) =
        serve(demo_registry(), "127.0.0.1:0", NetConfig::default()).expect("loopback bind");
    server
}

fn demo_registry() -> Arc<UniverseRegistry> {
    let registry = Arc::new(UniverseRegistry::new());
    let universe = Arc::new(Universe::build(flight_hotel()));
    registry
        .register(
            "demo",
            Arc::new(SessionManager::new(universe, ServerConfig::default())),
        )
        .unwrap();
    registry
}

fn json(response: &ClientResponse) -> Json {
    Json::parse(response.body_str().expect("UTF-8 body")).expect("JSON body")
}

fn error_code(response: &ClientResponse) -> String {
    json(response)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {:?}", response.body_str()))
        .to_string()
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("no numeric {key:?} in {doc:?}"))
}

/// Creates a session and returns its id.
fn create_session(client: &mut Client) -> u64 {
    let created = client
        .post("/v1/universes/demo/sessions", r#"{"strategy": "BU"}"#)
        .unwrap();
    assert_eq!(created.status, 201, "{:?}", created.body_str());
    num(&json(&created), "session") as u64
}

#[test]
fn the_gateway_survives_the_fixed_seed_set_without_corrupting_state() {
    // Every chaos seed CI pins. Each run drives a full inference loop
    // through a proxy whose early connections are scripted to misbehave;
    // the loop must still converge, and every accepted response must be
    // parseable JSON (zero protocol errors *on accepted requests*).
    for seed in [1u64, 2, 3] {
        let mut server = demo_server();
        let script = ChaosScript {
            seed,
            faults: vec![
                Fault::Delay { ms: 20 },
                Fault::Truncate { bytes: 25 },
                Fault::Reset { after_bytes: 40 },
                Fault::Drip { chunk: 7, ms: 2 },
                // Everything past the script runs clean.
            ],
        };
        let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();
        let started = Instant::now();

        // Burn the delayed and truncated connection indexes with plain
        // clients; the retrying client then eats the reset on its first
        // idempotent request and lands on the dripping-but-correct
        // connection for everything after.
        for _ in 0..2 {
            let mut doomed =
                Client::connect_with_timeout(proxy.local_addr(), Duration::from_secs(2)).unwrap();
            let _ = doomed.get("/v1/stats"); // delayed, then truncated
        }
        let mut client = RetryingClient::new(proxy.local_addr(), RetryPolicy::default());
        let warmed = client.get("/v1/stats").unwrap(); // reset → retried
        assert_eq!(warmed.status, 200, "seed {seed}: {:?}", warmed.body_str());
        assert_eq!(client.stats().retried_errors, 1, "seed {seed}");
        let created = client
            .post("/v1/universes/demo/sessions", r#"{"strategy": "BU"}"#)
            .unwrap();
        assert_eq!(created.status, 201, "seed {seed}: {:?}", created.body_str());
        let sid = num(&json(&created), "session") as u64;

        // Drive the loop to completion through the (now clean) proxy.
        let mut rounds = 0;
        loop {
            let q = client
                .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
                .unwrap();
            assert_eq!(q.status, 200, "seed {seed}: {:?}", q.body_str());
            let doc = json(&q);
            if doc.get("done") == Some(&Json::Bool(true)) {
                break;
            }
            let class = num(doc.get("question").unwrap(), "class") as u64;
            let answered = client
                .post_idempotent(
                    &format!("/v1/universes/demo/sessions/{sid}/answers"),
                    &format!(r#"{{"answers": [{{"class": {class}, "label": "-"}}]}}"#),
                )
                .unwrap();
            assert_eq!(
                answered.status,
                200,
                "seed {seed}: {:?}",
                answered.body_str()
            );
            rounds += 1;
            assert!(rounds < 100, "seed {seed}: the loop did not converge");
        }
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "seed {seed}: chaos run wedged for {:?}",
            started.elapsed()
        );

        // The faults were *accounted*, not absorbed into state: the
        // transport saw the abuse, and no worker stayed wedged (a fresh
        // direct request answers immediately).
        let stats = server.stats();
        assert!(
            stats.protocol_errors + stats.peer_resets + stats.idle_timeouts >= 1,
            "seed {seed}: the doomed connections left no trace: {stats:?}"
        );
        let mut direct = Client::connect(server.local_addr()).unwrap();
        assert_eq!(direct.get("/v1/stats").unwrap().status, 200);
        proxy.shutdown();
        server.shutdown();
    }
}

#[test]
fn duplicate_delivery_of_an_answer_batch_does_not_double_count() {
    let mut server = demo_server();
    let mut direct = Client::connect(server.local_addr()).unwrap();
    let sid = create_session(&mut direct);
    let q = direct
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    let class = num(json(&q).get("question").unwrap(), "class") as u64;

    // Deliver the batch through a connection that duplicates every
    // segment — the wire-level equivalent of an at-least-once retry.
    let script = ChaosScript {
        seed: 7,
        faults: vec![Fault::Duplicate],
    };
    let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();
    let mut through = Client::connect(proxy.local_addr()).unwrap();
    let answered = through
        .post(
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            &format!(r#"{{"answers": [{{"class": {class}, "label": "-"}}]}}"#),
        )
        .unwrap();
    assert_eq!(answered.status, 200, "{:?}", answered.body_str());
    let first = json(&answered);
    assert_eq!(num(&first, "applied"), 1.0);
    assert_eq!(num(&first, "interactions"), 1.0);

    // The duplicated copy arrives pipelined behind the first; wait for
    // the server to have served it before checking the count held.
    let deadline = Instant::now() + Duration::from_secs(2);
    while server.stats().requests < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.stats().requests >= 2,
        "the duplicate never arrived: {:?}",
        server.stats()
    );
    let status = direct
        .get(&format!("/v1/universes/demo/sessions/{sid}"))
        .unwrap();
    assert_eq!(
        num(&json(&status), "interactions"),
        1.0,
        "class-addressed batches must be idempotent end-to-end"
    );
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn an_expired_deadline_on_answers_is_504_and_applies_nothing() {
    let mut server = demo_server();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let sid = create_session(&mut client);
    let q = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    let class = num(json(&q).get("question").unwrap(), "class") as u64;

    // `x-deadline-ms: 0` expires on arrival: the transport answers 504
    // before the handler ever routes the mutation.
    let body = format!(r#"{{"answers": [{{"class": {class}, "label": "-"}}]}}"#);
    let response = client
        .request_with(
            "POST",
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            Some(body.as_bytes()),
            &[(jqi_net::DEADLINE_HEADER.to_string(), "0".to_string())],
        )
        .unwrap();
    assert_eq!(response.status, 504, "{:?}", response.body_str());
    assert_eq!(error_code(&response), "deadline_exceeded");

    let status = client
        .get(&format!("/v1/universes/demo/sessions/{sid}"))
        .unwrap();
    assert_eq!(
        num(&json(&status), "interactions"),
        0.0,
        "nothing may be applied past the deadline"
    );
    assert_eq!(server.stats().deadlines_exceeded, 1);

    // A generous deadline rides through and the mutation lands.
    let ok = client
        .request_with(
            "POST",
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            Some(body.as_bytes()),
            &[(jqi_net::DEADLINE_HEADER.to_string(), "10000".to_string())],
        )
        .unwrap();
    assert_eq!(ok.status, 200, "{:?}", ok.body_str());
    server.shutdown();
}

#[test]
fn shed_order_holds_and_shows_up_in_transport_counters() {
    // queue_soft: 0 means every read-only request sheds (its own wake-up
    // puts the depth at ≥ 1), while mutating traffic and /v1/stats pass.
    let overload = OverloadConfig {
        queue_soft: 0,
        queue_hard: 1_000,
        retry_after_s: 3,
        ..OverloadConfig::default()
    };
    let (mut server, _gateway) = serve_with(
        demo_registry(),
        "127.0.0.1:0",
        NetConfig::default(),
        overload,
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let sid = create_session(&mut client); // mutating: admitted

    // Read-only sheds fast, with the configured hint, on a kept-alive
    // connection.
    let started = Instant::now();
    let shed = client
        .get(&format!("/v1/universes/demo/sessions/{sid}/question"))
        .unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(100),
        "a shed must be fast, took {:?}",
        started.elapsed()
    );
    assert_eq!(shed.status, 503, "{:?}", shed.body_str());
    assert_eq!(error_code(&shed), "overloaded");
    let hint = shed
        .headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.clone());
    assert_eq!(hint.as_deref(), Some("3"));

    // Mutating traffic still lands on the same connection…
    let q_free = client
        .post(
            &format!("/v1/universes/demo/sessions/{sid}/answers"),
            r#"{"answers": []}"#,
        )
        .unwrap();
    assert_eq!(q_free.status, 200, "{:?}", q_free.body_str());

    // …and /v1/stats never sheds, surfacing the shed it just dodged.
    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let transport = json(&stats);
    let transport = transport
        .get("transport")
        .unwrap_or_else(|| panic!("no transport block in {:?}", stats.body_str()));
    assert!(num(transport, "shed") >= 1.0, "{transport:?}");
    assert!(num(transport, "accepted") >= 1.0);
    server.shutdown();
}

#[test]
fn the_retrying_client_rides_a_shed_through_retry_after() {
    // Shed everything except control traffic, with a 0-second hint so
    // the retries are immediate; after two sheds the policy gives up.
    let overload = OverloadConfig {
        queue_soft: 0,
        queue_hard: 0,
        retry_after_s: 0,
        ..OverloadConfig::default()
    };
    let (mut server, _gateway) = serve_with(
        demo_registry(),
        "127.0.0.1:0",
        NetConfig::default(),
        overload,
    )
    .unwrap();
    let mut client = RetryingClient::new(
        server.local_addr(),
        RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
    );
    let shed = client.get("/v1/universes").unwrap();
    assert_eq!(shed.status, 503, "still overloaded after every retry");
    let stats = client.stats();
    assert_eq!(stats.retried_sheds, 2, "{stats:?}");
    assert_eq!(stats.gave_up, 1, "{stats:?}");
    // Control traffic needs no retries at all.
    assert_eq!(client.get("/v1/stats").unwrap().status, 200);
    assert_eq!(client.stats().retried_sheds, 2);
    assert!(server.stats().shed >= 3);
    server.shutdown();
}

#[test]
fn the_retrying_client_reconnects_through_a_mid_request_reset() {
    let mut server = demo_server();
    // Connection 0 is reset 10 bytes in; connection 1 runs clean.
    let script = ChaosScript {
        seed: 5,
        faults: vec![Fault::Reset { after_bytes: 10 }],
    };
    let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();
    let mut client = RetryingClient::new(proxy.local_addr(), RetryPolicy::default());
    let response = client.get("/v1/stats").unwrap();
    assert_eq!(response.status, 200, "{:?}", response.body_str());
    let stats = client.stats();
    assert_eq!(stats.retried_errors, 1, "{stats:?}");
    assert_eq!(stats.reconnects, 1, "{stats:?}");
    assert_eq!(stats.gave_up, 0, "{stats:?}");
    proxy.shutdown();
    server.shutdown();
}
