//! Session snapshot/restore: persistence by deterministic replay.
//!
//! A snapshot does **not** serialize the derived inference state (bitsets,
//! class partition, entropy caches) — it records the two things the state
//! is a deterministic function of: the strategy configuration and the
//! label sequence. Restoring rebuilds the session by folding the labels
//! back through the same incremental [`jqi_core::InferenceState`] updates
//! that produced it, so a restored session is **indistinguishable** from
//! one that never stopped (property-tested in `tests/snapshot_roundtrip.rs`).
//! That keeps snapshots tiny (a few bytes per answer), version-stable
//! across changes to the derived representation, and valid against any
//! universe that assigns the same class ids — i.e. the same instance built
//! by the same deterministic [`jqi_core::Universe::build`].
//!
//! The hibernation tier ([`crate::SessionManager::hibernate_idle`]) parks
//! idle sessions to exactly this payload — strategy config + label
//! history + pending question — so snapshotting a parked session is a
//! copy, not a replay: [`crate::SessionManager::snapshot`] serves
//! hibernated sessions without waking them, and a parked session can be
//! handed to another instance as its snapshot document verbatim.

use crate::json::{Json, ParseError};
use jqi_core::{ClassId, Label, StrategyConfig};

/// The wire format identifier; bump when the schema changes.
pub const SNAPSHOT_FORMAT: &str = "jqi-session/1";

/// A restartable description of one session: strategy config + answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The session id the snapshot was taken from. Restore keeps it, so
    /// clients holding the id keep working across a process restart.
    pub session: u64,
    /// The strategy configuration (rebuilt exactly on restore).
    pub strategy: StrategyConfig,
    /// The questions and answers so far, in order.
    pub history: Vec<(ClassId, Label)>,
    /// The outstanding (asked but unanswered) question, if any — restored
    /// so the rebuilt session re-delivers exactly the question in flight,
    /// even when later batches advanced the state past the point where it
    /// was selected.
    pub pending: Option<ClassId>,
    /// Fingerprint of the universe the snapshot was taken against
    /// ([`jqi_core::Universe::fingerprint`]), serialized as a hex string.
    /// `None` on documents written before the field existed (they parse
    /// and restore as before, unchecked); when present,
    /// [`crate::SessionManager::restore`] refuses a mismatching universe
    /// instead of replaying class ids that mean something else.
    pub universe: Option<u64>,
}

/// A malformed snapshot document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

impl From<ParseError> for SnapshotError {
    fn from(e: ParseError) -> Self {
        SnapshotError(e.to_string())
    }
}

impl SessionSnapshot {
    /// The snapshot as a JSON value (`jqi_bench`-style formatting).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("format".into(), Json::str(SNAPSHOT_FORMAT)),
            ("session".into(), Json::num(self.session as f64)),
            ("strategy".into(), Json::str(self.strategy.to_string())),
        ];
        if let Some(fp) = self.universe {
            // Hex string, not a number: JSON numbers are f64 and cannot
            // hold a full u64 fingerprint.
            fields.push(("universe".into(), Json::str(format!("{fp:016x}"))));
        }
        fields.extend([
            (
                "pending".into(),
                match self.pending {
                    Some(c) => Json::num(c as f64),
                    None => Json::Null,
                },
            ),
            (
                "history".into(),
                Json::Arr(
                    self.history
                        .iter()
                        .map(|&(c, label)| {
                            Json::Obj(vec![
                                ("class".into(), Json::num(c as f64)),
                                (
                                    "label".into(),
                                    Json::str(match label {
                                        Label::Positive => "+",
                                        Label::Negative => "-",
                                    }),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(fields)
    }

    /// Serializes to the pretty-printed JSON document [`Self::from_json`]
    /// reads back.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty() + "\n"
    }

    /// Parses a snapshot document produced by [`Self::to_json_string`].
    pub fn from_json(text: &str) -> Result<SessionSnapshot, SnapshotError> {
        let doc = Json::parse(text)?;
        let format = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| SnapshotError("missing \"format\"".into()))?;
        if format != SNAPSHOT_FORMAT {
            return Err(SnapshotError(format!(
                "unsupported format {format:?}, expected {SNAPSHOT_FORMAT:?}"
            )));
        }
        let session = read_u64(&doc, "session")?;
        let strategy: StrategyConfig = doc
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| SnapshotError("missing \"strategy\"".into()))?
            .parse()
            .map_err(SnapshotError)?;
        let history = doc
            .get("history")
            .and_then(Json::as_arr)
            .ok_or_else(|| SnapshotError("missing \"history\" array".into()))?
            .iter()
            .map(|entry| {
                let class = read_u64(entry, "class")? as ClassId;
                let label = match entry.get("label").and_then(Json::as_str) {
                    Some("+") => Label::Positive,
                    Some("-") => Label::Negative,
                    other => {
                        return Err(SnapshotError(format!(
                            "history label must be \"+\" or \"-\", got {other:?}"
                        )))
                    }
                };
                Ok((class, label))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let pending = match doc.get("pending") {
            None | Some(Json::Null) => None,
            Some(_) => Some(read_u64(&doc, "pending")? as ClassId),
        };
        let universe = match doc.get("universe") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let hex = v
                    .as_str()
                    .ok_or_else(|| SnapshotError("\"universe\" must be a hex string".into()))?;
                Some(u64::from_str_radix(hex, 16).map_err(|_| {
                    SnapshotError(format!("\"universe\" is not a hex fingerprint: {hex:?}"))
                })?)
            }
        };
        Ok(SessionSnapshot {
            session,
            strategy,
            history,
            pending,
            universe,
        })
    }
}

fn read_u64(obj: &Json, key: &str) -> Result<u64, SnapshotError> {
    let n = obj
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| SnapshotError(format!("missing numeric \"{key}\"")))?;
    if n.fract() != 0.0 || !(0.0..=9e15).contains(&n) {
        return Err(SnapshotError(format!(
            "\"{key}\" must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SessionSnapshot {
        SessionSnapshot {
            session: 42,
            strategy: StrategyConfig::Lks { depth: 2 },
            history: vec![(3, Label::Positive), (0, Label::Negative)],
            pending: Some(5),
            universe: Some(0xDEAD_BEEF_0BAD_F00D),
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample_snapshot();
        let text = snap.to_json_string();
        assert_eq!(SessionSnapshot::from_json(&text).unwrap(), snap);
        let no_pending = SessionSnapshot {
            pending: None,
            ..sample_snapshot()
        };
        let text = no_pending.to_json_string();
        assert!(text.contains("\"pending\": null"));
        assert_eq!(SessionSnapshot::from_json(&text).unwrap(), no_pending);
    }

    #[test]
    fn documents_without_a_pending_field_still_parse() {
        // Forward compatibility with jqi-session/1 documents written
        // before the field existed.
        let text = r#"{"format": "jqi-session/1", "session": 9, "strategy": "TD", "history": []}"#;
        let snap = SessionSnapshot::from_json(text).unwrap();
        assert_eq!(snap.pending, None);
        assert_eq!(snap.universe, None);
        assert_eq!(snap.session, 9);
    }

    #[test]
    fn universe_fingerprint_round_trips_as_hex() {
        let snap = sample_snapshot();
        let text = snap.to_json_string();
        assert!(text.contains("\"universe\": \"deadbeef0badf00d\""));
        assert_eq!(
            SessionSnapshot::from_json(&text).unwrap().universe,
            snap.universe
        );
        // Snapshots without a fingerprint omit the field entirely, so the
        // document is byte-identical to what earlier versions wrote.
        let unstamped = SessionSnapshot {
            universe: None,
            ..sample_snapshot()
        };
        let text = unstamped.to_json_string();
        assert!(!text.contains("universe"));
        assert_eq!(SessionSnapshot::from_json(&text).unwrap().universe, None);
        // But a present-and-malformed fingerprint is rejected loudly.
        let bad = r#"{"format": "jqi-session/1", "session": 1, "strategy": "BU", "universe": "xyz", "history": []}"#;
        assert!(SessionSnapshot::from_json(bad).is_err());
        let wrong_type = r#"{"format": "jqi-session/1", "session": 1, "strategy": "BU", "universe": 12, "history": []}"#;
        assert!(SessionSnapshot::from_json(wrong_type).is_err());
    }

    #[test]
    fn strategy_strings_round_trip() {
        for strategy in [
            StrategyConfig::Rnd { seed: 7 },
            StrategyConfig::Bu,
            StrategyConfig::Td,
            StrategyConfig::Lks { depth: 1 },
            StrategyConfig::Lks { depth: 3 },
            StrategyConfig::Eg,
            StrategyConfig::Optimal,
        ] {
            let snap = SessionSnapshot {
                session: 1,
                strategy: strategy.clone(),
                history: vec![],
                pending: None,
                universe: None,
            };
            let restored = SessionSnapshot::from_json(&snap.to_json_string()).unwrap();
            assert_eq!(restored.strategy, strategy);
        }
    }

    #[test]
    fn rejects_foreign_or_broken_documents() {
        assert!(SessionSnapshot::from_json("{}").is_err());
        assert!(SessionSnapshot::from_json("not json").is_err());
        let wrong_format =
            r#"{"format": "jqi-session/99", "session": 1, "strategy": "BU", "history": []}"#;
        assert!(SessionSnapshot::from_json(wrong_format).is_err());
        let bad_label = r#"{"format": "jqi-session/1", "session": 1, "strategy": "BU", "history": [{"class": 0, "label": "?"}]}"#;
        assert!(SessionSnapshot::from_json(bad_label).is_err());
        let bad_strategy =
            r#"{"format": "jqi-session/1", "session": 1, "strategy": "LKS:0", "history": []}"#;
        assert!(SessionSnapshot::from_json(bad_strategy).is_err());
        let fractional =
            r#"{"format": "jqi-session/1", "session": 1.5, "strategy": "BU", "history": []}"#;
        assert!(SessionSnapshot::from_json(fractional).is_err());
    }
}
