//! Append-only spill segments for the hibernation tier.
//!
//! Past the configured resident-bytes watermark, `sweep()` moves parked
//! sessions' replay payloads out of RAM into *segment files*: append-only,
//! CRC-framed, capped at [`crate::durability::DurabilityConfig::segment_max_bytes`]
//! and rotated by number (`segment-000000.seg`, `segment-000001.seg`, …).
//! Each file opens with the [`super::codec::SEG_MAGIC`] header and the
//! universe fingerprint; each entry is one framed
//! [`super::codec::SpillPayload`]. The index is *in the WAL*: every spill
//! appends a `Spill { id, segment, offset, len }` record, so waking a
//! spilled session is a single positioned read + checksum + replay, and
//! recovery never scans segments — it reads exactly the entries the WAL
//! references (validating each frame), which also makes unreferenced tail
//! garbage in a segment (a crash mid-spill) harmless.
//!
//! After recovery the store always rotates to a fresh segment number, so
//! live appends never land behind a possibly-torn tail.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::codec::{file_header, frame, next_frame, FrameStep, SpillPayload, SEG_MAGIC};
use super::DurabilityError;

/// Where a spilled session's payload lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillLocator {
    /// Segment number.
    pub segment: u32,
    /// Byte offset of the payload's frame within the segment file.
    pub offset: u64,
    /// Byte length of the frame.
    pub len: u32,
}

/// An addressable family of append-only segment files.
pub trait SegmentStore: Send {
    /// Segment numbers present, ascending.
    fn list(&mut self) -> std::io::Result<Vec<u32>>;
    /// Current byte length of segment `seg` (0 if absent).
    fn len(&mut self, seg: u32) -> std::io::Result<u64>;
    /// Appends to segment `seg` (creating it), returning the offset the
    /// write landed at.
    fn append(&mut self, seg: u32, bytes: &[u8]) -> std::io::Result<u64>;
    /// fsyncs segment `seg`.
    fn sync(&mut self, seg: u32) -> std::io::Result<()>;
    /// Reads `len` bytes at `offset` of segment `seg`; must fail if the
    /// range is not fully present.
    fn read_at(&mut self, seg: u32, offset: u64, len: u32) -> std::io::Result<Vec<u8>>;
}

/// [`SegmentStore`] over real files in one directory.
pub struct DirSegments {
    dir: PathBuf,
    open: HashMap<u32, File>,
}

impl DirSegments {
    /// Opens (creating) the segment directory at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<DirSegments> {
        std::fs::create_dir_all(dir)?;
        Ok(DirSegments {
            dir: dir.to_path_buf(),
            open: HashMap::new(),
        })
    }

    fn path(&self, seg: u32) -> PathBuf {
        self.dir.join(format!("segment-{seg:06}.seg"))
    }

    fn file(&mut self, seg: u32) -> std::io::Result<&mut File> {
        use std::collections::hash_map::Entry;
        match self.open.entry(seg) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(self.dir.join(format!("segment-{seg:06}.seg")))?;
                Ok(e.insert(file))
            }
        }
    }
}

impl SegmentStore for DirSegments {
    fn list(&mut self) -> std::io::Result<Vec<u32>> {
        let mut segs = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("segment-")
                .and_then(|s| s.strip_suffix(".seg"))
            {
                if let Ok(seg) = num.parse::<u32>() {
                    segs.push(seg);
                }
            }
        }
        segs.sort_unstable();
        Ok(segs)
    }

    fn len(&mut self, seg: u32) -> std::io::Result<u64> {
        if !self.path(seg).exists() && !self.open.contains_key(&seg) {
            return Ok(0);
        }
        Ok(self.file(seg)?.metadata()?.len())
    }

    fn append(&mut self, seg: u32, bytes: &[u8]) -> std::io::Result<u64> {
        let file = self.file(seg)?;
        let offset = file.seek(SeekFrom::End(0))?;
        file.write_all(bytes)?;
        Ok(offset)
    }

    fn sync(&mut self, seg: u32) -> std::io::Result<()> {
        self.file(seg)?.sync_data()
    }

    fn read_at(&mut self, seg: u32, offset: u64, len: u32) -> std::io::Result<Vec<u8>> {
        let file = self.file(seg)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// In-memory [`SegmentStore`]; clones share the map (tests keep a handle
/// across a simulated crash).
#[derive(Clone, Default)]
pub struct MemSegments {
    segs: Arc<Mutex<BTreeMap<u32, Vec<u8>>>>,
}

impl MemSegments {
    /// An empty in-memory store.
    pub fn new() -> MemSegments {
        MemSegments::default()
    }

    /// Raw bytes of one segment, for test surgery.
    pub fn segment_bytes(&self, seg: u32) -> Option<Vec<u8>> {
        self.segs.lock().get(&seg).cloned()
    }

    /// Overwrites one segment's bytes, for test surgery.
    pub fn set_segment_bytes(&self, seg: u32, bytes: Vec<u8>) {
        self.segs.lock().insert(seg, bytes);
    }
}

impl SegmentStore for MemSegments {
    fn list(&mut self) -> std::io::Result<Vec<u32>> {
        Ok(self.segs.lock().keys().copied().collect())
    }

    fn len(&mut self, seg: u32) -> std::io::Result<u64> {
        Ok(self.segs.lock().get(&seg).map_or(0, Vec::len) as u64)
    }

    fn append(&mut self, seg: u32, bytes: &[u8]) -> std::io::Result<u64> {
        let mut segs = self.segs.lock();
        let data = segs.entry(seg).or_default();
        let offset = data.len() as u64;
        data.extend_from_slice(bytes);
        Ok(offset)
    }

    fn sync(&mut self, _seg: u32) -> std::io::Result<()> {
        Ok(())
    }

    fn read_at(&mut self, seg: u32, offset: u64, len: u32) -> std::io::Result<Vec<u8>> {
        let segs = self.segs.lock();
        let data = segs
            .get(&seg)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no such segment"))?;
        let start = offset as usize;
        let end = start + len as usize;
        if end > data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "read past segment end",
            ));
        }
        Ok(data[start..end].to_vec())
    }
}

/// Running counters of one [`SpillStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Payloads spilled.
    pub entries_written: u64,
    /// Bytes appended to segments (frames included).
    pub bytes_written: u64,
    /// Spilled sessions read back (wakes + read-only serves).
    pub reads: u64,
    /// Segments created so far in this process.
    pub segments_opened: u64,
}

/// The writing side of the spill tier: appends framed payloads to the
/// current segment, rotating past `max_bytes`.
pub struct SpillStore {
    store: Box<dyn SegmentStore>,
    fingerprint: u64,
    current: u32,
    current_len: u64,
    max_bytes: u64,
    dirty: bool,
    stats: SpillStats,
}

impl SpillStore {
    /// Opens a store writing to segment `start` (created with a header if
    /// absent — recovery always passes a fresh number past every existing
    /// segment, so live appends never extend a possibly-torn tail).
    pub fn new(
        mut store: Box<dyn SegmentStore>,
        fingerprint: u64,
        start: u32,
        max_bytes: u64,
    ) -> std::io::Result<SpillStore> {
        let mut spill = SpillStore {
            current_len: store.len(start)?,
            store,
            fingerprint,
            current: start,
            max_bytes: max_bytes.max(super::codec::FILE_HEADER_LEN as u64 + 1),
            dirty: false,
            stats: SpillStats::default(),
        };
        if spill.current_len == 0 {
            spill.open_current()?;
        }
        Ok(spill)
    }

    fn open_current(&mut self) -> std::io::Result<()> {
        let header = file_header(SEG_MAGIC, self.fingerprint);
        self.store.append(self.current, &header)?;
        self.store.sync(self.current)?;
        self.current_len = header.len() as u64;
        self.stats.segments_opened += 1;
        Ok(())
    }

    /// Appends one payload (rotating first if it would overflow the
    /// current segment); **not** synced — call [`Self::sync`] before the
    /// WAL record referencing the entry is appended, so a committed
    /// locator never points at unsynced bytes.
    pub fn append(&mut self, payload: &SpillPayload) -> std::io::Result<SpillLocator> {
        let framed = frame(&payload.encode());
        if self.current_len + framed.len() as u64 > self.max_bytes
            && self.current_len > super::codec::FILE_HEADER_LEN as u64
        {
            self.sync()?;
            self.current += 1;
            self.open_current()?;
        }
        let offset = self.store.append(self.current, &framed)?;
        self.current_len = offset + framed.len() as u64;
        self.dirty = true;
        self.stats.entries_written += 1;
        self.stats.bytes_written += framed.len() as u64;
        Ok(SpillLocator {
            segment: self.current,
            offset,
            len: framed.len() as u32,
        })
    }

    /// Rotates to a fresh segment stamped with `fingerprint` — the
    /// universe-migration path. Old segments are left behind untouched:
    /// after the accompanying [`super::Wal::reset`] nothing references
    /// them, and recovery never reads a segment the log does not point
    /// into.
    pub fn restamp(&mut self, fingerprint: u64) -> std::io::Result<()> {
        self.sync()?;
        self.fingerprint = fingerprint;
        self.current += 1;
        self.open_current()
    }

    /// fsyncs the current segment if it has unsynced appends.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if std::mem::take(&mut self.dirty) {
            self.store.sync(self.current)?;
        }
        Ok(())
    }

    /// Reads one spilled payload back, re-verifying its frame checksum.
    pub fn read(&mut self, locator: SpillLocator) -> Result<SpillPayload, DurabilityError> {
        let bytes = self
            .store
            .read_at(locator.segment, locator.offset, locator.len)
            .map_err(|e| DurabilityError::Io(format!("segment read: {e}")))?;
        self.stats.reads += 1;
        read_payload_frame(&bytes, locator)
    }

    /// Counters so far.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// The segment currently being appended to.
    pub fn current_segment(&self) -> u32 {
        self.current
    }
}

/// Validates and decodes one framed [`SpillPayload`] read at `locator`.
pub fn read_payload_frame(
    bytes: &[u8],
    locator: SpillLocator,
) -> Result<SpillPayload, DurabilityError> {
    let corrupt = |detail: String| DurabilityError::CorruptSegment {
        segment: locator.segment,
        offset: locator.offset,
        detail,
    };
    match next_frame(bytes, 0) {
        FrameStep::Record { payload, next } if next == bytes.len() => {
            SpillPayload::decode(payload).map_err(corrupt)
        }
        FrameStep::Record { .. } => Err(corrupt("locator length exceeds its frame".into())),
        FrameStep::CleanEnd | FrameStep::TornTail => Err(corrupt(
            "entry frame is short or fails its payload checksum".into(),
        )),
        FrameStep::Corrupt { detail } => Err(corrupt(detail)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::{Label, StrategyConfig};

    fn payload(id: u64, n: usize) -> SpillPayload {
        SpillPayload {
            id,
            strategy: StrategyConfig::Bu,
            history: (0..n).map(|c| (c, Label::Negative)).collect(),
            pending: None,
        }
    }

    fn roundtrip(store: Box<dyn SegmentStore>) {
        let mut spill = SpillStore::new(store, 0xFEED, 0, 160).unwrap();
        let mut locs = Vec::new();
        for id in 0..6 {
            locs.push((id, spill.append(&payload(id, id as usize)).unwrap()));
        }
        spill.sync().unwrap();
        assert!(
            spill.current_segment() > 0,
            "tiny max_bytes must force rotation"
        );
        for (id, loc) in locs {
            assert_eq!(spill.read(loc).unwrap(), payload(id, id as usize));
        }
        assert_eq!(spill.stats().entries_written, 6);
        assert_eq!(spill.stats().reads, 6);
    }

    #[test]
    fn mem_segments_rotate_and_read_back() {
        roundtrip(Box::new(MemSegments::new()));
    }

    #[test]
    fn dir_segments_rotate_and_read_back() {
        let dir = std::env::temp_dir().join(format!(
            "jqi-seg-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        roundtrip(Box::new(DirSegments::open(&dir).unwrap()));
        let mut reopened = DirSegments::open(&dir).unwrap();
        assert!(reopened.list().unwrap().len() > 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_entries_fail_loudly_on_read() {
        let mem = MemSegments::new();
        let mut spill = SpillStore::new(Box::new(mem.clone()), 1, 0, 1 << 20).unwrap();
        let loc = spill.append(&payload(9, 3)).unwrap();
        let mut bytes = mem.segment_bytes(0).unwrap();
        let flip = loc.offset as usize + loc.len as usize - 1;
        bytes[flip] ^= 0x10;
        mem.set_segment_bytes(0, bytes);
        assert!(matches!(
            spill.read(loc),
            Err(DurabilityError::CorruptSegment { segment: 0, .. })
        ));
    }
}
