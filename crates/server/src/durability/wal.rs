//! The write-ahead log: an injectable append-only byte sink
//! ([`WalStorage`]) and the group-committing record writer ([`Wal`]).
//!
//! Two storage implementations ship:
//!
//! * [`FileWal`] — a real `File`, `write_all` + `sync_data`; what a server
//!   runs on.
//! * [`MemWal`] — a deterministic in-memory double image for fault
//!   injection: every append lands in a *pristine* image, and in a
//!   *durable* image **unless** a scripted [`CrashScript`] says the
//!   process died at that append — in which case the damage
//!   ([`Damage::Lost`], [`Damage::Torn`], [`Damage::BitFlip`]) is applied
//!   to the durable image and every later append is silently dropped
//!   (the process is "dead"). Tests then recover from the durable image
//!   and compare against a twin driven from the pristine prefix.
//!
//! [`MemWal`] clones share one underlying image, so a test can keep a
//! handle while the manager owns the `Box<dyn WalStorage>`.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use super::codec::{frame, WalRecord};

/// An append-only, truncatable byte log the WAL writes through.
///
/// Implementations must make `read_all` return exactly the bytes a fresh
/// process would observe after a crash — for [`FileWal`] that is the file;
/// for [`MemWal`] the scripted durable image.
pub trait WalStorage: Send {
    /// Appends `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Makes every append so far durable (fsync).
    fn sync(&mut self) -> std::io::Result<()>;
    /// The full current content, as recovery would see it.
    fn read_all(&mut self) -> std::io::Result<Vec<u8>>;
    /// Truncates the log to `len` bytes (recovery cutting a torn tail).
    fn truncate(&mut self, len: u64) -> std::io::Result<()>;
}

/// [`WalStorage`] over a real file, opened read+append-safe.
pub struct FileWal {
    file: File,
}

impl FileWal {
    /// Opens (creating if absent) the WAL file at `path`.
    pub fn open(path: &Path) -> std::io::Result<FileWal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileWal { file })
    }
}

impl WalStorage for FileWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }
}

/// What the scripted crash does to the append it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Damage {
    /// The append never reached the disk at all.
    Lost,
    /// Only the first `keep` bytes of the append landed (torn write).
    Torn {
        /// Bytes of the append that survived.
        keep: usize,
    },
    /// The append landed whole, but the bit at absolute position `bit`
    /// (modulo the durable image's length in bits) flipped — bit rot, the
    /// mid-log damage recovery must refuse loudly.
    BitFlip {
        /// Absolute bit index into the durable image.
        bit: u64,
    },
}

/// A deterministic scripted crash: at the `at_append`-th append (0-based,
/// counting every [`WalStorage::append`] call), apply `damage` and drop
/// everything after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashScript {
    /// Which append the crash fires on.
    pub at_append: usize,
    /// What happens to that append (and, for `BitFlip`, to the image).
    pub damage: Damage,
}

#[derive(Default)]
struct MemWalInner {
    /// What a crash-free run would have written (the test oracle).
    pristine: Vec<u8>,
    /// What recovery will actually read.
    durable: Vec<u8>,
    /// Byte length of `pristine` before each append, so tests can map
    /// "crashed at append k" to the pristine prefix that survived.
    append_starts: Vec<usize>,
    script: Option<CrashScript>,
    crashed: bool,
    io_failing: bool,
}

/// In-memory fault-injecting [`WalStorage`]; clones share the image.
#[derive(Clone, Default)]
pub struct MemWal {
    inner: Arc<Mutex<MemWalInner>>,
}

impl MemWal {
    /// A fresh, crash-free in-memory WAL.
    pub fn new() -> MemWal {
        MemWal::default()
    }

    /// A WAL that will "crash" per `script`.
    pub fn with_script(script: CrashScript) -> MemWal {
        let wal = MemWal::new();
        wal.inner.lock().script = Some(script);
        wal
    }

    /// Seeds the durable image (building a recovery input by hand).
    pub fn from_bytes(bytes: Vec<u8>) -> MemWal {
        let wal = MemWal::new();
        {
            let mut inner = wal.inner.lock();
            inner.pristine = bytes.clone();
            inner.durable = bytes;
        }
        wal
    }

    /// The bytes recovery will see (the post-crash durable image).
    pub fn durable_image(&self) -> Vec<u8> {
        self.inner.lock().durable.clone()
    }

    /// The bytes a crash-free run would have produced.
    pub fn pristine_image(&self) -> Vec<u8> {
        self.inner.lock().pristine.clone()
    }

    /// The pristine prefix up to (excluding) append `k` — what a run that
    /// stopped cleanly just before the crashed append would have written.
    pub fn pristine_prefix(&self, k: usize) -> Vec<u8> {
        let inner = self.inner.lock();
        match inner.append_starts.get(k) {
            Some(&cut) => inner.pristine[..cut].to_vec(),
            None => inner.pristine.clone(),
        }
    }

    /// How many appends have been attempted so far.
    pub fn appends(&self) -> usize {
        self.inner.lock().append_starts.len()
    }

    /// Whether the scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Toggles I/O-failure injection: while set, every append errors
    /// without touching either image. Unlike a [`CrashScript`] the
    /// process stays alive and *observes* the failure — this is the seam
    /// for testing the unwind paths (a create that must not leave a
    /// phantom record, a remove that must leave the session live).
    pub fn set_io_failing(&self, failing: bool) {
        self.inner.lock().io_failing = failing;
    }
}

impl WalStorage for MemWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        if inner.io_failing {
            return Err(std::io::Error::other("injected append failure"));
        }
        let index = inner.append_starts.len();
        let start = inner.pristine.len();
        inner.append_starts.push(start);
        inner.pristine.extend_from_slice(bytes);
        if inner.crashed {
            return Ok(());
        }
        match inner.script {
            Some(script) if script.at_append == index => {
                match script.damage {
                    Damage::Lost => {}
                    Damage::Torn { keep } => {
                        let keep = keep.min(bytes.len());
                        inner.durable.extend_from_slice(&bytes[..keep]);
                    }
                    Damage::BitFlip { bit } => {
                        inner.durable.extend_from_slice(bytes);
                        let nbits = inner.durable.len() as u64 * 8;
                        if nbits > 0 {
                            let bit = bit % nbits;
                            inner.durable[(bit / 8) as usize] ^= 1 << (bit % 8);
                        }
                    }
                }
                inner.crashed = true;
            }
            _ => inner.durable.extend_from_slice(bytes),
        }
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        // The durable image models the post-crash file directly; kill -9
        // (the target fault model) does not lose page-cache writes, so
        // sync is a no-op here.
        Ok(())
    }

    fn read_all(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.durable_image())
    }

    fn truncate(&mut self, len: u64) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        inner.durable.truncate(len as usize);
        Ok(())
    }
}

/// Running counters of one [`Wal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// fsyncs issued (group commit amortizes these over records).
    pub syncs: u64,
    /// Bytes appended, frames included.
    pub appended_bytes: u64,
}

/// The record-level WAL writer: frames records into an in-memory batch
/// and, every `group_every` records (or on an explicit [`Wal::commit`] —
/// the manager issues one per answer round), writes the batch to the
/// storage and fsyncs once. Group commit therefore amortizes the write
/// syscall *and* the fsync over the whole batch; an uncommitted batch is
/// lost on `kill -9`, which recovery treats the same as any other torn
/// tail.
pub struct Wal {
    storage: Box<dyn WalStorage>,
    group_every: usize,
    batch: Vec<u8>,
    dirty: usize,
    stats: WalStats,
}

impl Wal {
    /// Starts a WAL on `storage`, writing (and syncing) the file header.
    /// The storage must be empty.
    pub fn create(
        mut storage: Box<dyn WalStorage>,
        fingerprint: u64,
        group_every: usize,
    ) -> std::io::Result<Wal> {
        let header = super::codec::file_header(super::codec::WAL_MAGIC, fingerprint);
        storage.append(&header)?;
        storage.sync()?;
        Ok(Wal::resume(storage, group_every))
    }

    /// Adopts a storage whose header (and valid prefix) already exist —
    /// the post-recovery path.
    pub fn resume(storage: Box<dyn WalStorage>, group_every: usize) -> Wal {
        Wal {
            storage,
            group_every: group_every.max(1),
            batch: Vec::new(),
            dirty: 0,
            stats: WalStats::default(),
        }
    }

    /// Frames one record into the current batch; writes and fsyncs the
    /// batch if the group-commit quota is reached.
    ///
    /// If that commit fails *before the batch reached the storage*, the
    /// just-framed record is stripped back out: the caller unwinds the
    /// state transition the record described (`create_session` removes
    /// the table insert, `remove` keeps the session), so a later
    /// successful commit must not durably log an operation the caller was
    /// told failed — recovery would resurrect a phantom.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let framed = frame(&record.encode());
        let mark = self.batch.len();
        self.batch.extend_from_slice(&framed);
        self.stats.records += 1;
        self.stats.appended_bytes += framed.len() as u64;
        self.dirty += 1;
        if self.dirty >= self.group_every {
            if let Err(e) = self.commit() {
                // A non-empty batch means the storage append itself failed
                // (commit clears the batch before syncing); the record
                // never left memory, so un-append it. An empty batch means
                // the bytes reached the storage but the sync failed — they
                // cannot be unwritten, and the error still propagates.
                if self.batch.len() > mark {
                    self.batch.truncate(mark);
                    self.dirty -= 1;
                    self.stats.records -= 1;
                    self.stats.appended_bytes -= framed.len() as u64;
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Resets the log to an empty file stamped with `fingerprint`,
    /// discarding any unflushed batch — the universe-migration path. The
    /// caller immediately re-logs the whole fleet as `Restore` records (a
    /// checkpoint), so everything the discarded records described is
    /// captured by what follows the fresh header.
    pub fn reset(&mut self, fingerprint: u64) -> std::io::Result<()> {
        self.batch.clear();
        self.dirty = 0;
        self.storage.truncate(0)?;
        let header = super::codec::file_header(super::codec::WAL_MAGIC, fingerprint);
        self.storage.append(&header)?;
        self.storage.sync()?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Writes the pending batch to the storage and fsyncs it.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.dirty == 0 {
            return Ok(());
        }
        self.storage.append(&self.batch)?;
        self.batch.clear();
        self.storage.sync()?;
        self.stats.syncs += 1;
        self.dirty = 0;
        Ok(())
    }

    /// Counters so far.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort flush of a tail the group-commit quota had not yet
        // synced; a failure here is what recovery exists for.
        let _ = self.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::super::codec::{
        next_frame, parse_file_header, FrameStep, FILE_HEADER_LEN, WAL_MAGIC,
    };
    use super::*;
    use jqi_core::StrategyConfig;

    fn read_records(bytes: &[u8]) -> Vec<WalRecord> {
        let mut at = FILE_HEADER_LEN;
        let mut records = Vec::new();
        loop {
            match next_frame(&bytes[FILE_HEADER_LEN..], at - FILE_HEADER_LEN) {
                FrameStep::Record { payload, next } => {
                    records.push(WalRecord::decode(payload).unwrap());
                    at = FILE_HEADER_LEN + next;
                }
                FrameStep::CleanEnd => return records,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn group_commit_amortizes_syncs() {
        let mem = MemWal::new();
        let mut wal = Wal::create(Box::new(mem.clone()), 1, 4).unwrap();
        for id in 0..10 {
            wal.append(&WalRecord::Hibernate { id }).unwrap();
        }
        assert_eq!(wal.stats().records, 10);
        assert_eq!(wal.stats().syncs, 2, "10 records / group of 4");
        wal.commit().unwrap();
        assert_eq!(wal.stats().syncs, 3);
        wal.commit().unwrap();
        assert_eq!(wal.stats().syncs, 3, "clean commit is a no-op");
        let bytes = mem.durable_image();
        assert_eq!(
            parse_file_header(&bytes, WAL_MAGIC, "wal").unwrap(),
            Some(1)
        );
        assert_eq!(read_records(&bytes).len(), 10);
    }

    #[test]
    fn scripted_crashes_damage_the_durable_image_only() {
        // Torn write at the third append (header is append 0).
        let mem = MemWal::with_script(CrashScript {
            at_append: 2,
            damage: Damage::Torn { keep: 5 },
        });
        let mut wal = Wal::create(Box::new(mem.clone()), 7, 1).unwrap();
        for id in 0..4 {
            wal.append(&WalRecord::Remove { id }).unwrap();
        }
        assert!(mem.crashed());
        let durable = mem.durable_image();
        let pristine = mem.pristine_image();
        assert!(durable.len() < pristine.len());
        assert_eq!(durable, &pristine[..durable.len()]);
        // The surviving prefix parses up to a torn tail.
        let body = &durable[FILE_HEADER_LEN..];
        match next_frame(body, 0) {
            FrameStep::Record { next, .. } => {
                assert!(matches!(next_frame(body, next), FrameStep::TornTail));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The pristine prefix before the crashed append holds 1 record.
        let prefix = mem.pristine_prefix(2);
        assert_eq!(read_records(&prefix).len(), 1);
    }

    #[test]
    fn failed_auto_commit_strips_the_record_from_the_batch() {
        let mem = MemWal::new();
        // group_every = 1: every append tries to commit immediately.
        let mut wal = Wal::create(Box::new(mem.clone()), 1, 1).unwrap();
        mem.set_io_failing(true);
        assert!(wal.append(&WalRecord::Remove { id: 7 }).is_err());
        // The failed record left no trace: not in the stats, and not in
        // the batch a later commit would flush.
        assert_eq!(wal.stats().records, 0);
        mem.set_io_failing(false);
        wal.append(&WalRecord::Hibernate { id: 1 }).unwrap();
        wal.commit().unwrap();
        assert_eq!(
            read_records(&mem.durable_image()),
            vec![WalRecord::Hibernate { id: 1 }],
            "the unwound Remove must not resurface in the log"
        );
    }

    #[test]
    fn lost_appends_drop_cleanly() {
        let mem = MemWal::with_script(CrashScript {
            at_append: 1,
            damage: Damage::Lost,
        });
        let mut wal = Wal::create(Box::new(mem.clone()), 0, 1).unwrap();
        wal.append(&WalRecord::Create {
            id: 0,
            strategy: StrategyConfig::Bu,
        })
        .unwrap();
        wal.append(&WalRecord::Remove { id: 0 }).unwrap();
        assert_eq!(mem.durable_image().len(), FILE_HEADER_LEN);
        assert_eq!(read_records(&mem.durable_image()).len(), 0);
    }
}
