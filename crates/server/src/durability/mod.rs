//! The durability tier: checksummed write-ahead logging, hibernation
//! spill segments, and crash recovery for the session fleet.
//!
//! Sessions are deterministic functions of tiny inputs — a strategy
//! config, a label history, a pending question (`jqi-session/1`) — so
//! durability never persists derived state: the WAL logs the *inputs* as
//! they happen, the spill tier writes parked payloads to segment files,
//! and [`crate::SessionManager::recover`] rebuilds the fleet by the same
//! replay path a hibernated session wakes through. Three pieces:
//!
//! * [`codec`] — CRC32, length-prefixed checksummed frames, record
//!   payloads, and the 16-byte file header stamping the **universe
//!   fingerprint** ([`jqi_core::Universe::fingerprint`]) into every WAL
//!   and segment file.
//! * [`wal`] / [`segment`] — the injectable storage traits
//!   ([`WalStorage`], [`SegmentStore`]) with real-file implementations
//!   ([`FileWal`], [`DirSegments`]) and deterministic in-memory
//!   fault-injection twins ([`MemWal`] with a scripted [`CrashScript`],
//!   [`MemSegments`]), plus the group-committing [`Wal`] writer and the
//!   rotating [`SpillStore`].
//! * [`recover`] — the WAL replay state machine: truncate the torn tail,
//!   fail loudly on mid-log corruption or impossible sequences, resolve
//!   `Spill` records against checksummed segment entries, refuse any
//!   fingerprint mismatch.
//!
//! The manager integration lives in [`crate::manager`]: pass a
//! [`DurabilityConfig`] via [`crate::SessionManager::recover`] (a fresh
//! directory starts a durable fleet, an existing one recovers it) and
//! every mutation is logged; one [`Wal::commit`] covers a whole answer
//! round (group commit).

pub mod codec;
pub mod recover;
pub mod segment;
pub mod wal;

pub use codec::{SpillPayload, WalRecord};
pub use recover::{RecoveredFleet, RecoveredSession, RecoveredTier};
pub use segment::{DirSegments, MemSegments, SegmentStore, SpillLocator, SpillStats, SpillStore};
pub use wal::{CrashScript, Damage, FileWal, MemWal, Wal, WalStats, WalStorage};

/// Knobs of the durability tier.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Group commit: fsync the WAL every this many records. `1` fsyncs
    /// every record (safest, slowest); the manager additionally forces a
    /// commit at the end of every `answer_batch` round and every sweep,
    /// so a larger value amortizes fsyncs across a fleet's answer round
    /// without ever leaving an *acknowledged* round unsynced.
    pub group_commit_every: usize,
    /// Spill watermark: when a sweep finds
    /// `resident_bytes + hibernated_bytes` above this, parked sessions
    /// spill to segments (oldest idle first) until the total RAM
    /// footprint is back under it. `None` disables spilling.
    pub resident_watermark_bytes: Option<usize>,
    /// Rotate to a new segment file once the current one reaches this
    /// many bytes.
    pub segment_max_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_commit_every: 64,
            resident_watermark_bytes: None,
            segment_max_bytes: 64 << 20,
        }
    }
}

/// Errors of the durability tier. I/O failures, corruption, and
/// cross-universe restores are all *loud*: the one thing this layer never
/// does is silently serve a session it cannot prove consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An underlying storage operation failed.
    Io(String),
    /// A WAL or segment file header is malformed (wrong magic).
    BadHeader {
        /// What failed to parse.
        detail: String,
    },
    /// Durable state was written by a different universe.
    FingerprintMismatch {
        /// Which header carried the offending stamp.
        source: &'static str,
        /// The serving universe's fingerprint.
        expected: u64,
        /// The stamped fingerprint.
        found: u64,
    },
    /// Durable state stamped by an **earlier epoch** of the same universe
    /// content: the log predates one or more live-data deltas
    /// ([`jqi_core::Universe::apply_delta`]) applied since, so its class
    /// ids cannot be replayed against the serving universe. Re-point the
    /// manager at a fresh durability directory (a migration resets the
    /// log) instead of recovering from this one.
    StaleEpoch {
        /// Which header carried the stale stamp.
        source: &'static str,
        /// The epoch the log was stamped at.
        found_epoch: u64,
        /// The serving universe's epoch.
        serving_epoch: u64,
    },
    /// A checksum failure in the middle of the WAL (a torn *tail* is
    /// truncated instead — see [`recover`]).
    CorruptWal {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// A referenced segment entry is unreadable or fails its checksum.
    CorruptSegment {
        /// Segment number.
        segment: u32,
        /// Byte offset within the segment.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// The WAL parses but describes an impossible sequence (duplicate
    /// create, remove of an unknown id, …) — mid-history damage.
    BadLog {
        /// Byte offset of the offending record.
        offset: u64,
        /// What is impossible about it.
        detail: String,
    },
    /// A recovered session's history failed deterministic replay against
    /// the serving universe.
    Replay {
        /// The session that failed.
        session: u64,
        /// The inference-level failure.
        error: jqi_core::InferenceError,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::BadHeader { detail } => write!(f, "bad file header: {detail}"),
            DurabilityError::FingerprintMismatch {
                source,
                expected,
                found,
            } => write!(
                f,
                "universe fingerprint mismatch in {source}: \
                 stamped {found:016x}, serving universe is {expected:016x}"
            ),
            DurabilityError::StaleEpoch {
                source,
                found_epoch,
                serving_epoch,
            } => write!(
                f,
                "universe epoch mismatch in {source}: stamped at epoch \
                 {found_epoch}, serving universe is the same content at \
                 epoch {serving_epoch} — the log predates an applied delta"
            ),
            DurabilityError::CorruptWal { offset, detail } => {
                write!(f, "corrupt WAL at byte {offset}: {detail}")
            }
            DurabilityError::CorruptSegment {
                segment,
                offset,
                detail,
            } => write!(f, "corrupt segment {segment} at byte {offset}: {detail}"),
            DurabilityError::BadLog { offset, detail } => {
                write!(f, "impossible WAL sequence at byte {offset}: {detail}")
            }
            DurabilityError::Replay { session, error } => {
                write!(f, "recovered session {session} fails replay: {error}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e.to_string())
    }
}

/// Aggregate durability counters, reported in
/// [`crate::ManagerStats::durability`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended since the manager started.
    pub wal_records: u64,
    /// WAL fsyncs issued.
    pub wal_syncs: u64,
    /// WAL bytes appended (frames included).
    pub wal_appended_bytes: u64,
    /// Session payloads spilled to segments.
    pub spill_entries: u64,
    /// Segment bytes written (frames included).
    pub spill_bytes_written: u64,
    /// Spilled payloads read back (wakes and read-only serves).
    pub spill_reads: u64,
}

/// What [`crate::SessionManager::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions restored.
    pub sessions: usize,
    /// …of which re-entered the hibernated (RAM) tier.
    pub hibernated: usize,
    /// …of which stayed spilled on disk.
    pub spilled: usize,
    /// WAL records replayed.
    pub wal_records: u64,
    /// Torn-tail bytes truncated from the WAL.
    pub wal_torn_bytes: u64,
    /// Records referencing removed sessions (tolerated races), skipped.
    pub ignored_records: u64,
    /// Labels re-applied across all validation replays.
    pub replayed_answers: u64,
}
