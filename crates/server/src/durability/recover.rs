//! Crash recovery: scan the WAL, resolve spill references against the
//! segment files, and hand the manager a validated fleet description.
//!
//! Recovery is *replay*: the WAL carries exactly what `jqi-session/1`
//! snapshots carry — strategy configs, label suffixes, pending questions,
//! spill locators — so rebuilding a session is the same deterministic
//! `apply_batch` replay the hibernation tier already uses. This module
//! only reconstructs the *descriptions*; [`crate::SessionManager::recover`]
//! materializes and validates each one.
//!
//! # Failure semantics
//!
//! * A **torn tail** (the file ends mid-frame, or the final frame fails
//!   its payload checksum — what an interrupted append produces) is
//!   truncated away: everything before it was fsync-ordered and survives.
//! * **Mid-log corruption** (a checksum failure with more data after it, a
//!   header that fails its own CRC, an undecodable record, a semantically
//!   impossible sequence like a duplicate `Create`) fails recovery loudly
//!   with [`DurabilityError`] — a log that lies is worse than a log that
//!   ends early.
//! * Records referencing an id the log never created are **tolerated**
//!   (counted, skipped): `remove()` drops the slot while a detached
//!   operation — an answer, a question delivery, or a sweep's spill, all
//!   of which hold only a slot `Arc` — may still be finishing against the
//!   removed session and append behind it, the documented remove
//!   semantics.
//! * Every fingerprint (WAL header, each referenced segment header) must
//!   match the serving universe's, else [`DurabilityError::FingerprintMismatch`].

use std::collections::HashMap;

use jqi_core::{ClassId, Label, StrategyConfig};

use super::codec::{
    next_frame, parse_file_header, FrameStep, SpillPayload, WalRecord, FILE_HEADER_LEN, SEG_MAGIC,
    WAL_MAGIC,
};
use super::segment::{read_payload_frame, SegmentStore, SpillLocator};
use super::DurabilityError;

/// Which tier a recovered session re-enters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredTier {
    /// Was resident at the crash: recovery re-parks it anyway (hibernated)
    /// — the first touch re-materializes it, keeping recovery memory
    /// proportional to histories, not derived state.
    Resident,
    /// Was parked in RAM.
    Hibernated,
    /// Was spilled to a segment; the locator still points at its payload.
    Spilled(SpillLocator),
}

/// One session as the log describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSession {
    /// Strategy configuration.
    pub strategy: StrategyConfig,
    /// Full label history (spill baseline + later WAL answer suffixes).
    pub history: Vec<(ClassId, Label)>,
    /// Outstanding question.
    pub pending: Option<ClassId>,
    /// Tier to re-enter.
    pub tier: RecoveredTier,
}

/// The decoded fleet plus bookkeeping the manager needs to resume.
#[derive(Debug, Default)]
pub struct RecoveredFleet {
    /// Sessions by id.
    pub sessions: HashMap<u64, RecoveredSession>,
    /// One past the largest id the log ever allocated (0 for an empty
    /// log), the resume point for the id counter.
    pub next_id: u64,
    /// Absolute file length the WAL must be truncated to (strips the torn
    /// tail; equals the file length when the log ended cleanly).
    pub wal_keep_len: u64,
    /// Bytes of torn tail being discarded.
    pub wal_torn_bytes: u64,
    /// Records replayed.
    pub wal_records: u64,
    /// Records referencing unknown ids (detached-operation races).
    pub ignored_records: u64,
    /// Largest segment number referenced or present, if any — the store
    /// resumes at the next number.
    pub max_segment: Option<u32>,
}

/// Replays `wal_bytes` (a whole WAL file, header included) against
/// `segments`, checking every fingerprint against `fingerprint`.
pub fn recover_fleet(
    wal_bytes: &[u8],
    segments: &mut dyn SegmentStore,
    fingerprint: u64,
) -> Result<RecoveredFleet, DurabilityError> {
    let mut fleet = RecoveredFleet::default();
    for seg in segments
        .list()
        .map_err(|e| DurabilityError::Io(format!("listing segments: {e}")))?
    {
        fleet.max_segment = Some(fleet.max_segment.map_or(seg, |m| m.max(seg)));
    }

    // A WAL shorter than its header is the torn remnant of `create`:
    // nothing was ever logged past it, so the fleet is empty and the
    // remnant is truncated away (the caller rewrites a fresh header).
    match parse_file_header(wal_bytes, WAL_MAGIC, "wal")
        .map_err(|detail| DurabilityError::BadHeader { detail })?
    {
        None => {
            fleet.wal_torn_bytes = wal_bytes.len() as u64;
            return Ok(fleet);
        }
        Some(found) if found != fingerprint => {
            return Err(DurabilityError::FingerprintMismatch {
                source: "wal header",
                expected: fingerprint,
                found,
            });
        }
        Some(_) => {}
    }

    // Referenced segments are header-validated once, lazily — recovery
    // never scans segment bodies, it reads exactly the frames the WAL
    // points at.
    let mut checked_segments: HashMap<u32, ()> = HashMap::new();

    let body = &wal_bytes[FILE_HEADER_LEN..];
    let mut at = 0usize;
    loop {
        let offset = (FILE_HEADER_LEN + at) as u64;
        match next_frame(body, at) {
            FrameStep::CleanEnd => {
                fleet.wal_keep_len = wal_bytes.len() as u64;
                break;
            }
            FrameStep::TornTail => {
                fleet.wal_keep_len = offset;
                fleet.wal_torn_bytes = wal_bytes.len() as u64 - offset;
                break;
            }
            FrameStep::Corrupt { detail } => {
                return Err(DurabilityError::CorruptWal { offset, detail });
            }
            FrameStep::Record { payload, next } => {
                let record = WalRecord::decode(payload)
                    .map_err(|detail| DurabilityError::CorruptWal { offset, detail })?;
                apply_record(
                    &mut fleet,
                    record,
                    offset,
                    segments,
                    &mut checked_segments,
                    fingerprint,
                )?;
                fleet.wal_records += 1;
                at = next;
            }
        }
    }
    Ok(fleet)
}

fn bad_log(offset: u64, detail: impl Into<String>) -> DurabilityError {
    DurabilityError::BadLog {
        offset,
        detail: detail.into(),
    }
}

fn apply_record(
    fleet: &mut RecoveredFleet,
    record: WalRecord,
    offset: u64,
    segments: &mut dyn SegmentStore,
    checked_segments: &mut HashMap<u32, ()>,
    fingerprint: u64,
) -> Result<(), DurabilityError> {
    match record {
        WalRecord::Create { id, strategy } => {
            fleet.next_id = fleet.next_id.max(id + 1);
            let prior = fleet.sessions.insert(
                id,
                RecoveredSession {
                    strategy,
                    history: Vec::new(),
                    pending: None,
                    tier: RecoveredTier::Resident,
                },
            );
            if prior.is_some() {
                return Err(bad_log(offset, format!("duplicate create of session {id}")));
            }
        }
        WalRecord::Restore {
            id,
            strategy,
            history,
            pending,
        } => {
            fleet.next_id = fleet.next_id.max(id + 1);
            let prior = fleet.sessions.insert(
                id,
                RecoveredSession {
                    strategy,
                    history,
                    pending,
                    tier: RecoveredTier::Resident,
                },
            );
            if prior.is_some() {
                return Err(bad_log(offset, format!("restore over live session {id}")));
            }
        }
        WalRecord::Answers { id, answers } => match fleet.sessions.get_mut(&id) {
            Some(s) => {
                s.history.extend_from_slice(&answers);
                // Answering implies the session was materialized.
                s.tier = RecoveredTier::Resident;
            }
            None => fleet.ignored_records += 1,
        },
        WalRecord::Question { id, class } => match fleet.sessions.get_mut(&id) {
            Some(s) => {
                s.pending = Some(class);
                s.tier = RecoveredTier::Resident;
            }
            None => fleet.ignored_records += 1,
        },
        WalRecord::Hibernate { id } => match fleet.sessions.get_mut(&id) {
            Some(s) => s.tier = RecoveredTier::Hibernated,
            None => fleet.ignored_records += 1,
        },
        WalRecord::Spill {
            id,
            segment,
            offset: seg_offset,
            len,
        } => {
            // A spill record is the WAL's index entry: the payload in the
            // segment becomes the session's authoritative replay state
            // (later Answers/Question records append past it). The
            // referenced segment counts toward `max_segment` even when the
            // record is ignored below — live appends must resume past it.
            fleet.max_segment = Some(fleet.max_segment.map_or(segment, |m| m.max(segment)));
            let Some(s) = fleet.sessions.get_mut(&id) else {
                // A detached-operation race, like answers: sweep() spills
                // from slot Arcs collected outside the shard lock, so a
                // concurrent remove() can log Remove before the sweep's
                // Spill lands. The session is gone; the orphaned segment
                // entry is never referenced again.
                fleet.ignored_records += 1;
                return Ok(());
            };
            let locator = SpillLocator {
                segment,
                offset: seg_offset,
                len,
            };
            if checked_segments.insert(segment, ()).is_none() {
                check_segment_header(segments, segment, fingerprint)?;
            }
            let payload = read_spill(segments, locator)?;
            if payload.id != id {
                return Err(bad_log(
                    offset,
                    format!("segment entry belongs to session {}, not {id}", payload.id),
                ));
            }
            if payload.strategy != s.strategy {
                return Err(bad_log(
                    offset,
                    format!("spilled strategy diverges for session {id}"),
                ));
            }
            s.history = payload.history;
            s.pending = payload.pending;
            s.tier = RecoveredTier::Spilled(locator);
        }
        WalRecord::Remove { id } => {
            if fleet.sessions.remove(&id).is_none() {
                return Err(bad_log(offset, format!("remove of unknown session {id}")));
            }
        }
    }
    Ok(())
}

fn check_segment_header(
    segments: &mut dyn SegmentStore,
    segment: u32,
    fingerprint: u64,
) -> Result<(), DurabilityError> {
    let len = segments
        .len(segment)
        .map_err(|e| DurabilityError::Io(format!("segment {segment}: {e}")))?;
    if len < FILE_HEADER_LEN as u64 {
        return Err(DurabilityError::CorruptSegment {
            segment,
            offset: 0,
            detail: "referenced segment lacks a header".into(),
        });
    }
    let header = segments
        .read_at(segment, 0, FILE_HEADER_LEN as u32)
        .map_err(|e| DurabilityError::Io(format!("segment {segment}: {e}")))?;
    match parse_file_header(&header, SEG_MAGIC, "segment")
        .map_err(|detail| DurabilityError::BadHeader { detail })?
    {
        Some(found) if found == fingerprint => Ok(()),
        Some(found) => Err(DurabilityError::FingerprintMismatch {
            source: "segment header",
            expected: fingerprint,
            found,
        }),
        None => unreachable!("length checked above"),
    }
}

fn read_spill(
    segments: &mut dyn SegmentStore,
    locator: SpillLocator,
) -> Result<SpillPayload, DurabilityError> {
    let bytes = segments
        .read_at(locator.segment, locator.offset, locator.len)
        .map_err(|e| DurabilityError::CorruptSegment {
            segment: locator.segment,
            offset: locator.offset,
            detail: format!("referenced entry unreadable: {e}"),
        })?;
    read_payload_frame(&bytes, locator)
}

#[cfg(test)]
mod tests {
    use super::super::codec::{file_header, frame};
    use super::super::segment::{MemSegments, SpillStore};
    use super::*;

    fn wal_image(records: &[WalRecord], fingerprint: u64) -> Vec<u8> {
        let mut bytes = file_header(WAL_MAGIC, fingerprint).to_vec();
        for r in records {
            bytes.extend_from_slice(&frame(&r.encode()));
        }
        bytes
    }

    #[test]
    fn replays_creates_answers_and_removes() {
        let mut segs = MemSegments::new();
        let records = [
            WalRecord::Create {
                id: 0,
                strategy: StrategyConfig::Bu,
            },
            WalRecord::Question { id: 0, class: 3 },
            WalRecord::Answers {
                id: 0,
                answers: vec![(3, Label::Negative)],
            },
            WalRecord::Create {
                id: 1,
                strategy: StrategyConfig::Td,
            },
            WalRecord::Hibernate { id: 0 },
            WalRecord::Remove { id: 1 },
        ];
        let fleet = recover_fleet(&wal_image(&records, 5), &mut segs, 5).unwrap();
        assert_eq!(fleet.sessions.len(), 1);
        assert_eq!(fleet.next_id, 2);
        assert_eq!(fleet.wal_records, 6);
        assert_eq!(fleet.wal_torn_bytes, 0);
        let s = &fleet.sessions[&0];
        assert_eq!(s.history, vec![(3, Label::Negative)]);
        // The question was answered, then the session parked; the last
        // Question record precedes the answer so pending stays recorded —
        // replay's informativeness filter drops it at wake if moot.
        assert_eq!(s.pending, Some(3));
        assert_eq!(s.tier, RecoveredTier::Hibernated);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let mut bytes = wal_image(
            &[WalRecord::Create {
                id: 0,
                strategy: StrategyConfig::Bu,
            }],
            1,
        );
        let keep = bytes.len() as u64;
        let torn = frame(&WalRecord::Remove { id: 0 }.encode());
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let fleet = recover_fleet(&bytes, &mut MemSegments::new(), 1).unwrap();
        assert_eq!(fleet.sessions.len(), 1);
        assert_eq!(fleet.wal_keep_len, keep);
        assert_eq!(fleet.wal_torn_bytes, (torn.len() - 3) as u64);
    }

    #[test]
    fn mid_log_corruption_is_loud() {
        let mut bytes = wal_image(
            &[
                WalRecord::Create {
                    id: 0,
                    strategy: StrategyConfig::Bu,
                },
                WalRecord::Hibernate { id: 0 },
            ],
            1,
        );
        // Flip a bit inside the FIRST record's payload (mid-log).
        bytes[FILE_HEADER_LEN + 14] ^= 0x20;
        assert!(matches!(
            recover_fleet(&bytes, &mut MemSegments::new(), 1),
            Err(DurabilityError::CorruptWal { .. })
        ));
    }

    #[test]
    fn impossible_sequences_are_loud() {
        let dup = wal_image(
            &[
                WalRecord::Create {
                    id: 0,
                    strategy: StrategyConfig::Bu,
                },
                WalRecord::Create {
                    id: 0,
                    strategy: StrategyConfig::Td,
                },
            ],
            1,
        );
        assert!(matches!(
            recover_fleet(&dup, &mut MemSegments::new(), 1),
            Err(DurabilityError::BadLog { .. })
        ));
        let ghost_remove = wal_image(&[WalRecord::Remove { id: 4 }], 1);
        assert!(matches!(
            recover_fleet(&ghost_remove, &mut MemSegments::new(), 1),
            Err(DurabilityError::BadLog { .. })
        ));
    }

    #[test]
    fn detached_answers_after_remove_are_tolerated() {
        let records = [
            WalRecord::Create {
                id: 0,
                strategy: StrategyConfig::Bu,
            },
            WalRecord::Remove { id: 0 },
            WalRecord::Answers {
                id: 0,
                answers: vec![(1, Label::Negative)],
            },
        ];
        let fleet = recover_fleet(&wal_image(&records, 1), &mut MemSegments::new(), 1).unwrap();
        assert_eq!(fleet.sessions.len(), 0);
        assert_eq!(fleet.ignored_records, 1);
    }

    #[test]
    fn detached_spills_after_remove_are_tolerated() {
        // sweep() spills from slot Arcs collected outside the shard lock,
        // so a concurrent remove() can commit its Remove record before the
        // sweep's Spill lands — a legitimate log a clean shutdown can
        // leave behind, not corruption.
        let segs = MemSegments::new();
        let mut spill = SpillStore::new(Box::new(segs.clone()), 3, 0, 1 << 20).unwrap();
        let loc = spill
            .append(&SpillPayload {
                id: 0,
                strategy: StrategyConfig::Bu,
                history: vec![(1, Label::Negative)],
                pending: None,
            })
            .unwrap();
        spill.sync().unwrap();
        let records = [
            WalRecord::Create {
                id: 0,
                strategy: StrategyConfig::Bu,
            },
            WalRecord::Remove { id: 0 },
            WalRecord::Spill {
                id: 0,
                segment: loc.segment,
                offset: loc.offset,
                len: loc.len,
            },
        ];
        let mut store = segs.clone();
        let fleet = recover_fleet(&wal_image(&records, 3), &mut store, 3).unwrap();
        assert_eq!(fleet.sessions.len(), 0);
        assert_eq!(fleet.ignored_records, 1);
        // The orphaned entry's segment still counts: live appends resume
        // past it.
        assert_eq!(fleet.max_segment, Some(loc.segment));
    }

    #[test]
    fn fingerprint_mismatch_is_loud() {
        let bytes = wal_image(&[], 111);
        assert!(matches!(
            recover_fleet(&bytes, &mut MemSegments::new(), 222),
            Err(DurabilityError::FingerprintMismatch { found: 111, .. })
        ));
    }

    #[test]
    fn short_or_missing_wal_is_a_fresh_start() {
        let fleet = recover_fleet(&[], &mut MemSegments::new(), 1).unwrap();
        assert_eq!(fleet.sessions.len(), 0);
        assert_eq!(fleet.wal_keep_len, 0);
        let torn_header = &file_header(WAL_MAGIC, 1)[..9];
        let fleet = recover_fleet(torn_header, &mut MemSegments::new(), 1).unwrap();
        assert_eq!(fleet.wal_torn_bytes, 9);
    }

    #[test]
    fn spill_records_swap_in_the_segment_payload() {
        let segs = MemSegments::new();
        let mut spill = SpillStore::new(Box::new(segs.clone()), 7, 0, 1 << 20).unwrap();
        let payload = SpillPayload {
            id: 0,
            strategy: StrategyConfig::Bu,
            history: vec![(2, Label::Positive), (5, Label::Negative)],
            pending: Some(9),
        };
        let loc = spill.append(&payload).unwrap();
        spill.sync().unwrap();
        let records = [
            WalRecord::Create {
                id: 0,
                strategy: StrategyConfig::Bu,
            },
            WalRecord::Answers {
                id: 0,
                answers: vec![(2, Label::Positive), (5, Label::Negative)],
            },
            WalRecord::Hibernate { id: 0 },
            WalRecord::Spill {
                id: 0,
                segment: loc.segment,
                offset: loc.offset,
                len: loc.len,
            },
            // Woken after the spill: a later answer extends the baseline.
            WalRecord::Answers {
                id: 0,
                answers: vec![(7, Label::Negative)],
            },
        ];
        let mut store = segs.clone();
        let fleet = recover_fleet(&wal_image(&records, 7), &mut store, 7).unwrap();
        let s = &fleet.sessions[&0];
        assert_eq!(
            s.history,
            vec![
                (2, Label::Positive),
                (5, Label::Negative),
                (7, Label::Negative)
            ]
        );
        assert_eq!(s.tier, RecoveredTier::Resident, "post-spill answer woke it");
        assert_eq!(fleet.max_segment, Some(0));

        // Same log against a store stamped with the wrong fingerprint.
        let other = MemSegments::new();
        let mut wrong = SpillStore::new(Box::new(other.clone()), 8, 0, 1 << 20).unwrap();
        let loc2 = wrong.append(&payload).unwrap();
        assert_eq!((loc2.segment, loc2.offset), (loc.segment, loc.offset));
        let mut store = other.clone();
        assert!(matches!(
            recover_fleet(&wal_image(&records, 7), &mut store, 7),
            Err(DurabilityError::FingerprintMismatch { found: 8, .. })
        ));
    }
}
