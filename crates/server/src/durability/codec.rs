//! On-disk encoding shared by the WAL and the spill segments: CRC32,
//! length-prefixed checksummed frames, and the record payloads.
//!
//! # Frame layout
//!
//! Every record — WAL entry or spilled session payload — is written as one
//! *frame*:
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬───────────────────┐
//! │ len: u32 │ pcrc: u32│ hcrc: u32│ payload (len B)   │   all LE
//! └──────────┴──────────┴──────────┴───────────────────┘
//! ```
//!
//! `pcrc` is the CRC32 (IEEE, reflected 0xEDB88320) of the payload and
//! `hcrc` the CRC32 of the first 8 header bytes (`len` + `pcrc`), so a
//! corrupted length can never send the reader off the rails: a frame whose
//! header fails its own checksum is reported as corruption, never walked
//! past. Files open with a 16-byte header — an 8-byte magic
//! ([`WAL_MAGIC`] / [`SEG_MAGIC`]) plus the universe fingerprint
//! ([`jqi_core::Universe::fingerprint`]) — so recovery refuses logs from a
//! different universe before replaying a single record.
//!
//! # Torn tail vs corruption
//!
//! [`next_frame`] distinguishes the two failure modes recovery must treat
//! differently (see [`crate::durability::recover`]):
//!
//! * **torn tail** — the file ends mid-frame (fewer than 12 header bytes,
//!   or fewer payload bytes than the checksummed header declares), or the
//!   *final* frame's payload fails its CRC. Exactly what a crash between
//!   `write` and `fsync` produces; recovery truncates it away.
//! * **corruption** — a frame *followed by more data* fails a checksum, or
//!   a header fails its own CRC, or declares an absurd length. A crash
//!   cannot produce this (appends are sequential), so it means bit rot or
//!   truncation in the middle of history — recovery fails loudly.

use jqi_core::{ClassId, Label, StrategyConfig};

/// First 8 bytes of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"JQIWAL1\n";
/// First 8 bytes of a spill segment file.
pub const SEG_MAGIC: [u8; 8] = *b"JQISEG1\n";
/// File header: magic + universe fingerprint (both 8 bytes, LE).
pub const FILE_HEADER_LEN: usize = 16;
/// Frame header: `len | pcrc | hcrc`, each `u32` LE.
pub const FRAME_HEADER_LEN: usize = 12;
/// Upper bound on one frame's payload — anything larger is corruption
/// (the biggest legitimate record is a spilled history, ~6 B/answer).
pub const MAX_PAYLOAD_LEN: u32 = 1 << 24;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// gzip/zlib/PNG use. Table-driven, built in a `const` so the hot append
/// path is one lookup per byte with no lazy-init branch.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Builds the 16-byte file header for `magic` + `fingerprint`.
pub fn file_header(magic: [u8; 8], fingerprint: u64) -> [u8; FILE_HEADER_LEN] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[..8].copy_from_slice(&magic);
    h[8..].copy_from_slice(&fingerprint.to_le_bytes());
    h
}

/// Validates a file header, returning the stamped fingerprint.
///
/// `Ok(None)` means the file ends inside the header — the torn remnant of
/// a crash during creation, which recovery treats as an empty file.
pub fn parse_file_header(bytes: &[u8], magic: [u8; 8], what: &str) -> Result<Option<u64>, String> {
    if bytes.len() < FILE_HEADER_LEN {
        return Ok(None);
    }
    if bytes[..8] != magic {
        return Err(format!(
            "{what}: bad magic {:02x?}, expected {:02x?}",
            &bytes[..8],
            magic
        ));
    }
    Ok(Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap())))
}

/// Wraps `payload` in a checksummed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD_LEN as u64,
        "oversized record"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let hcrc = crc32(&out[..8]);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of a frame scan — see [`next_frame`].
#[derive(Debug)]
pub enum FrameStep<'a> {
    /// A whole, checksum-valid frame.
    Record {
        /// The frame's payload (CRC-verified).
        payload: &'a [u8],
        /// Offset just past the frame, where the next one starts.
        next: usize,
    },
    /// `at` is exactly the end of the buffer: a clean end of log.
    CleanEnd,
    /// The buffer ends mid-frame (or the final frame's payload fails its
    /// CRC): the torn tail of an interrupted append. Recovery truncates
    /// the file back to the frame's start offset.
    TornTail,
    /// A checksum failure that an interrupted append cannot explain —
    /// mid-log damage that must fail recovery loudly.
    Corrupt {
        /// Human-readable description of what failed.
        detail: String,
    },
}

/// Reads the frame starting at `at` in `bytes` (offsets are relative to
/// the start of `bytes`, i.e. past any file header, which the caller
/// strips). See the [module docs](self) for the torn-tail/corruption
/// contract.
pub fn next_frame(bytes: &[u8], at: usize) -> FrameStep<'_> {
    let remaining = &bytes[at..];
    if remaining.is_empty() {
        return FrameStep::CleanEnd;
    }
    if remaining.len() < FRAME_HEADER_LEN {
        return FrameStep::TornTail;
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
    let pcrc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
    let hcrc = u32::from_le_bytes(remaining[8..12].try_into().unwrap());
    if crc32(&remaining[..8]) != hcrc {
        // A torn append can only produce a *short* frame, never 12 fully
        // written header bytes that disagree with their own checksum.
        return FrameStep::Corrupt {
            detail: "frame header fails its checksum".into(),
        };
    }
    if len > MAX_PAYLOAD_LEN {
        return FrameStep::Corrupt {
            detail: format!("frame declares absurd payload length {len}"),
        };
    }
    let end = FRAME_HEADER_LEN + len as usize;
    if remaining.len() < end {
        return FrameStep::TornTail;
    }
    let payload = &remaining[FRAME_HEADER_LEN..end];
    if crc32(payload) != pcrc {
        return if remaining.len() == end {
            // The final record of the file: indistinguishable from a torn
            // append that wrote the header and only part of the payload
            // over stale bytes — truncate, don't fail.
            FrameStep::TornTail
        } else {
            FrameStep::Corrupt {
                detail: "payload fails its checksum mid-log".into(),
            }
        };
    }
    FrameStep::Record {
        payload,
        next: at + end,
    }
}

// ---------------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------------

const TAG_CREATE: u8 = 1;
const TAG_RESTORE: u8 = 2;
const TAG_ANSWERS: u8 = 3;
const TAG_QUESTION: u8 = 4;
const TAG_HIBERNATE: u8 = 5;
const TAG_SPILL: u8 = 6;
const TAG_REMOVE: u8 = 7;

/// One logical WAL entry. Every mutation of the session table appends
/// exactly one (plus `Question` when a strategy step selects a *new*
/// candidate — pending questions are part of session state, so recovery
/// must reproduce them; idempotent re-delivery of an outstanding question
/// appends nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// `create_session(strategy)` handed out `id`.
    Create {
        /// The new session's id.
        id: u64,
        /// Its strategy configuration.
        strategy: StrategyConfig,
    },
    /// `restore(snapshot)` re-created `id` with its full replay state.
    Restore {
        /// The restored session's id.
        id: u64,
        /// The snapshot's strategy configuration.
        strategy: StrategyConfig,
        /// The snapshot's label history.
        history: Vec<(ClassId, Label)>,
        /// The snapshot's outstanding question.
        pending: Option<ClassId>,
    },
    /// The suffix of labels an `answer_batch` actually applied (agreeing
    /// duplicates are not re-recorded; a failing batch still logs the
    /// prefix it applied before erroring, keeping log and state aligned).
    Answers {
        /// The answering session.
        id: u64,
        /// The `(class, label)` pairs appended to its history, in order.
        answers: Vec<(ClassId, Label)>,
    },
    /// A strategy step selected a new outstanding question.
    Question {
        /// The asking session.
        id: u64,
        /// The selected class.
        class: ClassId,
    },
    /// The session parked into the hibernation tier.
    Hibernate {
        /// The parked session.
        id: u64,
    },
    /// The session's parked payload was spilled to a segment; the WAL
    /// entry is just the locator — the payload lives in the segment,
    /// fsync'd before this record is appended.
    Spill {
        /// The spilled session.
        id: u64,
        /// Segment file number.
        segment: u32,
        /// Byte offset of the payload's frame within the segment.
        offset: u64,
        /// Length of the payload's frame in bytes.
        len: u32,
    },
    /// The session was removed.
    Remove {
        /// The removed session.
        id: u64,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "oversized string");
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_class(out: &mut Vec<u8>, c: ClassId) {
    let c = u32::try_from(c).expect("class ids fit in u32");
    out.extend_from_slice(&c.to_le_bytes());
}

fn put_history(out: &mut Vec<u8>, history: &[(ClassId, Label)]) {
    out.extend_from_slice(&(history.len() as u32).to_le_bytes());
    for &(c, label) in history {
        put_class(out, c);
        out.push(match label {
            Label::Negative => 0,
            Label::Positive => 1,
        });
    }
}

fn put_pending(out: &mut Vec<u8>, pending: Option<ClassId>) {
    match pending {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_class(out, c);
        }
    }
}

/// A strict little-endian reader over a record payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("record truncated at byte {}", self.at))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|e| format!("bad UTF-8 string: {e}"))
    }

    fn strategy(&mut self) -> Result<StrategyConfig, String> {
        self.str()?
            .parse()
            .map_err(|e| format!("bad strategy string: {e}"))
    }

    fn label(&mut self) -> Result<Label, String> {
        match self.u8()? {
            0 => Ok(Label::Negative),
            1 => Ok(Label::Positive),
            other => Err(format!("bad label byte {other}")),
        }
    }

    fn history(&mut self) -> Result<Vec<(ClassId, Label)>, String> {
        let n = self.u32()? as usize;
        // Bounded by the payload length the frame already checksummed, so
        // a hostile count cannot over-allocate.
        if n > self.bytes.len() {
            return Err(format!("history count {n} exceeds record size"));
        }
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            let class = self.u32()? as ClassId;
            let label = self.label()?;
            history.push((class, label));
        }
        Ok(history)
    }

    fn pending(&mut self) -> Result<Option<ClassId>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()? as ClassId)),
            other => Err(format!("bad pending flag {other}")),
        }
    }

    fn finish(self) -> Result<(), String> {
        if self.at != self.bytes.len() {
            return Err(format!(
                "{} trailing bytes after record",
                self.bytes.len() - self.at
            ));
        }
        Ok(())
    }
}

impl WalRecord {
    /// Serializes the record payload (the frame is added by the WAL).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            WalRecord::Create { id, strategy } => {
                out.push(TAG_CREATE);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, &strategy.to_string());
            }
            WalRecord::Restore {
                id,
                strategy,
                history,
                pending,
            } => {
                out.push(TAG_RESTORE);
                out.extend_from_slice(&id.to_le_bytes());
                put_str(&mut out, &strategy.to_string());
                put_pending(&mut out, *pending);
                put_history(&mut out, history);
            }
            WalRecord::Answers { id, answers } => {
                out.push(TAG_ANSWERS);
                out.extend_from_slice(&id.to_le_bytes());
                put_history(&mut out, answers);
            }
            WalRecord::Question { id, class } => {
                out.push(TAG_QUESTION);
                out.extend_from_slice(&id.to_le_bytes());
                put_class(&mut out, *class);
            }
            WalRecord::Hibernate { id } => {
                out.push(TAG_HIBERNATE);
                out.extend_from_slice(&id.to_le_bytes());
            }
            WalRecord::Spill {
                id,
                segment,
                offset,
                len,
            } => {
                out.push(TAG_SPILL);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&segment.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            WalRecord::Remove { id } => {
                out.push(TAG_REMOVE);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    /// Parses a record payload (already CRC-validated by the frame).
    pub fn decode(bytes: &[u8]) -> Result<WalRecord, String> {
        let mut r = Reader { bytes, at: 0 };
        let tag = r.u8()?;
        let record = match tag {
            TAG_CREATE => WalRecord::Create {
                id: r.u64()?,
                strategy: r.strategy()?,
            },
            TAG_RESTORE => WalRecord::Restore {
                id: r.u64()?,
                strategy: r.strategy()?,
                pending: r.pending()?,
                history: r.history()?,
            },
            TAG_ANSWERS => WalRecord::Answers {
                id: r.u64()?,
                answers: r.history()?,
            },
            TAG_QUESTION => WalRecord::Question {
                id: r.u64()?,
                class: r.u32()? as ClassId,
            },
            TAG_HIBERNATE => WalRecord::Hibernate { id: r.u64()? },
            TAG_SPILL => WalRecord::Spill {
                id: r.u64()?,
                segment: r.u32()?,
                offset: r.u64()?,
                len: r.u32()?,
            },
            TAG_REMOVE => WalRecord::Remove { id: r.u64()? },
            other => return Err(format!("unknown record tag {other}")),
        };
        r.finish()?;
        Ok(record)
    }
}

/// The payload a hibernated session spills to a segment: its full replay
/// state. Self-describing (carries the id), so a segment can be audited —
/// or shipped to another shard — without the WAL that references it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillPayload {
    /// The spilled session's id.
    pub id: u64,
    /// Its strategy configuration.
    pub strategy: StrategyConfig,
    /// Its label history.
    pub history: Vec<(ClassId, Label)>,
    /// Its outstanding question, if any.
    pub pending: Option<ClassId>,
}

impl SpillPayload {
    /// Serializes the payload (the segment adds the frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 5 * self.history.len());
        out.extend_from_slice(&self.id.to_le_bytes());
        put_str(&mut out, &self.strategy.to_string());
        put_pending(&mut out, self.pending);
        put_history(&mut out, &self.history);
        out
    }

    /// Parses a payload (already CRC-validated by the frame).
    pub fn decode(bytes: &[u8]) -> Result<SpillPayload, String> {
        let mut r = Reader { bytes, at: 0 };
        let payload = SpillPayload {
            id: r.u64()?,
            strategy: r.strategy()?,
            pending: r.pending()?,
            history: r.history()?,
        };
        r.finish()?;
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_chain() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&frame(b"alpha"));
        buf.extend_from_slice(&frame(b""));
        buf.extend_from_slice(&frame(b"gamma"));
        let mut at = 0;
        let mut seen = Vec::new();
        loop {
            match next_frame(&buf, at) {
                FrameStep::Record { payload, next } => {
                    seen.push(payload.to_vec());
                    at = next;
                }
                FrameStep::CleanEnd => break,
                other => panic!("unexpected step {other:?}"),
            }
        }
        assert_eq!(
            seen,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn short_tails_are_torn_not_corrupt() {
        let full = frame(b"payload");
        // Every strict prefix of a single frame is a torn tail.
        for cut in 0..full.len() {
            match next_frame(&full[..cut], 0) {
                FrameStep::TornTail => {}
                FrameStep::CleanEnd if cut == 0 => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn final_record_payload_damage_is_torn_mid_log_damage_is_corrupt() {
        let mut buf = frame(b"first");
        let second_start = buf.len();
        buf.extend_from_slice(&frame(b"second"));
        // Flip a payload bit in the FINAL record: torn tail.
        let mut tail_damaged = buf.clone();
        let last = tail_damaged.len() - 1;
        tail_damaged[last] ^= 0x40;
        assert!(matches!(
            next_frame(&tail_damaged, second_start),
            FrameStep::TornTail
        ));
        // Same flip with another record after it: corruption.
        let mut mid_damaged = tail_damaged;
        mid_damaged.extend_from_slice(&frame(b"third"));
        assert!(matches!(
            next_frame(&mid_damaged, second_start),
            FrameStep::Corrupt { .. }
        ));
        // A damaged header is corruption wherever it sits.
        let mut header_damaged = buf;
        header_damaged[second_start] ^= 0x01;
        assert!(matches!(
            next_frame(&header_damaged, second_start),
            FrameStep::Corrupt { .. }
        ));
    }

    #[test]
    fn records_round_trip() {
        let records = [
            WalRecord::Create {
                id: 7,
                strategy: StrategyConfig::Lks { depth: 2 },
            },
            WalRecord::Restore {
                id: u64::MAX,
                strategy: StrategyConfig::Rnd { seed: 99 },
                history: vec![(3, Label::Positive), (0, Label::Negative)],
                pending: Some(12),
            },
            WalRecord::Answers {
                id: 1,
                answers: vec![(5, Label::Negative)],
            },
            WalRecord::Question { id: 1, class: 9 },
            WalRecord::Hibernate { id: 2 },
            WalRecord::Spill {
                id: 3,
                segment: 4,
                offset: 1 << 40,
                len: 77,
            },
            WalRecord::Remove { id: 4 },
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record, "{record:?}");
        }
    }

    #[test]
    fn spill_payloads_round_trip() {
        let payload = SpillPayload {
            id: 42,
            strategy: StrategyConfig::Eg,
            history: vec![(1, Label::Negative), (2, Label::Positive)],
            pending: None,
        };
        assert_eq!(SpillPayload::decode(&payload.encode()).unwrap(), payload);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        // Truncated Create.
        assert!(WalRecord::decode(&[TAG_CREATE, 1, 2]).is_err());
        // Trailing garbage.
        let mut bytes = WalRecord::Remove { id: 1 }.encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
        // Hostile history count larger than the record.
        let mut answers = WalRecord::Answers {
            id: 1,
            answers: vec![],
        }
        .encode();
        let n = answers.len();
        answers[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(WalRecord::decode(&answers).is_err());
    }

    #[test]
    fn file_headers_validate_magic_and_carry_the_fingerprint() {
        let h = file_header(WAL_MAGIC, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(
            parse_file_header(&h, WAL_MAGIC, "wal").unwrap(),
            Some(0xDEAD_BEEF_0BAD_F00D)
        );
        assert_eq!(parse_file_header(&h[..7], WAL_MAGIC, "wal").unwrap(), None);
        assert!(parse_file_header(&h, SEG_MAGIC, "segment").is_err());
    }
}
