//! The sharded, thread-safe session table.
//!
//! One [`SessionManager`] owns a shared immutable [`Universe`] behind an
//! [`Arc`] and serves any number of concurrent inference sessions over it.
//! Sessions are spread over `N` shards by `id % N`; each shard is a
//! [`parking_lot::RwLock`] around a `HashMap<SessionId, Arc<Mutex<…>>>`:
//!
//! * **shard locks** are held only for table lookups, inserts, and removals
//!   (microseconds), never across strategy computation — creating or
//!   dropping a session stalls at most `1/N` of the lookups;
//! * **per-session mutexes** serialize the operations of one session, so
//!   answers for the *same* session arriving from several threads are
//!   applied in some total order, while sessions on different mutexes
//!   (even in the same shard) proceed fully in parallel.
//!
//! Answers are class-addressed and go through the session's batch path
//! ([`jqi_core::session::Session::apply_batch`]): they may arrive out of
//! order relative to the questions asked, in batches folded into the
//! inference state under a single lock acquisition, and duplicated by
//! concurrent workers (agreeing duplicates are idempotent; contradictions
//! surface as [`InferenceError::ConflictingLabel`]).

use crate::durability::recover::{recover_fleet, RecoveredTier};
use crate::durability::{
    DirSegments, DurabilityConfig, DurabilityError, DurabilityStats, FileWal, RecoveryReport,
    SegmentStore, SpillLocator, SpillPayload, SpillStore, Wal, WalRecord, WalStorage,
};
use crate::snapshot::SessionSnapshot;
use jqi_core::session::{Candidate, OwnedSession};
use jqi_core::{
    ClassId, DecisionCacheStats, DeltaError, InferenceError, Label, StrategyConfig, Universe,
    UniverseDelta,
};
use jqi_relation::BitSet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A multiply–xorshift finalizer for the `u64` session ids.
///
/// The session table is probed twice per answered question (question +
/// answer), and std's default SipHash dominates a `u64` lookup; ids are
/// either a trusted counter or snapshot-restored values, so a keyed hash
/// buys nothing here. The finalizer is the 64-bit murmur mix — full
/// avalanche, so sequential ids spread over the buckets.
#[derive(Default)]
struct SessionIdHasher(u64);

impl Hasher for SessionIdHasher {
    #[inline]
    fn write_u64(&mut self, id: u64) {
        let mut h = id;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.0 = h;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Sessions ids hash through write_u64; keep a correct fallback.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identifier of a session within one [`SessionManager`].
pub type SessionId = u64;

/// Configuration of a [`SessionManager`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards the session table is split into. More shards mean
    /// less create/remove contention; lookups are O(1) either way.
    pub shards: usize,
    /// Idle TTL of the hibernation tier: resident sessions untouched for
    /// at least this long are parked by [`SessionManager::sweep`] — their
    /// derived masks are dropped and only the strategy config + label
    /// history (+ the outstanding question) are kept, re-materializing
    /// lazily on the next touch via one replay `apply_batch`. `None`
    /// disables sweeping; [`SessionManager::hibernate_idle`] can still be
    /// called with an explicit TTL.
    pub hibernate_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 16,
            hibernate_ttl: None,
        }
    }
}

/// Errors surfaced by the session service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// No session with this id (never created, or already removed).
    UnknownSession(SessionId),
    /// A restore collided with a live session carrying the same id.
    SessionExists(SessionId),
    /// An inference-level failure (inconsistent labels, conflicting
    /// duplicate answers, out-of-range classes, …).
    Inference(InferenceError),
    /// A snapshot stamped with a different universe's fingerprint was
    /// offered to [`SessionManager::restore`] — replaying its class-id
    /// history here would silently produce a wrong session, so it is
    /// refused loudly instead.
    UniverseMismatch {
        /// The serving universe's fingerprint.
        expected: u64,
        /// The snapshot's stamped fingerprint.
        found: u64,
    },
    /// The durability tier failed (WAL/segment I/O, corruption on a
    /// spilled-session read, …).
    Durability(DurabilityError),
    /// A live-data edit script could not be applied to the serving
    /// universe ([`jqi_core::DeltaError`] — unknown symbols, arity
    /// mismatches, deleting absent rows, or a universe built without
    /// live tables).
    Delta(DeltaError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::SessionExists(id) => write!(f, "session {id} already exists"),
            ServerError::Inference(e) => write!(f, "inference error: {e}"),
            ServerError::UniverseMismatch { expected, found } => write!(
                f,
                "snapshot was taken against universe {found:016x}, \
                 this manager serves {expected:016x}"
            ),
            ServerError::Durability(e) => write!(f, "durability error: {e}"),
            ServerError::Delta(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Inference(e) => Some(e),
            ServerError::Durability(e) => Some(e),
            ServerError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InferenceError> for ServerError {
    fn from(e: InferenceError) -> Self {
        ServerError::Inference(e)
    }
}

impl From<DurabilityError> for ServerError {
    fn from(e: DurabilityError) -> Self {
        ServerError::Durability(e)
    }
}

/// Convenience alias for service results.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Which tier a session currently occupies.
///
/// The resident session is boxed so a hibernated slot's inline footprint
/// is the small variant (a history `Vec` + the pending class), not the
/// full session struct — parking a session genuinely returns its memory.
enum Tier {
    /// Materialized: the full session with every derived mask.
    Resident(Box<OwnedSession>),
    /// Parked: only what deterministic replay needs. `history` is
    /// `shrink_to_fit`-ed on entry, so a parked session holds exactly its
    /// replay log.
    Hibernated {
        history: Vec<(ClassId, Label)>,
        pending: Option<ClassId>,
    },
    /// Spilled to a segment file: RAM holds only the locator (and the
    /// history length, so metrics never touch the disk). The payload —
    /// history + pending — is read back from the segment on the next
    /// touch; only a manager with a durability tier can hold this
    /// variant.
    Spilled {
        locator: SpillLocator,
        history_len: usize,
    },
}

/// One session table slot: the strategy config (needed to snapshot and to
/// re-materialize), the idle clock, and the tiered session itself.
struct Slot {
    config: StrategyConfig,
    last_touch: Instant,
    tier: Tier,
}

impl Slot {
    fn resident(config: StrategyConfig, session: OwnedSession) -> Slot {
        Slot {
            config,
            last_touch: Instant::now(),
            tier: Tier::Resident(Box::new(session)),
        }
    }

    /// The materialized session, re-materializing a hibernated one lazily
    /// by replaying its history through one `apply_batch` — warm fleets
    /// answer the replay's strategy-free mask ops from the shared caches,
    /// so waking is cheap even at scale. A [`Tier::Spilled`] slot must be
    /// lifted back to [`Tier::Hibernated`] first (the manager's
    /// `materialize` does the segment read — it needs the spill store).
    fn session(&mut self, universe: &Arc<Universe>) -> &mut OwnedSession {
        if let Tier::Hibernated { history, pending } = &mut self.tier {
            let history = std::mem::take(history);
            let pending = pending.take();
            let session =
                OwnedSession::replay(Arc::clone(universe), &self.config, &history, pending)
                    .expect("hibernated history was applied once, so it replays");
            self.tier = Tier::Resident(Box::new(session));
        }
        match &mut self.tier {
            Tier::Resident(session) => session,
            Tier::Hibernated { .. } => unreachable!("just materialized"),
            Tier::Spilled { .. } => unreachable!("caller lifts spilled slots first"),
        }
    }

    /// Parks a resident session, dropping its derived masks and strategy
    /// object; returns `(resident_bytes_freed, hibernated_bytes_added)`
    /// when a transition happened, `None` otherwise (already parked or
    /// spilled).
    fn hibernate(&mut self) -> Option<(usize, usize)> {
        if !matches!(self.tier, Tier::Resident(_)) {
            return None;
        }
        let tier = std::mem::replace(
            &mut self.tier,
            Tier::Hibernated {
                history: Vec::new(),
                pending: None,
            },
        );
        let Tier::Resident(session) = tier else {
            unreachable!("checked above");
        };
        let freed = session.resident_bytes();
        let (mut history, pending) = session.into_replay_parts();
        history.shrink_to_fit();
        let added = Slot::hibernated_bytes(&history);
        self.tier = Tier::Hibernated { history, pending };
        Some((freed, added))
    }

    /// Resident bytes of a parked session: the replay log (by allocation
    /// capacity — equal to its length after the shrink on entry) plus the
    /// pending marker. (The strategy config is carried by every slot in
    /// either tier, so it is excluded from the comparison on both sides.)
    fn hibernated_bytes(history: &Vec<(ClassId, Label)>) -> usize {
        history.capacity() * std::mem::size_of::<(ClassId, Label)>()
            + std::mem::size_of::<Option<ClassId>>()
    }
}

/// Aggregate per-session memory statistics of a [`SessionManager`] — see
/// [`SessionManager::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live sessions (resident + hibernated) at sampling time.
    pub sessions: usize,
    /// Sessions materialized with full derived state.
    pub resident_sessions: usize,
    /// Sessions parked in the hibernation tier (bare replay logs).
    pub hibernated_sessions: usize,
    /// Total heap bytes of derived inference state across **resident**
    /// sessions ([`jqi_core::InferenceState::state_bytes`]).
    pub state_bytes: usize,
    /// Total *full* resident footprint of materialized sessions (session
    /// struct + derived-state heap + history heap,
    /// [`jqi_core::session::Session::resident_bytes`]).
    pub resident_bytes: usize,
    /// Total bytes of label history (the replay log) held **in RAM**
    /// (resident + hibernated tiers; spilled histories live on disk and
    /// are counted in [`ManagerStats::spilled_bytes`]).
    pub history_bytes: usize,
    /// Total resident bytes of **hibernated** sessions (replay log +
    /// pending marker).
    pub hibernated_bytes: usize,
    /// Sessions spilled to segment files (RAM holds only a locator).
    pub spilled_sessions: usize,
    /// Total on-disk bytes of live spilled sessions (their segment
    /// frames). Disk, not RAM: a spilled session's resident footprint is
    /// the ~16-byte locator, counted nowhere else.
    pub spilled_bytes: usize,
    /// The shared universe's decision-cache counters at sampling time.
    pub decision_cache: DecisionCacheStats,
    /// WAL/spill counters when the manager has a durability tier.
    pub durability: Option<DurabilityStats>,
}

impl ManagerStats {
    /// Mean derived-state bytes per resident session (0 when none).
    pub fn state_bytes_per_session(&self) -> f64 {
        if self.resident_sessions == 0 {
            0.0
        } else {
            self.state_bytes as f64 / self.resident_sessions as f64
        }
    }

    /// Mean full footprint per resident session (0 when none).
    pub fn resident_bytes_per_session(&self) -> f64 {
        if self.resident_sessions == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.resident_sessions as f64
        }
    }

    /// Mean resident bytes per hibernated session (0 when none).
    pub fn hibernated_bytes_per_session(&self) -> f64 {
        if self.hibernated_sessions == 0 {
            0.0
        } else {
            self.hibernated_bytes as f64 / self.hibernated_sessions as f64
        }
    }
}

/// What one [`SessionManager::sweep`] / [`SessionManager::hibernate_idle`]
/// pass did, with per-tier byte deltas so a watermark controller (and the
/// benches) observe exactly the accounting [`SessionManager::stats`]
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Sessions parked resident → hibernated this pass.
    pub parked: usize,
    /// Sessions spilled hibernated → segment this pass.
    pub spilled: usize,
    /// Resident-tier bytes released by parking (full session footprints).
    pub resident_bytes_freed: usize,
    /// Hibernated-tier bytes those parks added (bare replay payloads).
    pub hibernated_bytes_added: usize,
    /// Hibernated-tier bytes released by spilling.
    pub hibernated_bytes_freed: usize,
    /// Segment bytes written by this pass's spills (frames included).
    pub spilled_bytes_written: usize,
}

/// The live durability tier of one manager: the group-committing WAL and
/// the rotating spill store, each behind its own mutex.
///
/// Lock order (deadlock freedom): shard lock → session mutex → spill
/// mutex → WAL mutex, always in that direction. Records that must agree
/// with a state transition are appended while the transition's lock is
/// still held — per-session operations under the session mutex,
/// create/restore/remove under the shard write lock — so the log's order
/// is an order the table actually went through.
struct DurabilityState {
    config: DurabilityConfig,
    wal: Mutex<Wal>,
    spill: Mutex<SpillStore>,
}

impl DurabilityState {
    fn log(&self, record: &WalRecord) -> Result<()> {
        self.wal
            .lock()
            .append(record)
            .map_err(|e| ServerError::Durability(DurabilityError::Io(e.to_string())))
    }
}

type Shard = RwLock<HashMap<SessionId, Arc<Mutex<Slot>>, BuildHasherDefault<SessionIdHasher>>>;

/// The universe currently being served, plus its cached fingerprint.
///
/// Swapped atomically (under the write half of the serving lock) by
/// [`SessionManager::migrate`] / [`SessionManager::apply_delta`]; every
/// public operation holds the read half for its whole duration, so a
/// migration observes a quiesced fleet and no operation ever straddles
/// two universes.
struct Serving {
    universe: Arc<Universe>,
    fingerprint: u64,
}

/// What one [`SessionManager::migrate`] / [`SessionManager::apply_delta`]
/// did to the session fleet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Live sessions examined (every tier).
    pub sessions: usize,
    /// Sessions whose derived masks carried over verbatim — the serving
    /// universe's class structure was unchanged (a count-only delta), so
    /// migration cost O(masks) per session.
    pub carried: usize,
    /// Sessions re-validated by signature-remapped replay against the new
    /// universe (structural deltas, and every parked session).
    pub replayed: usize,
    /// Labels dropped across the fleet because their class has no
    /// signature-equal counterpart in the new universe (its rows were all
    /// deleted). Dropping a label only widens the consistent interval, so
    /// the surviving sessions remain sound.
    pub dropped_labels: usize,
    /// Sessions removed because their remapped history no longer replays
    /// against the new universe. Loud by construction: the ids are
    /// returned here and the sessions answer
    /// [`ServerError::UnknownSession`] afterwards.
    pub invalidated: Vec<SessionId>,
    /// The epoch served before the migration.
    pub from_epoch: u64,
    /// The epoch served after it.
    pub to_epoch: u64,
}

/// A thread-safe, multi-session inference service over one shared universe.
///
/// See the [module docs](self) for the locking discipline. All methods take
/// `&self`; the manager is meant to live in an `Arc` shared by every worker
/// thread of a server.
pub struct SessionManager {
    /// The served universe and its [`Universe::fingerprint`] — stamped
    /// into snapshots and all durable state, checked on restore/recover,
    /// and swapped wholesale by [`Self::migrate`]. Lock order: serving →
    /// shard → session mutex → spill → WAL.
    serving: RwLock<Serving>,
    config: ServerConfig,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
    durability: Option<DurabilityState>,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("shards", &self.shards.len())
            .field("sessions", &self.session_count())
            .field("next_id", &self.next_id.load(Ordering::Relaxed))
            .finish()
    }
}

impl SessionManager {
    /// Creates an in-memory (non-durable) manager serving sessions over
    /// `universe`. See [`Self::recover`] for the durable constructor.
    pub fn new(universe: Arc<Universe>, config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        SessionManager {
            serving: RwLock::new(Serving {
                fingerprint: universe.fingerprint(),
                universe,
            }),
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            next_id: AtomicU64::new(0),
            config,
            durability: None,
        }
    }

    /// Opens (or creates) a **durable** manager rooted at `dir`: the WAL
    /// at `dir/wal.log`, spill segments under `dir/segments/`.
    ///
    /// A fresh directory starts an empty durable fleet. An existing one
    /// is *recovered*: spill references are resolved against the
    /// checksummed segments, the WAL is replayed (its torn tail — the
    /// remnant of an interrupted append — is truncated away; any mid-log
    /// corruption or fingerprint mismatch fails loudly), and every
    /// restored session is validated by a full deterministic replay
    /// against `universe` before it is served, then re-parked
    /// (hibernated, or left spilled) so recovery memory stays
    /// proportional to histories, not derived state.
    pub fn recover(
        universe: Arc<Universe>,
        config: ServerConfig,
        durability: DurabilityConfig,
        dir: &Path,
    ) -> std::result::Result<(Self, RecoveryReport), DurabilityError> {
        std::fs::create_dir_all(dir)?;
        let wal = FileWal::open(&dir.join("wal.log"))?;
        let segments = DirSegments::open(&dir.join("segments"))?;
        Self::recover_with_storage(
            universe,
            config,
            durability,
            Box::new(wal),
            Box::new(segments),
        )
    }

    /// [`Self::recover`] over injectable storage — the fault-injection
    /// seam ([`crate::durability::MemWal`] /
    /// [`crate::durability::MemSegments`] let tests script crashes,
    /// torn writes, and bit flips deterministically).
    pub fn recover_with_storage(
        universe: Arc<Universe>,
        config: ServerConfig,
        durability: DurabilityConfig,
        mut wal_storage: Box<dyn WalStorage>,
        mut segments: Box<dyn SegmentStore>,
    ) -> std::result::Result<(Self, RecoveryReport), DurabilityError> {
        let fingerprint = universe.fingerprint();
        let wal_bytes = wal_storage.read_all()?;
        let fleet = recover_fleet(&wal_bytes, segments.as_mut(), fingerprint)
            .map_err(|e| Self::name_stale_epoch(&universe, e))?;
        if fleet.wal_keep_len < wal_bytes.len() as u64 {
            wal_storage.truncate(fleet.wal_keep_len)?;
        }
        let group = durability.group_commit_every;
        let wal = if fleet.wal_keep_len < crate::durability::codec::FILE_HEADER_LEN as u64 {
            Wal::create(wal_storage, fingerprint, group)?
        } else {
            Wal::resume(wal_storage, group)
        };
        // Live appends always start on a fresh segment past everything the
        // log references — a possibly-torn segment tail is never extended.
        let next_segment = fleet.max_segment.map_or(0, |m| m + 1);
        let spill = SpillStore::new(
            segments,
            fingerprint,
            next_segment,
            durability.segment_max_bytes,
        )?;

        let manager = SessionManager {
            serving: RwLock::new(Serving {
                universe: Arc::clone(&universe),
                fingerprint,
            }),
            shards: (0..config.shards.max(1))
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            next_id: AtomicU64::new(fleet.next_id),
            config,
            durability: Some(DurabilityState {
                config: durability,
                wal: Mutex::new(wal),
                spill: Mutex::new(spill),
            }),
        };
        let mut report = RecoveryReport {
            wal_records: fleet.wal_records,
            wal_torn_bytes: fleet.wal_torn_bytes,
            ignored_records: fleet.ignored_records,
            ..RecoveryReport::default()
        };
        for (id, recovered) in fleet.sessions {
            // Validate by the real replay path: a history the serving
            // universe cannot replay must fail recovery, not panic at the
            // first touch. The materialized session is dropped right away
            // — its replay also normalizes a pending question that later
            // answers made moot, exactly as the live session would have.
            let session = OwnedSession::replay(
                Arc::clone(&universe),
                &recovered.strategy,
                &recovered.history,
                recovered.pending,
            )
            .map_err(|error| DurabilityError::Replay { session: id, error })?;
            report.replayed_answers += recovered.history.len() as u64;
            let (mut history, pending) = session.into_replay_parts();
            let tier = match recovered.tier {
                RecoveredTier::Spilled(locator) => {
                    report.spilled += 1;
                    Tier::Spilled {
                        locator,
                        history_len: history.len(),
                    }
                }
                RecoveredTier::Resident | RecoveredTier::Hibernated => {
                    report.hibernated += 1;
                    history.shrink_to_fit();
                    Tier::Hibernated { history, pending }
                }
            };
            report.sessions += 1;
            manager
                .insert(
                    id,
                    Slot {
                        config: recovered.strategy,
                        last_touch: Instant::now(),
                        tier,
                    },
                )
                .expect("recovered ids are unique (log replay is a map)");
        }
        Ok((manager, report))
    }

    /// The configuration the manager was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Rewrites a wal-header fingerprint mismatch whose stamp matches an
    /// *earlier epoch* of the very same universe content into the
    /// explicit stale-epoch error — "same data, older version" deserves a
    /// better message than a bare hash mismatch.
    fn name_stale_epoch(universe: &Universe, e: DurabilityError) -> DurabilityError {
        let DurabilityError::FingerprintMismatch {
            source,
            expected,
            found,
        } = e
        else {
            return e;
        };
        let content = universe.content_fingerprint();
        let stale = (0..universe.epoch())
            .find(|&epoch| Universe::fingerprint_at_epoch(content, epoch) == found);
        match stale {
            Some(found_epoch) => DurabilityError::StaleEpoch {
                source,
                found_epoch,
                serving_epoch: universe.epoch(),
            },
            None => DurabilityError::FingerprintMismatch {
                source,
                expected,
                found,
            },
        }
    }

    /// The serving universe's fingerprint ([`Universe::fingerprint`]),
    /// stamped into snapshots and durable state. Changes on every
    /// [`Self::migrate`] / [`Self::apply_delta`] (the fingerprint folds
    /// the universe's epoch).
    pub fn universe_fingerprint(&self) -> u64 {
        self.serving.read().fingerprint
    }

    /// The universe all sessions currently run over, by value: the handle
    /// stays valid across a concurrent [`Self::migrate`], it just keeps
    /// the pre-migration universe alive until dropped.
    pub fn universe(&self) -> Arc<Universe> {
        Arc::clone(&self.serving.read().universe)
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Aggregate per-session resident-memory statistics (one pass over the
    /// session table, locking each session briefly), so footprint
    /// regressions are visible in server stats and bench output.
    ///
    /// `state_bytes` sums the mask-compressed derived inference state of
    /// resident sessions ([`jqi_core::InferenceState::state_bytes`]);
    /// `history_bytes` sums the replay logs (what snapshots persist,
    /// proportional to answers given); `hibernated_bytes` sums the bare
    /// footprint of parked sessions. The shared universe is excluded — it
    /// is paid once per process, not per session — but its decision-cache
    /// counters ride along in `decision_cache`. Sampling is not a touch:
    /// it never wakes a parked session or resets an idle clock.
    pub fn stats(&self) -> ManagerStats {
        let serving = self.serving.read();
        let mut stats = ManagerStats {
            decision_cache: serving.universe.decision_cache_stats(),
            ..ManagerStats::default()
        };
        for shard in self.shards.iter() {
            // Clone the slot handles out so the shard lock is not held
            // while session mutexes are taken.
            let slots: Vec<Arc<Mutex<Slot>>> = shard.read().values().cloned().collect();
            for slot in slots {
                let guard = slot.lock();
                stats.sessions += 1;
                match &guard.tier {
                    Tier::Resident(session) => {
                        stats.resident_sessions += 1;
                        stats.state_bytes += session.state_bytes();
                        stats.resident_bytes += session.resident_bytes();
                        stats.history_bytes += std::mem::size_of_val(session.history());
                    }
                    Tier::Hibernated { history, .. } => {
                        stats.hibernated_sessions += 1;
                        stats.history_bytes += std::mem::size_of_val(&history[..]);
                        stats.hibernated_bytes += Slot::hibernated_bytes(history);
                    }
                    Tier::Spilled { locator, .. } => {
                        stats.spilled_sessions += 1;
                        stats.spilled_bytes += locator.len as usize;
                    }
                }
            }
        }
        if let Some(state) = &self.durability {
            let wal = state.wal.lock().stats();
            let spill = state.spill.lock().stats();
            stats.durability = Some(DurabilityStats {
                wal_records: wal.records,
                wal_syncs: wal.syncs,
                wal_appended_bytes: wal.appended_bytes,
                spill_entries: spill.entries_written,
                spill_bytes_written: spill.bytes_written,
                spill_reads: spill.reads,
            });
        }
        stats
    }

    fn shard(&self, id: SessionId) -> &Shard {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>> {
        self.shard(id)
            .read()
            .get(&id)
            .cloned()
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Lifts a spilled slot back into the hibernated tier (one positioned
    /// segment read, checksum re-verified) and returns the materialized
    /// session. The wake itself appends nothing to the WAL: the session's
    /// replay state is unchanged — which tier held it is a RAM detail the
    /// log only learns about at the next answer/question/spill.
    fn materialize<'a>(
        &self,
        universe: &Arc<Universe>,
        guard: &'a mut Slot,
    ) -> Result<&'a mut OwnedSession> {
        if let Tier::Spilled { locator, .. } = guard.tier {
            let state = self
                .durability
                .as_ref()
                .expect("spilled tier only exists under a durability tier");
            let payload = state.spill.lock().read(locator)?;
            guard.tier = Tier::Hibernated {
                history: payload.history,
                pending: payload.pending,
            };
        }
        Ok(guard.session(universe))
    }

    /// Runs `f` on the materialized session, holding only that session's
    /// mutex. The shard lock is released before `f` runs, so slow strategy
    /// work never blocks unrelated lookups. Counts as a touch: the idle
    /// clock resets, and a hibernated or spilled session is
    /// re-materialized first.
    fn with_session<T>(&self, id: SessionId, f: impl FnOnce(&mut OwnedSession) -> T) -> Result<T> {
        let serving = self.serving.read();
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        guard.last_touch = Instant::now();
        Ok(f(self.materialize(&serving.universe, &mut guard)?))
    }

    /// Inserts without logging — recovery's path (the log already
    /// describes these sessions).
    fn insert(&self, id: SessionId, slot: Slot) -> Result<()> {
        self.insert_logged(id, slot, None)
    }

    /// Inserts, appending `record` while the shard write lock is still
    /// held, so the log's Create/Restore/Remove order matches the table's
    /// (a WAL failure unwinds the insert).
    fn insert_logged(&self, id: SessionId, slot: Slot, record: Option<&WalRecord>) -> Result<()> {
        use std::collections::hash_map::Entry;
        let mut shard = self.shard(id).write();
        match shard.entry(id) {
            Entry::Occupied(_) => Err(ServerError::SessionExists(id)),
            Entry::Vacant(e) => {
                e.insert(Arc::new(Mutex::new(slot)));
                if let (Some(state), Some(record)) = (&self.durability, record) {
                    if let Err(err) = state.log(record) {
                        shard.remove(&id);
                        return Err(err);
                    }
                }
                Ok(())
            }
        }
    }

    /// Starts a fresh session with the given strategy; returns its id.
    ///
    /// Durable managers append a `Create` record before the id is handed
    /// out, while the shard lock is still held — a WAL failure unwinds
    /// the insert and surfaces as [`ServerError::Durability`], so no
    /// session the caller ever saw is missing from the log.
    pub fn create_session(&self, strategy: StrategyConfig) -> Result<SessionId> {
        use std::collections::hash_map::Entry;
        let serving = self.serving.read();
        let session = OwnedSession::with_config(Arc::clone(&serving.universe), &strategy);
        let slot = Arc::new(Mutex::new(Slot::resident(strategy.clone(), session)));
        // A concurrent restore() may race a stale snapshot onto the id the
        // counter just handed out (its fetch_max lands after our
        // fetch_add); skip to the next id instead of clobbering either
        // session.
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let mut shard = self.shard(id).write();
            if let Entry::Vacant(e) = shard.entry(id) {
                e.insert(Arc::clone(&slot));
                if let Some(state) = &self.durability {
                    if let Err(e) = state.log(&WalRecord::Create {
                        id,
                        strategy: strategy.clone(),
                    }) {
                        shard.remove(&id);
                        return Err(e);
                    }
                }
                return Ok(id);
            }
        }
    }

    /// The next tuple for the user to label, or `None` when inference is
    /// complete (halt condition Γ).
    ///
    /// Idempotent: while a question is outstanding, re-asking returns the
    /// *same* candidate instead of consuming a strategy step — an
    /// at-least-once task queue can re-deliver freely.
    ///
    /// Durable managers additionally append a `Question` record when a
    /// strategy step selects a **new** candidate (re-delivery appends
    /// nothing), so recovery reproduces outstanding questions exactly.
    pub fn next_question(&self, id: SessionId) -> Result<Option<Candidate>> {
        let serving = self.serving.read();
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        guard.last_touch = Instant::now();
        let session = self.materialize(&serving.universe, &mut guard)?;
        if let Some(pending) = session.pending_candidate() {
            return Ok(Some(pending));
        }
        let candidate = session.next().map_err(ServerError::from)?;
        if let (Some(state), Some(c)) = (&self.durability, &candidate) {
            state.log(&WalRecord::Question { id, class: c.class })?;
        }
        Ok(candidate)
    }

    /// Records one class-addressed answer.
    ///
    /// Answers need not match the outstanding question and may repeat
    /// (agreeing duplicates are no-ops); see
    /// [`jqi_core::session::Session::apply_batch`] for the exact
    /// semantics. Returns `true` if the answer was new information.
    pub fn answer(&self, id: SessionId, class: ClassId, label: Label) -> Result<bool> {
        Ok(self.answer_batch(id, &[(class, label)])? == 1)
    }

    /// Folds a batch of answers into the session under a single lock
    /// acquisition; returns how many were new information.
    ///
    /// Durable managers append one `Answers` record carrying exactly the
    /// history suffix the batch applied — agreeing duplicates are not
    /// re-logged, and a batch that errors mid-way still logs the prefix
    /// it applied, keeping the log aligned with the state. The record is
    /// fsync'd by group commit ([`DurabilityConfig::group_commit_every`])
    /// or the next [`Self::flush_wal`], whichever comes first; a serving
    /// loop calls `flush_wal` once per answer round, so a whole round
    /// across many sessions shares one fsync.
    pub fn answer_batch(&self, id: SessionId, answers: &[(ClassId, Label)]) -> Result<usize> {
        let serving = self.serving.read();
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        guard.last_touch = Instant::now();
        let session = self.materialize(&serving.universe, &mut guard)?;
        let before = session.history().len();
        let applied = session.apply_batch(answers);
        if let Some(state) = &self.durability {
            let suffix = &session.history()[before..];
            if !suffix.is_empty() {
                state.log(&WalRecord::Answers {
                    id,
                    answers: suffix.to_vec(),
                })?;
            }
        }
        applied.map_err(ServerError::from)
    }

    /// Whether the session has nothing left to ask.
    ///
    /// A touch: answering this for a parked session requires the derived
    /// masks (the halt condition is about the informative set), so it
    /// re-materializes — unlike [`Self::interactions`],
    /// [`Self::inferred_predicate`], and [`Self::snapshot`], which serve
    /// parked sessions from the parked payload.
    pub fn is_done(&self, id: SessionId) -> Result<bool> {
        self.with_session(id, |session| session.is_done())
    }

    /// Number of answers recorded so far.
    ///
    /// Served from the parked payload for hibernated sessions — a metrics
    /// loop polling a parked fleet neither wakes sessions nor resets
    /// their idle clocks.
    pub fn interactions(&self, id: SessionId) -> Result<usize> {
        let slot = self.slot(id)?;
        let guard = slot.lock();
        Ok(match &guard.tier {
            Tier::Resident(session) => session.interactions(),
            Tier::Hibernated { history, .. } => history.len(),
            // The locator carries the length so metrics stay off-disk.
            Tier::Spilled { history_len, .. } => *history_len,
        })
    }

    /// The predicate inferred so far — `T(S⁺)`, the most specific
    /// predicate consistent with the answers (usable before completion,
    /// §4.1).
    ///
    /// Not a touch: for a hibernated session, `T(S⁺)` is recomputed
    /// directly from the parked replay log (`Ω ∩ ⋂ sig(positives)`, a few
    /// word-ANDs) instead of re-materializing the whole session.
    pub fn inferred_predicate(&self, id: SessionId) -> Result<BitSet> {
        let serving = self.serving.read();
        let slot = self.slot(id)?;
        let guard = slot.lock();
        let fold = |history: &[(ClassId, Label)]| {
            let mut theta = serving.universe.omega();
            for &(c, label) in history {
                if label == Label::Positive {
                    theta.intersect_with(serving.universe.sig(c));
                }
            }
            theta
        };
        Ok(match &guard.tier {
            Tier::Resident(session) => session.inferred_predicate(),
            Tier::Hibernated { history, .. } => fold(history),
            // Served from the checksummed segment payload without waking
            // — the slot stays spilled.
            Tier::Spilled { locator, .. } => fold(&self.read_spilled(*locator)?.history),
        })
    }

    /// A restartable snapshot of the session: strategy config + label
    /// history. The session keeps running; pair with [`Self::remove`] for
    /// eviction.
    ///
    /// A **hibernated** session is snapshotted straight from its parked
    /// replay log — no re-materialization and no touch — so periodically
    /// persisting a fleet of parked sessions never wakes them. (This is
    /// also why hibernation composes with snapshot-based hand-off: the
    /// parked representation *is* the snapshot payload.)
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot> {
        let serving = self.serving.read();
        let slot = self.slot(id)?;
        let guard = slot.lock();
        let (history, pending) = match &guard.tier {
            Tier::Resident(session) => (session.history().to_vec(), session.pending_class()),
            Tier::Hibernated { history, pending } => (history.clone(), *pending),
            // A spilled session's snapshot is read straight off its
            // segment frame — still no wake, still no touch.
            Tier::Spilled { locator, .. } => {
                let payload = self.read_spilled(*locator)?;
                (payload.history, payload.pending)
            }
        };
        Ok(SessionSnapshot {
            session: id,
            strategy: guard.config.clone(),
            history,
            pending,
            universe: Some(serving.fingerprint),
        })
    }

    /// Reads one spilled payload back through the spill store (slot mutex
    /// already held by the caller — spill after slot is the lock order).
    fn read_spilled(&self, locator: SpillLocator) -> Result<SpillPayload> {
        let state = self
            .durability
            .as_ref()
            .expect("spilled tier only exists under a durability tier");
        Ok(state.spill.lock().read(locator)?)
    }

    /// Rebuilds a snapshotted session under its original id (deterministic
    /// replay, see [`crate::snapshot`]). Future [`Self::create_session`]
    /// ids are bumped past it, so restores and fresh sessions never
    /// collide. Errors if the id is live, the history does not replay, or
    /// the snapshot is stamped with a different universe's fingerprint
    /// ([`ServerError::UniverseMismatch`] — unstamped legacy documents
    /// are accepted and validated by replay alone).
    pub fn restore(&self, snapshot: &SessionSnapshot) -> Result<SessionId> {
        let serving = self.serving.read();
        if let Some(found) = snapshot.universe {
            if found != serving.fingerprint {
                return Err(ServerError::UniverseMismatch {
                    expected: serving.fingerprint,
                    found,
                });
            }
        }
        let id = snapshot.session;
        let session = OwnedSession::replay(
            Arc::clone(&serving.universe),
            &snapshot.strategy,
            &snapshot.history,
            snapshot.pending,
        )?;
        self.insert_logged(
            id,
            Slot::resident(snapshot.strategy.clone(), session),
            Some(&WalRecord::Restore {
                id,
                strategy: snapshot.strategy.clone(),
                history: snapshot.history.clone(),
                pending: snapshot.pending,
            }),
        )?;
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        Ok(id)
    }

    /// Parks every resident session idle for at least `ttl` into the
    /// hibernation tier (derived masks dropped; strategy config + label
    /// history kept; see [`ServerConfig::hibernate_ttl`]). Returns a
    /// [`SweepReport`] with the park count and per-tier byte deltas.
    /// `Duration::ZERO` parks everything — useful for tests and for
    /// draining a manager before hand-off.
    ///
    /// Parked sessions stay fully addressable: the next touch
    /// re-materializes them lazily, and [`Self::snapshot`] serves them
    /// without waking. Sessions busy under another thread's operation are
    /// still swept afterwards — the sweep takes each session mutex in
    /// turn. Durable managers log one `Hibernate` record per park and
    /// share one fsync across the whole pass.
    pub fn hibernate_idle(&self, ttl: Duration) -> Result<SweepReport> {
        let _serving = self.serving.read();
        let mut report = SweepReport::default();
        self.park_idle(ttl, &mut report)?;
        self.commit_wal()?;
        Ok(report)
    }

    fn park_idle(&self, ttl: Duration, report: &mut SweepReport) -> Result<()> {
        for shard in self.shards.iter() {
            let slots: Vec<(SessionId, Arc<Mutex<Slot>>)> = shard
                .read()
                .iter()
                .map(|(&id, slot)| (id, Arc::clone(slot)))
                .collect();
            for (id, slot) in slots {
                let mut guard = slot.lock();
                if guard.last_touch.elapsed() < ttl {
                    continue;
                }
                if let Some((freed, added)) = guard.hibernate() {
                    report.parked += 1;
                    report.resident_bytes_freed += freed;
                    report.hibernated_bytes_added += added;
                    if let Some(state) = &self.durability {
                        state.log(&WalRecord::Hibernate { id })?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Force-parks one session regardless of idle time; returns whether it
    /// was resident. Not a touch.
    pub fn hibernate(&self, id: SessionId) -> Result<bool> {
        let _serving = self.serving.read();
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        let parked = guard.hibernate().is_some();
        if parked {
            if let Some(state) = &self.durability {
                state.log(&WalRecord::Hibernate { id })?;
            }
        }
        Ok(parked)
    }

    /// The periodic maintenance pass the serving loop calls: the TTL park
    /// ([`Self::hibernate_idle`] with the configured
    /// [`ServerConfig::hibernate_ttl`], skipped when none is set), then —
    /// on a durable manager with a
    /// [`DurabilityConfig::resident_watermark_bytes`] — the **spill
    /// pass**: while the fleet's RAM footprint (resident + hibernated
    /// bytes) exceeds the watermark, parked sessions spill oldest-idle
    /// first to the segment files, leaving a ~16-byte locator each. Each
    /// spilled payload is fsynced before its `Spill` record is framed
    /// (so a committed locator never points at unsynced bytes); one WAL
    /// fsync covers the whole pass.
    pub fn sweep(&self) -> Result<SweepReport> {
        let _serving = self.serving.read();
        let mut report = SweepReport::default();
        if let Some(ttl) = self.config.hibernate_ttl {
            self.park_idle(ttl, &mut report)?;
        }
        self.spill_to_watermark(&mut report)?;
        self.commit_wal()?;
        Ok(report)
    }

    fn spill_to_watermark(&self, report: &mut SweepReport) -> Result<()> {
        let Some(state) = &self.durability else {
            return Ok(());
        };
        let Some(watermark) = state.config.resident_watermark_bytes else {
            return Ok(());
        };
        // One metering pass: total RAM footprint + the parked candidates
        // (oldest idle first — the sessions least likely to wake soon).
        let mut total = 0usize;
        let mut candidates: Vec<(Instant, SessionId, Arc<Mutex<Slot>>)> = Vec::new();
        for shard in self.shards.iter() {
            let slots: Vec<(SessionId, Arc<Mutex<Slot>>)> = shard
                .read()
                .iter()
                .map(|(&id, slot)| (id, Arc::clone(slot)))
                .collect();
            for (id, slot) in slots {
                let guard = slot.lock();
                match &guard.tier {
                    Tier::Resident(session) => total += session.resident_bytes(),
                    Tier::Hibernated { history, .. } => {
                        total += Slot::hibernated_bytes(history);
                        candidates.push((guard.last_touch, id, Arc::clone(&slot)));
                    }
                    Tier::Spilled { .. } => {}
                }
            }
        }
        candidates.sort_by_key(|&(touch, _, _)| touch);
        for (_, id, slot) in candidates {
            if total <= watermark {
                break;
            }
            let mut guard = slot.lock();
            // Re-check under the lock: the session may have woken (or
            // been spilled by a racing sweep) since the metering pass.
            let Tier::Hibernated { history, pending } = &guard.tier else {
                continue;
            };
            let payload = SpillPayload {
                id,
                strategy: guard.config.clone(),
                history: history.clone(),
                pending: *pending,
            };
            let freed = Slot::hibernated_bytes(history);
            let locator = {
                let mut spill = state.spill.lock();
                let locator = spill
                    .append(&payload)
                    .map_err(|e| ServerError::Durability(DurabilityError::Io(e.to_string())))?;
                // The payload must be durable before its locator can reach
                // the log: `Wal::append` group-commits on its own schedule
                // (this pass's quota, or a concurrent answer's), so the
                // Spill record below may be written *and fsynced* at any
                // moment after it is framed. Syncing here — per entry, not
                // once after the loop — keeps the invariant that a
                // committed Spill record always points at synced bytes, on
                // power loss as well as process death. (`sync` is a no-op
                // when nothing is unsynced, so back-to-back spills into
                // one segment cost one fsync each, never more.)
                spill
                    .sync()
                    .map_err(|e| ServerError::Durability(DurabilityError::Io(e.to_string())))?;
                locator
            };
            // The Spill record is appended while the session mutex is
            // still held, so no post-wake Answers record can slip in
            // front of it.
            state.log(&WalRecord::Spill {
                id,
                segment: locator.segment,
                offset: locator.offset,
                len: locator.len,
            })?;
            guard.tier = Tier::Spilled {
                locator,
                history_len: payload.history.len(),
            };
            report.spilled += 1;
            report.hibernated_bytes_freed += freed;
            report.spilled_bytes_written += locator.len as usize;
            total -= freed;
        }
        Ok(())
    }

    /// Forces an fsync of all WAL records appended so far (a no-op on a
    /// non-durable manager or a clean log). The serving loop calls this
    /// once per answer round: together with group commit it bounds the
    /// window of acknowledged-but-unsynced work.
    pub fn flush_wal(&self) -> Result<()> {
        let _serving = self.serving.read();
        self.commit_wal()
    }

    /// [`Self::flush_wal`] without the serving guard — the shared body,
    /// also called from paths that already hold the serving lock (the
    /// sweeps, and `migrate` under the write half).
    fn commit_wal(&self) -> Result<()> {
        if let Some(state) = &self.durability {
            state
                .wal
                .lock()
                .commit()
                .map_err(|e| ServerError::Durability(DurabilityError::Io(e.to_string())))?;
        }
        Ok(())
    }

    /// Applies a live-data edit script to the serving universe and
    /// migrates the whole fleet onto the result.
    ///
    /// The new universe is derived by [`Universe::apply_delta`] —
    /// incremental maintenance in O(Δ), not a rebuild — so this is the
    /// cheap path for row-level churn; see [`Self::migrate`] for what
    /// happens to the sessions. Requires a universe built with live
    /// tables ([`jqi_core::Universe::build_streaming_live`] or a prior
    /// delta), else [`ServerError::Delta`].
    pub fn apply_delta(&self, delta: &UniverseDelta) -> Result<MigrationReport> {
        let mut serving = self.serving.write();
        let next = serving
            .universe
            .apply_delta(delta)
            .map_err(ServerError::Delta)?;
        self.migrate_locked(&mut serving, Arc::new(next))
    }

    /// Swaps the serving universe and re-validates **every** open session
    /// against it, atomically with respect to all other operations (the
    /// serving lock's write half quiesces the fleet first).
    ///
    /// Per session: a resident one rebinds through
    /// [`OwnedSession::rebind`] — masks carry over verbatim when the
    /// class structure is unchanged (count-only deltas, O(masks)),
    /// otherwise its history is remapped by class signature and replayed;
    /// parked (hibernated/spilled) ones have their replay logs remapped
    /// the same way and are re-validated by a full replay. Labels whose
    /// class vanished are dropped (consistency only widens); a session
    /// whose remapped history no longer replays is removed and reported
    /// in [`MigrationReport::invalidated`] — loudly, never served wrong.
    ///
    /// On a durable manager the WAL is **reset** to the new universe's
    /// fingerprint and the surviving fleet is re-logged as one `Restore`
    /// checkpoint; pre-migration durable state (including spill segments)
    /// is abandoned, and recovering from a pre-migration log fails with
    /// an explicit epoch/fingerprint mismatch. If the reset itself fails
    /// the in-RAM fleet is already consistent on the new universe, but
    /// the log must be considered unusable until the next successful
    /// migration or a fresh durability directory.
    pub fn migrate(&self, universe: Arc<Universe>) -> Result<MigrationReport> {
        let mut serving = self.serving.write();
        self.migrate_locked(&mut serving, universe)
    }

    fn migrate_locked(
        &self,
        serving: &mut Serving,
        universe: Arc<Universe>,
    ) -> Result<MigrationReport> {
        let old = Arc::clone(&serving.universe);
        let mut report = MigrationReport {
            from_epoch: old.epoch(),
            to_epoch: universe.epoch(),
            ..MigrationReport::default()
        };
        // Remap a parked replay log onto the new universe's class ids by
        // signature, dropping labels of vanished classes.
        let remap = |history: &[(ClassId, Label)], dropped: &mut usize| {
            let mut out = Vec::with_capacity(history.len());
            for &(c, label) in history {
                match universe.class_for_signature(old.sig(c)) {
                    Some(nc) => out.push((nc, label)),
                    None => *dropped += 1,
                }
            }
            out
        };
        let mut doomed: Vec<SessionId> = Vec::new();
        for shard in self.shards.iter() {
            let slots: Vec<(SessionId, Arc<Mutex<Slot>>)> = shard
                .read()
                .iter()
                .map(|(&id, slot)| (id, Arc::clone(slot)))
                .collect();
            for (id, slot) in slots {
                let mut guard = slot.lock();
                report.sessions += 1;
                // Lift a spilled slot into RAM first: its segment home is
                // abandoned by the log reset below.
                if let Tier::Spilled { locator, .. } = guard.tier {
                    let state = self
                        .durability
                        .as_ref()
                        .expect("spilled tier only exists under a durability tier");
                    let payload = state.spill.lock().read(locator)?;
                    guard.tier = Tier::Hibernated {
                        history: payload.history,
                        pending: payload.pending,
                    };
                }
                let slot_ref: &mut Slot = &mut guard;
                match &mut slot_ref.tier {
                    Tier::Resident(session) => {
                        match session.rebind(Arc::clone(&universe), &slot_ref.config) {
                            Ok(r) => {
                                if r.carried_masks {
                                    report.carried += 1;
                                } else {
                                    report.replayed += 1;
                                }
                                report.dropped_labels += r.dropped_labels;
                            }
                            Err(_) => doomed.push(id),
                        }
                    }
                    Tier::Hibernated { history, pending } => {
                        let remapped = remap(history, &mut report.dropped_labels);
                        let pending =
                            pending.and_then(|c| universe.class_for_signature(old.sig(c)));
                        match OwnedSession::replay(
                            Arc::clone(&universe),
                            &slot_ref.config,
                            &remapped,
                            pending,
                        ) {
                            Ok(session) => {
                                let (mut history, pending) = session.into_replay_parts();
                                history.shrink_to_fit();
                                slot_ref.tier = Tier::Hibernated { history, pending };
                                report.replayed += 1;
                            }
                            Err(_) => doomed.push(id),
                        }
                    }
                    Tier::Spilled { .. } => unreachable!("lifted above"),
                }
            }
        }
        for &id in &doomed {
            self.shard(id).write().remove(&id);
        }
        report.invalidated = doomed;
        // The fleet is consistent on the new universe; serve it before
        // the durable reset so an I/O failure below cannot leave RAM and
        // the serving pointer disagreeing.
        serving.universe = Arc::clone(&universe);
        serving.fingerprint = universe.fingerprint();
        if let Some(state) = &self.durability {
            let io =
                |e: std::io::Error| ServerError::Durability(DurabilityError::Io(e.to_string()));
            state
                .spill
                .lock()
                .restamp(serving.fingerprint)
                .map_err(io)?;
            // Locking slots while holding the WAL mutex inverts the usual
            // order, but the serving write lock has quiesced every path
            // that takes them the other way around.
            let mut wal = state.wal.lock();
            wal.reset(serving.fingerprint).map_err(io)?;
            for shard in self.shards.iter() {
                let slots: Vec<(SessionId, Arc<Mutex<Slot>>)> = shard
                    .read()
                    .iter()
                    .map(|(&id, slot)| (id, Arc::clone(slot)))
                    .collect();
                for (id, slot) in slots {
                    let guard = slot.lock();
                    let (history, pending) = match &guard.tier {
                        Tier::Resident(s) => (s.history().to_vec(), s.pending_class()),
                        Tier::Hibernated { history, pending } => (history.clone(), *pending),
                        Tier::Spilled { .. } => unreachable!("lifted above"),
                    };
                    wal.append(&WalRecord::Restore {
                        id,
                        strategy: guard.config.clone(),
                        history,
                        pending,
                    })
                    .map_err(io)?;
                }
            }
            wal.commit().map_err(io)?;
        }
        Ok(report)
    }

    /// Drops a session. Operations already holding its handle finish
    /// against the detached session; later calls get
    /// [`ServerError::UnknownSession`]. (On a durable manager such
    /// detached operations may append records behind the `Remove` —
    /// recovery tolerates and skips them.)
    pub fn remove(&self, id: SessionId) -> Result<()> {
        let _serving = self.serving.read();
        let mut shard = self.shard(id).write();
        if !shard.contains_key(&id) {
            return Err(ServerError::UnknownSession(id));
        }
        // Log first, delete second (the mirror of insert_logged's unwind):
        // a WAL failure leaves the session live and the Remove unlogged,
        // so the table and the log agree either way — never a removal the
        // caller saw fail that recovery silently honors, nor one that
        // succeeded but recovery resurrects.
        if let Some(state) = &self.durability {
            state.log(&WalRecord::Remove { id })?;
        }
        shard.remove(&id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::flight_hotel;

    fn manager() -> SessionManager {
        SessionManager::new(
            Arc::new(Universe::build(flight_hotel())),
            ServerConfig::default(),
        )
    }

    /// Drives `id` to completion with a goal-predicate oracle.
    fn drive(manager: &SessionManager, id: SessionId, goal: &BitSet) -> BitSet {
        while let Some(q) = manager.next_question(id).unwrap() {
            let label = if goal.is_subset(manager.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            manager.answer(id, q.class, label).unwrap();
        }
        manager.inferred_predicate(id).unwrap()
    }

    #[test]
    fn drives_a_session_to_the_paper_goal() {
        let m = manager();
        let goal = jqi_core::predicate_from_names(
            m.universe().instance(),
            &[("To", "City"), ("Airline", "Discount")],
        )
        .unwrap();
        let id = m.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
        let theta = drive(&m, id, &goal);
        assert_eq!(
            m.universe().instance().predicate_string(&theta),
            "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
        );
        assert!(m.is_done(id).unwrap());
    }

    #[test]
    fn next_question_is_idempotent_while_unanswered() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        let q1 = m.next_question(id).unwrap().unwrap();
        let q2 = m.next_question(id).unwrap().unwrap();
        assert_eq!(q1.class, q2.class);
        assert_eq!(m.interactions(id).unwrap(), 0);
    }

    #[test]
    fn answers_are_idempotent_and_conflicts_are_rejected() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Td).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        assert!(m.answer(id, q.class, Label::Negative).unwrap());
        // A second crowd worker repeating the answer is a no-op…
        assert!(!m.answer(id, q.class, Label::Negative).unwrap());
        assert_eq!(m.interactions(id).unwrap(), 1);
        // …but a contradicting one is an error.
        let e = m.answer(id, q.class, Label::Positive).unwrap_err();
        assert!(matches!(
            e,
            ServerError::Inference(InferenceError::ConflictingLabel { .. })
        ));
    }

    #[test]
    fn out_of_order_batches_supersede_the_outstanding_question() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        // Answers for *other* classes arrive first (async task queue).
        let others: Vec<(ClassId, Label)> = (0..m.universe().num_classes())
            .filter(|&c| c != q.class)
            .take(2)
            .map(|c| (c, Label::Negative))
            .collect();
        let applied = m.answer_batch(id, &others).unwrap();
        assert!(applied >= 1);
        // The session keeps going: either the old question is still open
        // or a fresh one replaced it.
        let _ = m.next_question(id).unwrap();
    }

    #[test]
    fn stats_report_per_session_memory() {
        let m = manager();
        let empty = m.stats();
        assert_eq!(empty.sessions, 0);
        assert_eq!(empty.resident_sessions, 0);
        assert_eq!(empty.hibernated_sessions, 0);
        assert_eq!(empty.state_bytes, 0);
        // The universe's decision cache rides along in the stats.
        assert!(empty.decision_cache.budget_bytes > 0);
        let a = m.create_session(StrategyConfig::Bu).unwrap();
        let b = m.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
        let q = m.next_question(a).unwrap().unwrap();
        m.answer(a, q.class, Label::Negative).unwrap();
        let stats = m.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.resident_sessions, 2);
        // Mask-compressed sessions over the paper's instance are ~100 bytes
        // of derived state each.
        assert!(stats.state_bytes > 0);
        assert!(
            stats.state_bytes_per_session() <= 160.0,
            "session state ballooned: {} bytes/session",
            stats.state_bytes_per_session()
        );
        // The full resident footprint includes the session struct itself.
        assert!(stats.resident_bytes > stats.state_bytes);
        // One answer recorded: history accounting follows.
        assert_eq!(stats.history_bytes, std::mem::size_of::<(ClassId, Label)>());
        // The strategy question above went through the decision cache.
        assert!(stats.decision_cache.hits + stats.decision_cache.misses > 0);
        m.remove(a).unwrap();
        m.remove(b).unwrap();
        assert_eq!(m.stats().sessions, 0);
    }

    #[test]
    fn hibernated_sessions_shrink_and_wake_transparently() {
        let m = manager();
        let goal = jqi_core::predicate_from_names(
            m.universe().instance(),
            &[("To", "City"), ("Airline", "Discount")],
        )
        .unwrap();
        // Drive a few answers, park, and compare against a twin that never
        // hibernates.
        let id = m.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
        let twin = m.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
        for _ in 0..2 {
            let q = m.next_question(id).unwrap().unwrap();
            let label = if goal.is_subset(m.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            m.answer(id, q.class, label).unwrap();
            let qt = m.next_question(twin).unwrap().unwrap();
            assert_eq!(qt.class, q.class, "twin asked a different question");
            m.answer(twin, qt.class, label).unwrap();
        }
        assert!(m.hibernate(id).unwrap());
        assert!(!m.hibernate(id).unwrap(), "second park is a no-op");
        let stats = m.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
        assert_eq!(stats.resident_sessions, 1);
        // The parked footprint is a fraction of the materialized one.
        assert!(
            stats.hibernated_bytes_per_session() * 2.0 <= stats.resident_bytes_per_session(),
            "parked session not at most half the resident footprint: {} vs {}",
            stats.hibernated_bytes_per_session(),
            stats.resident_bytes_per_session()
        );
        // Read-only queries are served from the parked payload without
        // waking: snapshot, interactions, and the inferred predicate.
        let snap = m.snapshot(id).unwrap();
        assert_eq!(snap.history.len(), 2);
        assert_eq!(m.interactions(id).unwrap(), 2);
        assert_eq!(
            m.inferred_predicate(id).unwrap(),
            m.inferred_predicate(twin).unwrap(),
            "parked θ diverges from the resident twin's"
        );
        assert_eq!(
            m.stats().hibernated_sessions,
            1,
            "a read-only query woke the session"
        );
        // The next touch re-materializes lazily and continues exactly like
        // the never-hibernated twin.
        while let Some(q) = m.next_question(id).unwrap() {
            let qt = m.next_question(twin).unwrap().unwrap();
            assert_eq!(qt.class, q.class, "woken session diverged from twin");
            let label = if goal.is_subset(m.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            m.answer(id, q.class, label).unwrap();
            m.answer(twin, qt.class, label).unwrap();
        }
        assert!(m.next_question(twin).unwrap().is_none());
        assert_eq!(
            m.inferred_predicate(id).unwrap(),
            m.inferred_predicate(twin).unwrap()
        );
        assert_eq!(m.stats().hibernated_sessions, 0);
    }

    #[test]
    fn hibernate_idle_respects_ttl_and_sweep_respects_config() {
        let m = manager();
        let a = m.create_session(StrategyConfig::Bu).unwrap();
        let _b = m.create_session(StrategyConfig::Td).unwrap();
        // Nothing has been idle for an hour.
        assert_eq!(
            m.hibernate_idle(Duration::from_secs(3600)).unwrap().parked,
            0
        );
        // A zero TTL parks everything at once, and the report accounts
        // for the RAM it moved between tiers.
        let report = m.hibernate_idle(Duration::ZERO).unwrap();
        assert_eq!(report.parked, 2);
        assert!(report.resident_bytes_freed > report.hibernated_bytes_added);
        assert_eq!(report.spilled, 0);
        assert_eq!(m.stats().hibernated_sessions, 2);
        // Touching one wakes exactly that one.
        let _ = m.next_question(a).unwrap();
        assert_eq!(m.stats().hibernated_sessions, 1);
        // sweep() is a no-op without a configured TTL…
        assert_eq!(m.sweep().unwrap(), SweepReport::default());
        // …and parks idle sessions when one is set.
        let ttl = SessionManager::new(
            m.universe(),
            ServerConfig {
                hibernate_ttl: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        );
        let c = ttl.create_session(StrategyConfig::Bu).unwrap();
        assert_eq!(ttl.sweep().unwrap().parked, 1);
        assert_eq!(ttl.stats().hibernated_sessions, 1);
        let _ = ttl.next_question(c).unwrap();
        assert_eq!(ttl.stats().hibernated_sessions, 0);
    }

    #[test]
    fn pending_question_survives_hibernation() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Td).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        assert!(m.hibernate(id).unwrap());
        // Re-delivery after waking returns the same outstanding question
        // without consuming a strategy step.
        let q2 = m.next_question(id).unwrap().unwrap();
        assert_eq!(q2.class, q.class);
        assert_eq!(m.interactions(id).unwrap(), 0);
    }

    #[test]
    fn unknown_and_removed_sessions_error() {
        let m = manager();
        assert_eq!(
            m.next_question(99).unwrap_err(),
            ServerError::UnknownSession(99)
        );
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        m.remove(id).unwrap();
        assert_eq!(m.remove(id).unwrap_err(), ServerError::UnknownSession(id));
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn restore_preserves_id_and_bumps_allocation() {
        let m = manager();
        let goal =
            jqi_core::predicate_from_names(m.universe().instance(), &[("To", "City")]).unwrap();
        let id = m.create_session(StrategyConfig::Rnd { seed: 5 }).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        let label = if goal.is_subset(m.universe().sig(q.class)) {
            Label::Positive
        } else {
            Label::Negative
        };
        m.answer(id, q.class, label).unwrap();
        let snap = m.snapshot(id).unwrap();

        // Simulate a restart: a brand-new manager restores the snapshot.
        let m2 = SessionManager::new(
            m.universe(),
            ServerConfig {
                shards: 3,
                ..ServerConfig::default()
            },
        );
        let restored = m2.restore(&snap).unwrap();
        assert_eq!(restored, id);
        assert_eq!(m2.interactions(id).unwrap(), 1);
        // Restoring again under a live id collides.
        assert_eq!(
            m2.restore(&snap).unwrap_err(),
            ServerError::SessionExists(id)
        );
        // Fresh ids skip past the restored one.
        let fresh = m2.create_session(StrategyConfig::Bu).unwrap();
        assert!(fresh > id);
        // And both reach the same final predicate as an uninterrupted run.
        let theta_restored = drive(&m2, id, &goal);
        let id3 = m.create_session(StrategyConfig::Rnd { seed: 5 }).unwrap();
        let theta_solo = drive(&m, id3, &goal);
        assert_eq!(theta_restored, theta_solo);
    }

    #[test]
    fn restore_rejects_snapshots_from_a_different_universe() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        let snap = m.snapshot(id).unwrap();
        assert_eq!(snap.universe, Some(m.universe_fingerprint()));

        let other = SessionManager::new(
            Arc::new(Universe::build(jqi_core::paper::example_2_1())),
            ServerConfig::default(),
        );
        let err = other.restore(&snap).unwrap_err();
        assert!(matches!(err, ServerError::UniverseMismatch { .. }));
        // Unstamped (legacy) snapshots still restore unchecked.
        let legacy = SessionSnapshot {
            universe: None,
            ..snap
        };
        assert_eq!(other.restore(&legacy).unwrap(), id);
    }

    // ------------------------------------------------------------------
    // Durability: the manager-level WAL / spill / recover round trips.
    // (Codec-, WAL-, and recovery-level corruption cases live in
    // `durability::*`; crash scripts at full workloads live in
    // `tests/durability_props.rs`.)
    // ------------------------------------------------------------------

    use crate::durability::{MemSegments, MemWal};

    fn durable_pair(
        universe: &Arc<Universe>,
        wal: MemWal,
        segments: MemSegments,
        durability: DurabilityConfig,
    ) -> (SessionManager, RecoveryReport) {
        SessionManager::recover_with_storage(
            Arc::clone(universe),
            ServerConfig::default(),
            durability,
            Box::new(wal),
            Box::new(segments),
        )
        .unwrap()
    }

    #[test]
    fn durable_fleet_survives_a_restart() {
        let universe = Arc::new(Universe::build(flight_hotel()));
        let goal = jqi_core::predicate_from_names(universe.instance(), &[("To", "City")]).unwrap();
        let wal = MemWal::new();
        let segments = MemSegments::new();
        let (m, report) = durable_pair(
            &universe,
            wal.clone(),
            segments.clone(),
            DurabilityConfig::default(),
        );
        assert_eq!(report, RecoveryReport::default());

        // One finished session, one mid-flight with a pending question,
        // one created-then-removed.
        let done = m.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
        let theta = drive(&m, done, &goal);
        let mid = m.create_session(StrategyConfig::Bu).unwrap();
        let q = m.next_question(mid).unwrap().unwrap();
        m.answer(mid, q.class, Label::Negative).unwrap();
        let pending = m.next_question(mid).unwrap().map(|q| q.class);
        let gone = m.create_session(StrategyConfig::Td).unwrap();
        m.remove(gone).unwrap();
        m.flush_wal().unwrap();
        let mid_snap = m.snapshot(mid).unwrap();
        drop(m);

        // "Restart": recover from the durable image alone.
        let (r, report) = durable_pair(
            &universe,
            MemWal::from_bytes(wal.durable_image()),
            segments,
            DurabilityConfig::default(),
        );
        assert_eq!(report.sessions, 2);
        assert_eq!(report.wal_torn_bytes, 0);
        assert_eq!(r.session_count(), 2);
        assert_eq!(r.inferred_predicate(done).unwrap(), theta);
        assert!(r.is_done(done).unwrap());
        assert_eq!(r.snapshot(mid).unwrap().history, mid_snap.history);
        assert_eq!(r.next_question(mid).unwrap().map(|q| q.class), pending);
        assert!(matches!(
            r.next_question(gone).unwrap_err(),
            ServerError::UnknownSession(_)
        ));
        // Recovered ids stay unique: the allocator resumes past them.
        let fresh = r.create_session(StrategyConfig::Bu).unwrap();
        assert!(fresh > mid);
        // And the recovered mid-flight session finishes like a live one.
        let theta_mid = drive(&r, mid, &goal);
        assert_eq!(
            universe.instance().predicate_string(&theta_mid),
            universe.instance().predicate_string(&goal)
        );
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let universe = Arc::new(Universe::build(flight_hotel()));
        let wal = MemWal::new();
        let (m, _) = durable_pair(
            &universe,
            wal.clone(),
            MemSegments::new(),
            DurabilityConfig::default(),
        );
        let a = m.create_session(StrategyConfig::Bu).unwrap();
        let q = m.next_question(a).unwrap().unwrap();
        m.answer(a, q.class, Label::Negative).unwrap();
        let _b = m.create_session(StrategyConfig::Td).unwrap();
        m.flush_wal().unwrap();
        drop(m);

        // Chop mid-frame through the last record — the torn tail an
        // interrupted append leaves behind.
        let mut image = wal.durable_image();
        image.truncate(image.len() - 3);
        let (r, report) = durable_pair(
            &universe,
            MemWal::from_bytes(image),
            MemSegments::new(),
            DurabilityConfig::default(),
        );
        assert!(report.wal_torn_bytes > 0);
        // Session `a` (fully before the tear) survives with its answer.
        assert_eq!(r.interactions(a).unwrap(), 1);
    }

    #[test]
    fn sweep_spills_past_the_watermark_and_recovery_restores_the_spilled_tier() {
        let universe = Arc::new(Universe::build(flight_hotel()));
        let goal = jqi_core::predicate_from_names(universe.instance(), &[("To", "City")]).unwrap();
        let wal = MemWal::new();
        let segments = MemSegments::new();
        let durability = DurabilityConfig {
            resident_watermark_bytes: Some(0),
            segment_max_bytes: 256, // force rotation across several spills
            ..DurabilityConfig::default()
        };
        let (m, _) = durable_pair(&universe, wal.clone(), segments.clone(), durability.clone());
        let ids: Vec<SessionId> = (0..6)
            .map(|i| {
                let id = m
                    .create_session(if i % 2 == 0 {
                        StrategyConfig::Bu
                    } else {
                        StrategyConfig::Td
                    })
                    .unwrap();
                let q = m.next_question(id).unwrap().unwrap();
                m.answer(id, q.class, Label::Negative).unwrap();
                id
            })
            .collect();
        let theta0 = m.inferred_predicate(ids[0]).unwrap();

        // Park everything, then sweep against a zero watermark: every
        // parked session must leave RAM for the segment files.
        let parked = m.hibernate_idle(Duration::ZERO).unwrap();
        assert_eq!(parked.parked, ids.len());
        let swept = m.sweep().unwrap();
        assert_eq!(swept.spilled, ids.len());
        assert!(swept.hibernated_bytes_freed > 0);
        assert!(swept.spilled_bytes_written > 0);
        let stats = m.stats();
        assert_eq!(stats.spilled_sessions, ids.len());
        assert_eq!(stats.hibernated_sessions, 0);
        let d = stats.durability.unwrap();
        assert_eq!(d.spill_entries, ids.len() as u64);
        assert!(d.wal_records >= 3 * ids.len() as u64);

        // Read-only serves answer from disk without re-admitting the
        // session to RAM…
        assert_eq!(m.inferred_predicate(ids[0]).unwrap(), theta0);
        assert_eq!(m.interactions(ids[1]).unwrap(), 1);
        let snap = m.snapshot(ids[2]).unwrap();
        assert_eq!(snap.history.len(), 1);
        assert_eq!(m.stats().spilled_sessions, ids.len());
        // …while a mutating touch wakes it for real.
        let _ = m.next_question(ids[3]).unwrap();
        assert_eq!(m.stats().spilled_sessions, ids.len() - 1);
        m.flush_wal().unwrap();
        drop(m);

        // Recovery keeps cold sessions cold: the spilled stay spilled.
        let (r, report) = durable_pair(
            &universe,
            MemWal::from_bytes(wal.durable_image()),
            segments,
            durability,
        );
        assert_eq!(report.sessions, ids.len());
        assert_eq!(report.spilled, ids.len() - 1);
        assert_eq!(report.hibernated, 1);
        assert_eq!(r.stats().spilled_sessions, ids.len() - 1);
        // Every session — spilled or not — still finishes correctly.
        for &id in &ids {
            drive(&r, id, &goal);
            assert!(r.is_done(id).unwrap());
        }
    }

    #[test]
    fn recovery_refuses_a_wal_from_another_universe() {
        let flight = Arc::new(Universe::build(flight_hotel()));
        let wal = MemWal::new();
        let (m, _) = durable_pair(
            &flight,
            wal.clone(),
            MemSegments::new(),
            DurabilityConfig::default(),
        );
        m.create_session(StrategyConfig::Bu).unwrap();
        m.flush_wal().unwrap();
        drop(m);

        let other = Arc::new(Universe::build(jqi_core::paper::example_2_1()));
        let err = SessionManager::recover_with_storage(
            other,
            ServerConfig::default(),
            DurabilityConfig::default(),
            Box::new(MemWal::from_bytes(wal.durable_image())),
            Box::new(MemSegments::new()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::FingerprintMismatch {
                source: "wal header",
                ..
            }
        ));
    }

    #[test]
    fn group_commit_defers_fsyncs_but_flush_is_immediate() {
        let universe = Arc::new(Universe::build(flight_hotel()));
        let wal = MemWal::new();
        let (m, _) = durable_pair(
            &universe,
            wal.clone(),
            MemSegments::new(),
            DurabilityConfig {
                group_commit_every: 1000,
                ..DurabilityConfig::default()
            },
        );
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        m.answer(id, q.class, Label::Negative).unwrap();
        let before = m.stats().durability.unwrap();
        assert_eq!(before.wal_syncs, 0, "group quota of 1000 never reached");
        m.flush_wal().unwrap();
        let after = m.stats().durability.unwrap();
        assert_eq!(after.wal_syncs, 1);
        assert!(after.wal_records >= 3);
        // The durable image now contains everything the pristine one does.
        assert_eq!(wal.durable_image(), wal.pristine_image());
    }

    // ------------------------------------------------------------------
    // Live-data migration: apply_delta / migrate over the session fleet.
    // ------------------------------------------------------------------

    use jqi_relation::{RowChunk, Side, StreamSchema, Tuple, Value};

    /// A delta-capable universe: R(A1,A2) × P(B1), shared symbols {1, 2},
    /// two classes (signatures {A1=B1} and {}).
    fn live_universe() -> Arc<Universe> {
        let schema = StreamSchema::from_names("R", &["A1", "A2"], "P", &["B1"]).unwrap();
        let r_rows: [[i64; 2]; 4] = [[1, 100], [2, 101], [1, 102], [3, 103]];
        let p_rows: [[i64; 1]; 4] = [[1], [2], [1], [4]];
        let chunks = vec![
            RowChunk {
                side: Side::R,
                rows: r_rows
                    .iter()
                    .map(|r| {
                        schema
                            .intern_row(Side::R, &[Value::int(r[0]), Value::int(r[1])])
                            .unwrap()
                    })
                    .collect(),
            },
            RowChunk {
                side: Side::P,
                rows: p_rows
                    .iter()
                    .map(|p| schema.intern_row(Side::P, &[Value::int(p[0])]).unwrap())
                    .collect(),
            },
        ];
        let (u, _) = Universe::build_streaming_live(schema, || chunks.clone().into_iter(), 1);
        Arc::new(u)
    }

    fn row(u: &Universe, values: &[i64]) -> Tuple {
        let vals: Vec<Value> = values.iter().map(|&v| Value::int(v)).collect();
        Tuple::intern(u.instance().interner(), &vals)
    }

    #[test]
    fn apply_delta_carries_sessions_over_count_only_edits() {
        let u = live_universe();
        let m = SessionManager::new(Arc::clone(&u), ServerConfig::default());
        let id = m.create_session(StrategyConfig::Td).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        m.answer(id, q.class, Label::Negative).unwrap();
        let pre = m.snapshot(id).unwrap();
        let old_fp = m.universe_fingerprint();

        // Duplicate an existing row: weights change, classes do not.
        let mut d = UniverseDelta::new();
        d.insert(Side::R, row(&u, &[1, 100]));
        let report = m.apply_delta(&d).unwrap();
        assert_eq!(report.sessions, 1);
        assert_eq!(report.carried, 1, "count-only deltas carry masks verbatim");
        assert_eq!(report.replayed, 0);
        assert_eq!(report.dropped_labels, 0);
        assert!(report.invalidated.is_empty());
        assert_eq!((report.from_epoch, report.to_epoch), (0, 1));
        assert_ne!(m.universe_fingerprint(), old_fp);
        assert_eq!(m.universe().epoch(), 1);
        // The label survived and the session still drives to completion.
        assert_eq!(m.interactions(id).unwrap(), 1);
        while let Some(q) = m.next_question(id).unwrap() {
            m.answer(id, q.class, Label::Negative).unwrap();
        }
        assert!(m.is_done(id).unwrap());
        // A pre-delta snapshot is now another universe's snapshot.
        assert!(matches!(
            m.restore(&SessionSnapshot {
                session: 999,
                ..pre
            })
            .unwrap_err(),
            ServerError::UniverseMismatch { .. }
        ));
    }

    #[test]
    fn apply_delta_replays_sessions_over_structural_edits_without_waking_parked_ones() {
        let u = live_universe();
        let m = SessionManager::new(Arc::clone(&u), ServerConfig::default());
        let resident = m.create_session(StrategyConfig::Td).unwrap();
        let parked = m.create_session(StrategyConfig::Td).unwrap();
        for &id in &[resident, parked] {
            let q = m.next_question(id).unwrap().unwrap();
            m.answer(id, q.class, Label::Negative).unwrap();
        }
        assert!(m.hibernate(parked).unwrap());

        // A new symbol combination births a class: [1,1] meets P row [1]
        // on both attributes (signature {A1=B1, A2=B1}).
        let mut d = UniverseDelta::new();
        d.insert(Side::R, row(&u, &[1, 1]));
        let report = m.apply_delta(&d).unwrap();
        assert_eq!(report.sessions, 2);
        assert_eq!(report.carried, 0);
        assert_eq!(report.replayed, 2);
        assert!(report.invalidated.is_empty());
        assert_eq!(
            m.stats().hibernated_sessions,
            1,
            "migration re-parks parked sessions instead of waking them"
        );
        // Both sessions keep their answer and finish on the new universe.
        for &id in &[resident, parked] {
            assert_eq!(m.interactions(id).unwrap(), 1);
            while let Some(q) = m.next_question(id).unwrap() {
                m.answer(id, q.class, Label::Negative).unwrap();
            }
            assert!(m.is_done(id).unwrap());
        }
    }

    #[test]
    fn apply_delta_requires_a_live_universe_and_validates_rows() {
        // A plain streaming build keeps representatives only — it cannot
        // accept deltas (unlike `Universe::build`, which retains the full
        // instance, and `build_streaming_live`, which keeps row tables).
        let schema = StreamSchema::from_names("R", &["A1"], "P", &["B1"]).unwrap();
        let chunk = RowChunk {
            side: Side::R,
            rows: vec![schema.intern_row(Side::R, &[Value::int(1)]).unwrap()],
        };
        let (reps_only, _) =
            Universe::build_streaming(schema, || std::iter::once(chunk.clone()), 1);
        let m = SessionManager::new(Arc::new(reps_only), ServerConfig::default());
        let mut d = UniverseDelta::new();
        d.insert(
            Side::R,
            Tuple::intern(m.universe().instance().interner(), &[Value::int(2)]),
        );
        assert!(matches!(
            m.apply_delta(&d).unwrap_err(),
            ServerError::Delta(DeltaError::NotLive)
        ));

        let live = live_universe();
        let lm = SessionManager::new(Arc::clone(&live), ServerConfig::default());
        let mut bad = UniverseDelta::new();
        bad.insert(Side::R, row(&live, &[7])); // arity 1 into a 2-ary side
        assert!(matches!(
            lm.apply_delta(&bad).unwrap_err(),
            ServerError::Delta(DeltaError::ArityMismatch { .. })
        ));
        // A rejected delta leaves the serving universe untouched.
        assert_eq!(lm.universe_fingerprint(), live.fingerprint());
    }

    #[test]
    fn migrate_swaps_an_unrelated_universe_and_keeps_serving() {
        let u = live_universe();
        let m = SessionManager::new(Arc::clone(&u), ServerConfig::default());
        let id = m.create_session(StrategyConfig::Bu).unwrap();
        let q = m.next_question(id).unwrap().unwrap();
        m.answer(id, q.class, Label::Negative).unwrap();

        let next = Arc::new(Universe::build(flight_hotel()));
        let report = m.migrate(Arc::clone(&next)).unwrap();
        assert_eq!(report.sessions, 1);
        assert!(report.invalidated.is_empty());
        assert_eq!(m.universe_fingerprint(), next.fingerprint());
        // The session is served on the new universe; any label whose
        // class has no signature-equal counterpart was dropped, not
        // silently misapplied.
        assert!(m.interactions(id).unwrap() + report.dropped_labels <= 1);
        let _ = m.next_question(id).unwrap();
    }

    #[test]
    fn durable_migration_resets_the_log_and_recovers_on_the_new_universe() {
        let u = live_universe();
        let wal = MemWal::new();
        let segments = MemSegments::new();
        let (m, _) = durable_pair(
            &u,
            wal.clone(),
            segments.clone(),
            DurabilityConfig::default(),
        );
        let a = m.create_session(StrategyConfig::Td).unwrap();
        let b = m.create_session(StrategyConfig::Bu).unwrap();
        for &id in &[a, b] {
            let q = m.next_question(id).unwrap().unwrap();
            m.answer(id, q.class, Label::Negative).unwrap();
        }
        assert!(m.hibernate(b).unwrap());
        let mut d = UniverseDelta::new();
        d.insert(Side::R, row(&u, &[1, 1]));
        let report = m.apply_delta(&d).unwrap();
        assert_eq!(report.sessions, 2);
        let migrated = m.universe();
        m.flush_wal().unwrap();
        drop(m);

        // Recovery against the migrated universe finds the checkpointed
        // fleet…
        let (r, rec) = durable_pair(
            &migrated,
            MemWal::from_bytes(wal.durable_image()),
            segments.clone(),
            DurabilityConfig::default(),
        );
        assert_eq!(rec.sessions, 2);
        assert_eq!(r.interactions(a).unwrap(), 1);
        assert_eq!(r.interactions(b).unwrap(), 1);
        drop(r);
        // …and the pre-delta universe is refused loudly.
        let err = SessionManager::recover_with_storage(
            Arc::clone(&u),
            ServerConfig::default(),
            DurabilityConfig::default(),
            Box::new(MemWal::from_bytes(wal.durable_image())),
            Box::new(segments),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::FingerprintMismatch {
                source: "wal header",
                ..
            }
        ));
    }

    #[test]
    fn recovery_names_a_stale_epoch_explicitly() {
        let u0 = live_universe();
        let wal = MemWal::new();
        let (m, _) = durable_pair(
            &u0,
            wal.clone(),
            MemSegments::new(),
            DurabilityConfig::default(),
        );
        m.create_session(StrategyConfig::Bu).unwrap();
        m.flush_wal().unwrap();
        drop(m);

        // A net-zero delta: same content, bumped epoch — the fingerprint
        // changes but the data does not, which is exactly the confusing
        // case the explicit error exists for.
        let mut d = UniverseDelta::new();
        let dup = row(&u0, &[1, 100]);
        d.insert(Side::R, dup.clone());
        d.delete(Side::R, dup);
        let u1 = Arc::new(u0.apply_delta(&d).unwrap());
        assert_eq!(u1.content_fingerprint(), u0.content_fingerprint());
        assert_ne!(u1.fingerprint(), u0.fingerprint());

        let err = SessionManager::recover_with_storage(
            Arc::clone(&u1),
            ServerConfig::default(),
            DurabilityConfig::default(),
            Box::new(MemWal::from_bytes(wal.durable_image())),
            Box::new(MemSegments::new()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::StaleEpoch {
                source: "wal header",
                found_epoch: 0,
                serving_epoch: 1,
            }
        ));
    }

    #[test]
    fn wal_failures_unwind_create_and_leave_removed_sessions_live() {
        let universe = Arc::new(Universe::build(flight_hotel()));
        let wal = MemWal::new();
        let (m, _) = durable_pair(
            &universe,
            wal.clone(),
            MemSegments::new(),
            // Per-record commits: every append hits the storage at once,
            // so the injected failure fires inside the logging call.
            DurabilityConfig {
                group_commit_every: 1,
                ..DurabilityConfig::default()
            },
        );
        let keep = m.create_session(StrategyConfig::Bu).unwrap();
        wal.set_io_failing(true);
        // A create whose record cannot be logged is unwound: the caller
        // gets the error and no session.
        assert!(matches!(
            m.create_session(StrategyConfig::Td),
            Err(ServerError::Durability(_))
        ));
        assert_eq!(m.session_count(), 1);
        // A remove whose record cannot be logged leaves the session live —
        // the table never runs ahead of the log.
        assert!(matches!(m.remove(keep), Err(ServerError::Durability(_))));
        assert_eq!(m.session_count(), 1);
        assert_eq!(m.interactions(keep).unwrap(), 0);
        wal.set_io_failing(false);
        m.flush_wal().unwrap();
        drop(m);

        // Recovery agrees with what the callers were told: `keep` exists,
        // the failed create left no phantom, the failed remove removed
        // nothing.
        let (r, report) = durable_pair(
            &universe,
            MemWal::from_bytes(wal.durable_image()),
            MemSegments::new(),
            DurabilityConfig::default(),
        );
        assert_eq!(report.sessions, 1);
        assert_eq!(r.session_count(), 1);
        assert_eq!(r.interactions(keep).unwrap(), 0);
    }
}
