//! The sharded, thread-safe session table.
//!
//! One [`SessionManager`] owns a shared immutable [`Universe`] behind an
//! [`Arc`] and serves any number of concurrent inference sessions over it.
//! Sessions are spread over `N` shards by `id % N`; each shard is a
//! [`parking_lot::RwLock`] around a `HashMap<SessionId, Arc<Mutex<…>>>`:
//!
//! * **shard locks** are held only for table lookups, inserts, and removals
//!   (microseconds), never across strategy computation — creating or
//!   dropping a session stalls at most `1/N` of the lookups;
//! * **per-session mutexes** serialize the operations of one session, so
//!   answers for the *same* session arriving from several threads are
//!   applied in some total order, while sessions on different mutexes
//!   (even in the same shard) proceed fully in parallel.
//!
//! Answers are class-addressed and go through the session's batch path
//! ([`jqi_core::session::Session::apply_batch`]): they may arrive out of
//! order relative to the questions asked, in batches folded into the
//! inference state under a single lock acquisition, and duplicated by
//! concurrent workers (agreeing duplicates are idempotent; contradictions
//! surface as [`InferenceError::ConflictingLabel`]).

use crate::snapshot::SessionSnapshot;
use jqi_core::session::{Candidate, OwnedSession};
use jqi_core::{ClassId, InferenceError, Label, StrategyConfig, Universe};
use jqi_relation::BitSet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A multiply–xorshift finalizer for the `u64` session ids.
///
/// The session table is probed twice per answered question (question +
/// answer), and std's default SipHash dominates a `u64` lookup; ids are
/// either a trusted counter or snapshot-restored values, so a keyed hash
/// buys nothing here. The finalizer is the 64-bit murmur mix — full
/// avalanche, so sequential ids spread over the buckets.
#[derive(Default)]
struct SessionIdHasher(u64);

impl Hasher for SessionIdHasher {
    #[inline]
    fn write_u64(&mut self, id: u64) {
        let mut h = id;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.0 = h;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Sessions ids hash through write_u64; keep a correct fallback.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identifier of a session within one [`SessionManager`].
pub type SessionId = u64;

/// Configuration of a [`SessionManager`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards the session table is split into. More shards mean
    /// less create/remove contention; lookups are O(1) either way.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { shards: 16 }
    }
}

/// Errors surfaced by the session service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// No session with this id (never created, or already removed).
    UnknownSession(SessionId),
    /// A restore collided with a live session carrying the same id.
    SessionExists(SessionId),
    /// An inference-level failure (inconsistent labels, conflicting
    /// duplicate answers, out-of-range classes, …).
    Inference(InferenceError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::SessionExists(id) => write!(f, "session {id} already exists"),
            ServerError::Inference(e) => write!(f, "inference error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InferenceError> for ServerError {
    fn from(e: InferenceError) -> Self {
        ServerError::Inference(e)
    }
}

/// Convenience alias for service results.
pub type Result<T> = std::result::Result<T, ServerError>;

/// One live session plus the config needed to snapshot it.
struct Slot {
    session: OwnedSession,
    config: StrategyConfig,
}

/// Aggregate per-session memory statistics of a [`SessionManager`] — see
/// [`SessionManager::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live sessions at sampling time.
    pub sessions: usize,
    /// Total resident bytes of derived inference state across sessions.
    pub state_bytes: usize,
    /// Total bytes of label history (the replay log) across sessions.
    pub history_bytes: usize,
}

impl ManagerStats {
    /// Mean derived-state bytes per live session (0 when empty).
    pub fn state_bytes_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.state_bytes as f64 / self.sessions as f64
        }
    }
}

type Shard = RwLock<HashMap<SessionId, Arc<Mutex<Slot>>, BuildHasherDefault<SessionIdHasher>>>;

/// A thread-safe, multi-session inference service over one shared universe.
///
/// See the [module docs](self) for the locking discipline. All methods take
/// `&self`; the manager is meant to live in an `Arc` shared by every worker
/// thread of a server.
pub struct SessionManager {
    universe: Arc<Universe>,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("shards", &self.shards.len())
            .field("sessions", &self.session_count())
            .field("next_id", &self.next_id.load(Ordering::Relaxed))
            .finish()
    }
}

impl SessionManager {
    /// Creates a manager serving sessions over `universe`.
    pub fn new(universe: Arc<Universe>, config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        SessionManager {
            universe,
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            next_id: AtomicU64::new(0),
        }
    }

    /// The shared universe all sessions run over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Aggregate per-session resident-memory statistics (one pass over the
    /// session table, locking each session briefly), so footprint
    /// regressions are visible in server stats and bench output.
    ///
    /// `state_bytes` sums the mask-compressed derived inference state of
    /// every live session ([`jqi_core::InferenceState::state_bytes`]);
    /// `history_bytes` sums the replay logs (what snapshots persist,
    /// proportional to answers given). The shared universe is excluded —
    /// it is paid once per process, not per session.
    pub fn stats(&self) -> ManagerStats {
        let mut stats = ManagerStats::default();
        for shard in self.shards.iter() {
            // Clone the slot handles out so the shard lock is not held
            // while session mutexes are taken.
            let slots: Vec<Arc<Mutex<Slot>>> = shard.read().values().cloned().collect();
            for slot in slots {
                let guard = slot.lock();
                stats.sessions += 1;
                stats.state_bytes += guard.session.state_bytes();
                stats.history_bytes += std::mem::size_of_val(guard.session.history());
            }
        }
        stats
    }

    fn shard(&self, id: SessionId) -> &Shard {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>> {
        self.shard(id)
            .read()
            .get(&id)
            .cloned()
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Runs `f` on the session, holding only that session's mutex. The
    /// shard lock is released before `f` runs, so slow strategy work never
    /// blocks unrelated lookups.
    fn with_session<T>(&self, id: SessionId, f: impl FnOnce(&mut Slot) -> T) -> Result<T> {
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        Ok(f(&mut guard))
    }

    fn insert(&self, id: SessionId, slot: Slot) -> Result<()> {
        use std::collections::hash_map::Entry;
        match self.shard(id).write().entry(id) {
            Entry::Occupied(_) => Err(ServerError::SessionExists(id)),
            Entry::Vacant(e) => {
                e.insert(Arc::new(Mutex::new(slot)));
                Ok(())
            }
        }
    }

    /// Starts a fresh session with the given strategy; returns its id.
    pub fn create_session(&self, strategy: StrategyConfig) -> SessionId {
        use std::collections::hash_map::Entry;
        let session = OwnedSession::with_config(Arc::clone(&self.universe), &strategy);
        let slot = Arc::new(Mutex::new(Slot {
            session,
            config: strategy,
        }));
        // A concurrent restore() may race a stale snapshot onto the id the
        // counter just handed out (its fetch_max lands after our
        // fetch_add); skip to the next id instead of clobbering either
        // session.
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            if let Entry::Vacant(e) = self.shard(id).write().entry(id) {
                e.insert(Arc::clone(&slot));
                return id;
            }
        }
    }

    /// The next tuple for the user to label, or `None` when inference is
    /// complete (halt condition Γ).
    ///
    /// Idempotent: while a question is outstanding, re-asking returns the
    /// *same* candidate instead of consuming a strategy step — an
    /// at-least-once task queue can re-deliver freely.
    pub fn next_question(&self, id: SessionId) -> Result<Option<Candidate>> {
        self.with_session(id, |slot| {
            if let Some(pending) = slot.session.pending_candidate() {
                return Ok(Some(pending));
            }
            slot.session.next()
        })?
        .map_err(ServerError::from)
    }

    /// Records one class-addressed answer.
    ///
    /// Answers need not match the outstanding question and may repeat
    /// (agreeing duplicates are no-ops); see
    /// [`jqi_core::session::Session::apply_batch`] for the exact
    /// semantics. Returns `true` if the answer was new information.
    pub fn answer(&self, id: SessionId, class: ClassId, label: Label) -> Result<bool> {
        Ok(self.answer_batch(id, &[(class, label)])? == 1)
    }

    /// Folds a batch of answers into the session under a single lock
    /// acquisition; returns how many were new information.
    pub fn answer_batch(&self, id: SessionId, answers: &[(ClassId, Label)]) -> Result<usize> {
        self.with_session(id, |slot| slot.session.apply_batch(answers))?
            .map_err(ServerError::from)
    }

    /// Whether the session has nothing left to ask.
    pub fn is_done(&self, id: SessionId) -> Result<bool> {
        self.with_session(id, |slot| slot.session.is_done())
    }

    /// Number of answers recorded so far.
    pub fn interactions(&self, id: SessionId) -> Result<usize> {
        self.with_session(id, |slot| slot.session.interactions())
    }

    /// The predicate inferred so far — `T(S⁺)`, the most specific
    /// predicate consistent with the answers (usable before completion,
    /// §4.1).
    pub fn inferred_predicate(&self, id: SessionId) -> Result<BitSet> {
        self.with_session(id, |slot| slot.session.inferred_predicate())
    }

    /// A restartable snapshot of the session: strategy config + label
    /// history. The session keeps running; pair with [`Self::remove`] for
    /// eviction.
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot> {
        self.with_session(id, |slot| SessionSnapshot {
            session: id,
            strategy: slot.config.clone(),
            history: slot.session.history().to_vec(),
            pending: slot.session.pending_class(),
        })
    }

    /// Rebuilds a snapshotted session under its original id (deterministic
    /// replay, see [`crate::snapshot`]). Future [`Self::create_session`]
    /// ids are bumped past it, so restores and fresh sessions never
    /// collide. Errors if the id is live or the history does not replay.
    pub fn restore(&self, snapshot: &SessionSnapshot) -> Result<SessionId> {
        let id = snapshot.session;
        let session = OwnedSession::replay(
            Arc::clone(&self.universe),
            &snapshot.strategy,
            &snapshot.history,
            snapshot.pending,
        )?;
        self.insert(
            id,
            Slot {
                session,
                config: snapshot.strategy.clone(),
            },
        )?;
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        Ok(id)
    }

    /// Drops a session. Operations already holding its handle finish
    /// against the detached session; later calls get
    /// [`ServerError::UnknownSession`].
    pub fn remove(&self, id: SessionId) -> Result<()> {
        self.shard(id)
            .write()
            .remove(&id)
            .map(drop)
            .ok_or(ServerError::UnknownSession(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::flight_hotel;

    fn manager() -> SessionManager {
        SessionManager::new(
            Arc::new(Universe::build(flight_hotel())),
            ServerConfig::default(),
        )
    }

    /// Drives `id` to completion with a goal-predicate oracle.
    fn drive(manager: &SessionManager, id: SessionId, goal: &BitSet) -> BitSet {
        while let Some(q) = manager.next_question(id).unwrap() {
            let label = if goal.is_subset(manager.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            manager.answer(id, q.class, label).unwrap();
        }
        manager.inferred_predicate(id).unwrap()
    }

    #[test]
    fn drives_a_session_to_the_paper_goal() {
        let m = manager();
        let goal = jqi_core::predicate_from_names(
            m.universe().instance(),
            &[("To", "City"), ("Airline", "Discount")],
        )
        .unwrap();
        let id = m.create_session(StrategyConfig::Lks { depth: 2 });
        let theta = drive(&m, id, &goal);
        assert_eq!(
            m.universe().instance().predicate_string(&theta),
            "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
        );
        assert!(m.is_done(id).unwrap());
    }

    #[test]
    fn next_question_is_idempotent_while_unanswered() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu);
        let q1 = m.next_question(id).unwrap().unwrap();
        let q2 = m.next_question(id).unwrap().unwrap();
        assert_eq!(q1.class, q2.class);
        assert_eq!(m.interactions(id).unwrap(), 0);
    }

    #[test]
    fn answers_are_idempotent_and_conflicts_are_rejected() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Td);
        let q = m.next_question(id).unwrap().unwrap();
        assert!(m.answer(id, q.class, Label::Negative).unwrap());
        // A second crowd worker repeating the answer is a no-op…
        assert!(!m.answer(id, q.class, Label::Negative).unwrap());
        assert_eq!(m.interactions(id).unwrap(), 1);
        // …but a contradicting one is an error.
        let e = m.answer(id, q.class, Label::Positive).unwrap_err();
        assert!(matches!(
            e,
            ServerError::Inference(InferenceError::ConflictingLabel { .. })
        ));
    }

    #[test]
    fn out_of_order_batches_supersede_the_outstanding_question() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu);
        let q = m.next_question(id).unwrap().unwrap();
        // Answers for *other* classes arrive first (async task queue).
        let others: Vec<(ClassId, Label)> = (0..m.universe().num_classes())
            .filter(|&c| c != q.class)
            .take(2)
            .map(|c| (c, Label::Negative))
            .collect();
        let applied = m.answer_batch(id, &others).unwrap();
        assert!(applied >= 1);
        // The session keeps going: either the old question is still open
        // or a fresh one replaced it.
        let _ = m.next_question(id).unwrap();
    }

    #[test]
    fn stats_report_per_session_memory() {
        let m = manager();
        assert_eq!(m.stats(), ManagerStats::default());
        let a = m.create_session(StrategyConfig::Bu);
        let b = m.create_session(StrategyConfig::Lks { depth: 2 });
        let q = m.next_question(a).unwrap().unwrap();
        m.answer(a, q.class, Label::Negative).unwrap();
        let stats = m.stats();
        assert_eq!(stats.sessions, 2);
        // Mask-compressed sessions over the paper's instance are ~100 bytes
        // of derived state each.
        assert!(stats.state_bytes > 0);
        assert!(
            stats.state_bytes_per_session() <= 160.0,
            "session state ballooned: {} bytes/session",
            stats.state_bytes_per_session()
        );
        // One answer recorded: history accounting follows.
        assert_eq!(stats.history_bytes, std::mem::size_of::<(ClassId, Label)>());
        m.remove(a).unwrap();
        m.remove(b).unwrap();
        assert_eq!(m.stats().sessions, 0);
    }

    #[test]
    fn unknown_and_removed_sessions_error() {
        let m = manager();
        assert_eq!(
            m.next_question(99).unwrap_err(),
            ServerError::UnknownSession(99)
        );
        let id = m.create_session(StrategyConfig::Bu);
        m.remove(id).unwrap();
        assert_eq!(m.remove(id).unwrap_err(), ServerError::UnknownSession(id));
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn restore_preserves_id_and_bumps_allocation() {
        let m = manager();
        let goal =
            jqi_core::predicate_from_names(m.universe().instance(), &[("To", "City")]).unwrap();
        let id = m.create_session(StrategyConfig::Rnd { seed: 5 });
        let q = m.next_question(id).unwrap().unwrap();
        let label = if goal.is_subset(m.universe().sig(q.class)) {
            Label::Positive
        } else {
            Label::Negative
        };
        m.answer(id, q.class, label).unwrap();
        let snap = m.snapshot(id).unwrap();

        // Simulate a restart: a brand-new manager restores the snapshot.
        let m2 = SessionManager::new(Arc::clone(m.universe()), ServerConfig { shards: 3 });
        let restored = m2.restore(&snap).unwrap();
        assert_eq!(restored, id);
        assert_eq!(m2.interactions(id).unwrap(), 1);
        // Restoring again under a live id collides.
        assert_eq!(
            m2.restore(&snap).unwrap_err(),
            ServerError::SessionExists(id)
        );
        // Fresh ids skip past the restored one.
        let fresh = m2.create_session(StrategyConfig::Bu);
        assert!(fresh > id);
        // And both reach the same final predicate as an uninterrupted run.
        let theta_restored = drive(&m2, id, &goal);
        let id3 = m.create_session(StrategyConfig::Rnd { seed: 5 });
        let theta_solo = drive(&m, id3, &goal);
        assert_eq!(theta_restored, theta_solo);
    }
}
