//! The sharded, thread-safe session table.
//!
//! One [`SessionManager`] owns a shared immutable [`Universe`] behind an
//! [`Arc`] and serves any number of concurrent inference sessions over it.
//! Sessions are spread over `N` shards by `id % N`; each shard is a
//! [`parking_lot::RwLock`] around a `HashMap<SessionId, Arc<Mutex<…>>>`:
//!
//! * **shard locks** are held only for table lookups, inserts, and removals
//!   (microseconds), never across strategy computation — creating or
//!   dropping a session stalls at most `1/N` of the lookups;
//! * **per-session mutexes** serialize the operations of one session, so
//!   answers for the *same* session arriving from several threads are
//!   applied in some total order, while sessions on different mutexes
//!   (even in the same shard) proceed fully in parallel.
//!
//! Answers are class-addressed and go through the session's batch path
//! ([`jqi_core::session::Session::apply_batch`]): they may arrive out of
//! order relative to the questions asked, in batches folded into the
//! inference state under a single lock acquisition, and duplicated by
//! concurrent workers (agreeing duplicates are idempotent; contradictions
//! surface as [`InferenceError::ConflictingLabel`]).

use crate::snapshot::SessionSnapshot;
use jqi_core::session::{Candidate, OwnedSession};
use jqi_core::{ClassId, DecisionCacheStats, InferenceError, Label, StrategyConfig, Universe};
use jqi_relation::BitSet;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A multiply–xorshift finalizer for the `u64` session ids.
///
/// The session table is probed twice per answered question (question +
/// answer), and std's default SipHash dominates a `u64` lookup; ids are
/// either a trusted counter or snapshot-restored values, so a keyed hash
/// buys nothing here. The finalizer is the 64-bit murmur mix — full
/// avalanche, so sequential ids spread over the buckets.
#[derive(Default)]
struct SessionIdHasher(u64);

impl Hasher for SessionIdHasher {
    #[inline]
    fn write_u64(&mut self, id: u64) {
        let mut h = id;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        self.0 = h;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Sessions ids hash through write_u64; keep a correct fallback.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identifier of a session within one [`SessionManager`].
pub type SessionId = u64;

/// Configuration of a [`SessionManager`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards the session table is split into. More shards mean
    /// less create/remove contention; lookups are O(1) either way.
    pub shards: usize,
    /// Idle TTL of the hibernation tier: resident sessions untouched for
    /// at least this long are parked by [`SessionManager::sweep`] — their
    /// derived masks are dropped and only the strategy config + label
    /// history (+ the outstanding question) are kept, re-materializing
    /// lazily on the next touch via one replay `apply_batch`. `None`
    /// disables sweeping; [`SessionManager::hibernate_idle`] can still be
    /// called with an explicit TTL.
    pub hibernate_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 16,
            hibernate_ttl: None,
        }
    }
}

/// Errors surfaced by the session service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// No session with this id (never created, or already removed).
    UnknownSession(SessionId),
    /// A restore collided with a live session carrying the same id.
    SessionExists(SessionId),
    /// An inference-level failure (inconsistent labels, conflicting
    /// duplicate answers, out-of-range classes, …).
    Inference(InferenceError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::SessionExists(id) => write!(f, "session {id} already exists"),
            ServerError::Inference(e) => write!(f, "inference error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InferenceError> for ServerError {
    fn from(e: InferenceError) -> Self {
        ServerError::Inference(e)
    }
}

/// Convenience alias for service results.
pub type Result<T> = std::result::Result<T, ServerError>;

/// Which tier a session currently occupies.
///
/// The resident session is boxed so a hibernated slot's inline footprint
/// is the small variant (a history `Vec` + the pending class), not the
/// full session struct — parking a session genuinely returns its memory.
enum Tier {
    /// Materialized: the full session with every derived mask.
    Resident(Box<OwnedSession>),
    /// Parked: only what deterministic replay needs. `history` is
    /// `shrink_to_fit`-ed on entry, so a parked session holds exactly its
    /// replay log.
    Hibernated {
        history: Vec<(ClassId, Label)>,
        pending: Option<ClassId>,
    },
}

/// One session table slot: the strategy config (needed to snapshot and to
/// re-materialize), the idle clock, and the tiered session itself.
struct Slot {
    config: StrategyConfig,
    last_touch: Instant,
    tier: Tier,
}

impl Slot {
    fn resident(config: StrategyConfig, session: OwnedSession) -> Slot {
        Slot {
            config,
            last_touch: Instant::now(),
            tier: Tier::Resident(Box::new(session)),
        }
    }

    /// The materialized session, re-materializing a hibernated one lazily
    /// by replaying its history through one `apply_batch` — warm fleets
    /// answer the replay's strategy-free mask ops from the shared caches,
    /// so waking is cheap even at scale.
    fn session(&mut self, universe: &Arc<Universe>) -> &mut OwnedSession {
        if let Tier::Hibernated { history, pending } = &mut self.tier {
            let history = std::mem::take(history);
            let pending = pending.take();
            let session =
                OwnedSession::replay(Arc::clone(universe), &self.config, &history, pending)
                    .expect("hibernated history was applied once, so it replays");
            self.tier = Tier::Resident(Box::new(session));
        }
        match &mut self.tier {
            Tier::Resident(session) => session,
            Tier::Hibernated { .. } => unreachable!("just materialized"),
        }
    }

    /// Parks a resident session, dropping its derived masks and strategy
    /// object; returns whether a transition happened.
    fn hibernate(&mut self) -> bool {
        if !matches!(self.tier, Tier::Resident(_)) {
            return false;
        }
        let tier = std::mem::replace(
            &mut self.tier,
            Tier::Hibernated {
                history: Vec::new(),
                pending: None,
            },
        );
        let Tier::Resident(session) = tier else {
            unreachable!("checked above");
        };
        let (mut history, pending) = session.into_replay_parts();
        history.shrink_to_fit();
        self.tier = Tier::Hibernated { history, pending };
        true
    }

    /// Resident bytes of a parked session: the replay log (by allocation
    /// capacity — equal to its length after the shrink on entry) plus the
    /// pending marker. (The strategy config is carried by every slot in
    /// either tier, so it is excluded from the comparison on both sides.)
    fn hibernated_bytes(history: &Vec<(ClassId, Label)>) -> usize {
        history.capacity() * std::mem::size_of::<(ClassId, Label)>()
            + std::mem::size_of::<Option<ClassId>>()
    }
}

/// Aggregate per-session memory statistics of a [`SessionManager`] — see
/// [`SessionManager::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live sessions (resident + hibernated) at sampling time.
    pub sessions: usize,
    /// Sessions materialized with full derived state.
    pub resident_sessions: usize,
    /// Sessions parked in the hibernation tier (bare replay logs).
    pub hibernated_sessions: usize,
    /// Total heap bytes of derived inference state across **resident**
    /// sessions ([`jqi_core::InferenceState::state_bytes`]).
    pub state_bytes: usize,
    /// Total *full* resident footprint of materialized sessions (session
    /// struct + derived-state heap + history heap,
    /// [`jqi_core::session::Session::resident_bytes`]).
    pub resident_bytes: usize,
    /// Total bytes of label history (the replay log) across all sessions,
    /// both tiers.
    pub history_bytes: usize,
    /// Total resident bytes of **hibernated** sessions (replay log +
    /// pending marker).
    pub hibernated_bytes: usize,
    /// The shared universe's decision-cache counters at sampling time.
    pub decision_cache: DecisionCacheStats,
}

impl ManagerStats {
    /// Mean derived-state bytes per resident session (0 when none).
    pub fn state_bytes_per_session(&self) -> f64 {
        if self.resident_sessions == 0 {
            0.0
        } else {
            self.state_bytes as f64 / self.resident_sessions as f64
        }
    }

    /// Mean full footprint per resident session (0 when none).
    pub fn resident_bytes_per_session(&self) -> f64 {
        if self.resident_sessions == 0 {
            0.0
        } else {
            self.resident_bytes as f64 / self.resident_sessions as f64
        }
    }

    /// Mean resident bytes per hibernated session (0 when none).
    pub fn hibernated_bytes_per_session(&self) -> f64 {
        if self.hibernated_sessions == 0 {
            0.0
        } else {
            self.hibernated_bytes as f64 / self.hibernated_sessions as f64
        }
    }
}

type Shard = RwLock<HashMap<SessionId, Arc<Mutex<Slot>>, BuildHasherDefault<SessionIdHasher>>>;

/// A thread-safe, multi-session inference service over one shared universe.
///
/// See the [module docs](self) for the locking discipline. All methods take
/// `&self`; the manager is meant to live in an `Arc` shared by every worker
/// thread of a server.
pub struct SessionManager {
    universe: Arc<Universe>,
    config: ServerConfig,
    shards: Box<[Shard]>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("shards", &self.shards.len())
            .field("sessions", &self.session_count())
            .field("next_id", &self.next_id.load(Ordering::Relaxed))
            .finish()
    }
}

impl SessionManager {
    /// Creates a manager serving sessions over `universe`.
    pub fn new(universe: Arc<Universe>, config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        SessionManager {
            universe,
            shards: (0..shards)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
            next_id: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration the manager was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared universe all sessions run over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Number of live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Aggregate per-session resident-memory statistics (one pass over the
    /// session table, locking each session briefly), so footprint
    /// regressions are visible in server stats and bench output.
    ///
    /// `state_bytes` sums the mask-compressed derived inference state of
    /// resident sessions ([`jqi_core::InferenceState::state_bytes`]);
    /// `history_bytes` sums the replay logs (what snapshots persist,
    /// proportional to answers given); `hibernated_bytes` sums the bare
    /// footprint of parked sessions. The shared universe is excluded — it
    /// is paid once per process, not per session — but its decision-cache
    /// counters ride along in `decision_cache`. Sampling is not a touch:
    /// it never wakes a parked session or resets an idle clock.
    pub fn stats(&self) -> ManagerStats {
        let mut stats = ManagerStats {
            decision_cache: self.universe.decision_cache_stats(),
            ..ManagerStats::default()
        };
        for shard in self.shards.iter() {
            // Clone the slot handles out so the shard lock is not held
            // while session mutexes are taken.
            let slots: Vec<Arc<Mutex<Slot>>> = shard.read().values().cloned().collect();
            for slot in slots {
                let guard = slot.lock();
                stats.sessions += 1;
                match &guard.tier {
                    Tier::Resident(session) => {
                        stats.resident_sessions += 1;
                        stats.state_bytes += session.state_bytes();
                        stats.resident_bytes += session.resident_bytes();
                        stats.history_bytes += std::mem::size_of_val(session.history());
                    }
                    Tier::Hibernated { history, .. } => {
                        stats.hibernated_sessions += 1;
                        stats.history_bytes += std::mem::size_of_val(&history[..]);
                        stats.hibernated_bytes += Slot::hibernated_bytes(history);
                    }
                }
            }
        }
        stats
    }

    fn shard(&self, id: SessionId) -> &Shard {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>> {
        self.shard(id)
            .read()
            .get(&id)
            .cloned()
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Runs `f` on the materialized session, holding only that session's
    /// mutex. The shard lock is released before `f` runs, so slow strategy
    /// work never blocks unrelated lookups. Counts as a touch: the idle
    /// clock resets, and a hibernated session is re-materialized first.
    fn with_session<T>(&self, id: SessionId, f: impl FnOnce(&mut OwnedSession) -> T) -> Result<T> {
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        guard.last_touch = Instant::now();
        Ok(f(guard.session(&self.universe)))
    }

    fn insert(&self, id: SessionId, slot: Slot) -> Result<()> {
        use std::collections::hash_map::Entry;
        match self.shard(id).write().entry(id) {
            Entry::Occupied(_) => Err(ServerError::SessionExists(id)),
            Entry::Vacant(e) => {
                e.insert(Arc::new(Mutex::new(slot)));
                Ok(())
            }
        }
    }

    /// Starts a fresh session with the given strategy; returns its id.
    pub fn create_session(&self, strategy: StrategyConfig) -> SessionId {
        use std::collections::hash_map::Entry;
        let session = OwnedSession::with_config(Arc::clone(&self.universe), &strategy);
        let slot = Arc::new(Mutex::new(Slot::resident(strategy, session)));
        // A concurrent restore() may race a stale snapshot onto the id the
        // counter just handed out (its fetch_max lands after our
        // fetch_add); skip to the next id instead of clobbering either
        // session.
        loop {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            if let Entry::Vacant(e) = self.shard(id).write().entry(id) {
                e.insert(Arc::clone(&slot));
                return id;
            }
        }
    }

    /// The next tuple for the user to label, or `None` when inference is
    /// complete (halt condition Γ).
    ///
    /// Idempotent: while a question is outstanding, re-asking returns the
    /// *same* candidate instead of consuming a strategy step — an
    /// at-least-once task queue can re-deliver freely.
    pub fn next_question(&self, id: SessionId) -> Result<Option<Candidate>> {
        self.with_session(id, |session| {
            if let Some(pending) = session.pending_candidate() {
                return Ok(Some(pending));
            }
            session.next()
        })?
        .map_err(ServerError::from)
    }

    /// Records one class-addressed answer.
    ///
    /// Answers need not match the outstanding question and may repeat
    /// (agreeing duplicates are no-ops); see
    /// [`jqi_core::session::Session::apply_batch`] for the exact
    /// semantics. Returns `true` if the answer was new information.
    pub fn answer(&self, id: SessionId, class: ClassId, label: Label) -> Result<bool> {
        Ok(self.answer_batch(id, &[(class, label)])? == 1)
    }

    /// Folds a batch of answers into the session under a single lock
    /// acquisition; returns how many were new information.
    pub fn answer_batch(&self, id: SessionId, answers: &[(ClassId, Label)]) -> Result<usize> {
        self.with_session(id, |session| session.apply_batch(answers))?
            .map_err(ServerError::from)
    }

    /// Whether the session has nothing left to ask.
    ///
    /// A touch: answering this for a parked session requires the derived
    /// masks (the halt condition is about the informative set), so it
    /// re-materializes — unlike [`Self::interactions`],
    /// [`Self::inferred_predicate`], and [`Self::snapshot`], which serve
    /// parked sessions from the parked payload.
    pub fn is_done(&self, id: SessionId) -> Result<bool> {
        self.with_session(id, |session| session.is_done())
    }

    /// Number of answers recorded so far.
    ///
    /// Served from the parked payload for hibernated sessions — a metrics
    /// loop polling a parked fleet neither wakes sessions nor resets
    /// their idle clocks.
    pub fn interactions(&self, id: SessionId) -> Result<usize> {
        let slot = self.slot(id)?;
        let guard = slot.lock();
        Ok(match &guard.tier {
            Tier::Resident(session) => session.interactions(),
            Tier::Hibernated { history, .. } => history.len(),
        })
    }

    /// The predicate inferred so far — `T(S⁺)`, the most specific
    /// predicate consistent with the answers (usable before completion,
    /// §4.1).
    ///
    /// Not a touch: for a hibernated session, `T(S⁺)` is recomputed
    /// directly from the parked replay log (`Ω ∩ ⋂ sig(positives)`, a few
    /// word-ANDs) instead of re-materializing the whole session.
    pub fn inferred_predicate(&self, id: SessionId) -> Result<BitSet> {
        let slot = self.slot(id)?;
        let guard = slot.lock();
        Ok(match &guard.tier {
            Tier::Resident(session) => session.inferred_predicate(),
            Tier::Hibernated { history, .. } => {
                let mut theta = self.universe.omega();
                for &(c, label) in history {
                    if label == Label::Positive {
                        theta.intersect_with(self.universe.sig(c));
                    }
                }
                theta
            }
        })
    }

    /// A restartable snapshot of the session: strategy config + label
    /// history. The session keeps running; pair with [`Self::remove`] for
    /// eviction.
    ///
    /// A **hibernated** session is snapshotted straight from its parked
    /// replay log — no re-materialization and no touch — so periodically
    /// persisting a fleet of parked sessions never wakes them. (This is
    /// also why hibernation composes with snapshot-based hand-off: the
    /// parked representation *is* the snapshot payload.)
    pub fn snapshot(&self, id: SessionId) -> Result<SessionSnapshot> {
        let slot = self.slot(id)?;
        let guard = slot.lock();
        Ok(match &guard.tier {
            Tier::Resident(session) => SessionSnapshot {
                session: id,
                strategy: guard.config.clone(),
                history: session.history().to_vec(),
                pending: session.pending_class(),
            },
            Tier::Hibernated { history, pending } => SessionSnapshot {
                session: id,
                strategy: guard.config.clone(),
                history: history.clone(),
                pending: *pending,
            },
        })
    }

    /// Rebuilds a snapshotted session under its original id (deterministic
    /// replay, see [`crate::snapshot`]). Future [`Self::create_session`]
    /// ids are bumped past it, so restores and fresh sessions never
    /// collide. Errors if the id is live or the history does not replay.
    pub fn restore(&self, snapshot: &SessionSnapshot) -> Result<SessionId> {
        let id = snapshot.session;
        let session = OwnedSession::replay(
            Arc::clone(&self.universe),
            &snapshot.strategy,
            &snapshot.history,
            snapshot.pending,
        )?;
        self.insert(id, Slot::resident(snapshot.strategy.clone(), session))?;
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        Ok(id)
    }

    /// Parks every resident session idle for at least `ttl` into the
    /// hibernation tier (derived masks dropped; strategy config + label
    /// history kept; see [`ServerConfig::hibernate_ttl`]). Returns how
    /// many sessions were parked. `Duration::ZERO` parks everything —
    /// useful for tests and for draining a manager before hand-off.
    ///
    /// Parked sessions stay fully addressable: the next touch
    /// re-materializes them lazily, and [`Self::snapshot`] serves them
    /// without waking. Sessions busy under another thread's operation are
    /// still swept afterwards — the sweep takes each session mutex in
    /// turn.
    pub fn hibernate_idle(&self, ttl: Duration) -> usize {
        let mut parked = 0usize;
        for shard in self.shards.iter() {
            let slots: Vec<Arc<Mutex<Slot>>> = shard.read().values().cloned().collect();
            for slot in slots {
                let mut guard = slot.lock();
                if guard.last_touch.elapsed() >= ttl && guard.hibernate() {
                    parked += 1;
                }
            }
        }
        parked
    }

    /// Force-parks one session regardless of idle time; returns whether it
    /// was resident. Not a touch.
    pub fn hibernate(&self, id: SessionId) -> Result<bool> {
        let slot = self.slot(id)?;
        let mut guard = slot.lock();
        Ok(guard.hibernate())
    }

    /// The TTL sweep: [`Self::hibernate_idle`] with the configured
    /// [`ServerConfig::hibernate_ttl`], a no-op (returning 0) when none is
    /// configured. Meant to be called periodically by the serving loop.
    pub fn sweep(&self) -> usize {
        match self.config.hibernate_ttl {
            Some(ttl) => self.hibernate_idle(ttl),
            None => 0,
        }
    }

    /// Drops a session. Operations already holding its handle finish
    /// against the detached session; later calls get
    /// [`ServerError::UnknownSession`].
    pub fn remove(&self, id: SessionId) -> Result<()> {
        self.shard(id)
            .write()
            .remove(&id)
            .map(drop)
            .ok_or(ServerError::UnknownSession(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::flight_hotel;

    fn manager() -> SessionManager {
        SessionManager::new(
            Arc::new(Universe::build(flight_hotel())),
            ServerConfig::default(),
        )
    }

    /// Drives `id` to completion with a goal-predicate oracle.
    fn drive(manager: &SessionManager, id: SessionId, goal: &BitSet) -> BitSet {
        while let Some(q) = manager.next_question(id).unwrap() {
            let label = if goal.is_subset(manager.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            manager.answer(id, q.class, label).unwrap();
        }
        manager.inferred_predicate(id).unwrap()
    }

    #[test]
    fn drives_a_session_to_the_paper_goal() {
        let m = manager();
        let goal = jqi_core::predicate_from_names(
            m.universe().instance(),
            &[("To", "City"), ("Airline", "Discount")],
        )
        .unwrap();
        let id = m.create_session(StrategyConfig::Lks { depth: 2 });
        let theta = drive(&m, id, &goal);
        assert_eq!(
            m.universe().instance().predicate_string(&theta),
            "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
        );
        assert!(m.is_done(id).unwrap());
    }

    #[test]
    fn next_question_is_idempotent_while_unanswered() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu);
        let q1 = m.next_question(id).unwrap().unwrap();
        let q2 = m.next_question(id).unwrap().unwrap();
        assert_eq!(q1.class, q2.class);
        assert_eq!(m.interactions(id).unwrap(), 0);
    }

    #[test]
    fn answers_are_idempotent_and_conflicts_are_rejected() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Td);
        let q = m.next_question(id).unwrap().unwrap();
        assert!(m.answer(id, q.class, Label::Negative).unwrap());
        // A second crowd worker repeating the answer is a no-op…
        assert!(!m.answer(id, q.class, Label::Negative).unwrap());
        assert_eq!(m.interactions(id).unwrap(), 1);
        // …but a contradicting one is an error.
        let e = m.answer(id, q.class, Label::Positive).unwrap_err();
        assert!(matches!(
            e,
            ServerError::Inference(InferenceError::ConflictingLabel { .. })
        ));
    }

    #[test]
    fn out_of_order_batches_supersede_the_outstanding_question() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Bu);
        let q = m.next_question(id).unwrap().unwrap();
        // Answers for *other* classes arrive first (async task queue).
        let others: Vec<(ClassId, Label)> = (0..m.universe().num_classes())
            .filter(|&c| c != q.class)
            .take(2)
            .map(|c| (c, Label::Negative))
            .collect();
        let applied = m.answer_batch(id, &others).unwrap();
        assert!(applied >= 1);
        // The session keeps going: either the old question is still open
        // or a fresh one replaced it.
        let _ = m.next_question(id).unwrap();
    }

    #[test]
    fn stats_report_per_session_memory() {
        let m = manager();
        let empty = m.stats();
        assert_eq!(empty.sessions, 0);
        assert_eq!(empty.resident_sessions, 0);
        assert_eq!(empty.hibernated_sessions, 0);
        assert_eq!(empty.state_bytes, 0);
        // The universe's decision cache rides along in the stats.
        assert!(empty.decision_cache.budget_bytes > 0);
        let a = m.create_session(StrategyConfig::Bu);
        let b = m.create_session(StrategyConfig::Lks { depth: 2 });
        let q = m.next_question(a).unwrap().unwrap();
        m.answer(a, q.class, Label::Negative).unwrap();
        let stats = m.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.resident_sessions, 2);
        // Mask-compressed sessions over the paper's instance are ~100 bytes
        // of derived state each.
        assert!(stats.state_bytes > 0);
        assert!(
            stats.state_bytes_per_session() <= 160.0,
            "session state ballooned: {} bytes/session",
            stats.state_bytes_per_session()
        );
        // The full resident footprint includes the session struct itself.
        assert!(stats.resident_bytes > stats.state_bytes);
        // One answer recorded: history accounting follows.
        assert_eq!(stats.history_bytes, std::mem::size_of::<(ClassId, Label)>());
        // The strategy question above went through the decision cache.
        assert!(stats.decision_cache.hits + stats.decision_cache.misses > 0);
        m.remove(a).unwrap();
        m.remove(b).unwrap();
        assert_eq!(m.stats().sessions, 0);
    }

    #[test]
    fn hibernated_sessions_shrink_and_wake_transparently() {
        let m = manager();
        let goal = jqi_core::predicate_from_names(
            m.universe().instance(),
            &[("To", "City"), ("Airline", "Discount")],
        )
        .unwrap();
        // Drive a few answers, park, and compare against a twin that never
        // hibernates.
        let id = m.create_session(StrategyConfig::Lks { depth: 2 });
        let twin = m.create_session(StrategyConfig::Lks { depth: 2 });
        for _ in 0..2 {
            let q = m.next_question(id).unwrap().unwrap();
            let label = if goal.is_subset(m.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            m.answer(id, q.class, label).unwrap();
            let qt = m.next_question(twin).unwrap().unwrap();
            assert_eq!(qt.class, q.class, "twin asked a different question");
            m.answer(twin, qt.class, label).unwrap();
        }
        assert!(m.hibernate(id).unwrap());
        assert!(!m.hibernate(id).unwrap(), "second park is a no-op");
        let stats = m.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.hibernated_sessions, 1);
        assert_eq!(stats.resident_sessions, 1);
        // The parked footprint is a fraction of the materialized one.
        assert!(
            stats.hibernated_bytes_per_session() * 2.0 <= stats.resident_bytes_per_session(),
            "parked session not at most half the resident footprint: {} vs {}",
            stats.hibernated_bytes_per_session(),
            stats.resident_bytes_per_session()
        );
        // Read-only queries are served from the parked payload without
        // waking: snapshot, interactions, and the inferred predicate.
        let snap = m.snapshot(id).unwrap();
        assert_eq!(snap.history.len(), 2);
        assert_eq!(m.interactions(id).unwrap(), 2);
        assert_eq!(
            m.inferred_predicate(id).unwrap(),
            m.inferred_predicate(twin).unwrap(),
            "parked θ diverges from the resident twin's"
        );
        assert_eq!(
            m.stats().hibernated_sessions,
            1,
            "a read-only query woke the session"
        );
        // The next touch re-materializes lazily and continues exactly like
        // the never-hibernated twin.
        while let Some(q) = m.next_question(id).unwrap() {
            let qt = m.next_question(twin).unwrap().unwrap();
            assert_eq!(qt.class, q.class, "woken session diverged from twin");
            let label = if goal.is_subset(m.universe().sig(q.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            m.answer(id, q.class, label).unwrap();
            m.answer(twin, qt.class, label).unwrap();
        }
        assert!(m.next_question(twin).unwrap().is_none());
        assert_eq!(
            m.inferred_predicate(id).unwrap(),
            m.inferred_predicate(twin).unwrap()
        );
        assert_eq!(m.stats().hibernated_sessions, 0);
    }

    #[test]
    fn hibernate_idle_respects_ttl_and_sweep_respects_config() {
        let m = manager();
        let a = m.create_session(StrategyConfig::Bu);
        let _b = m.create_session(StrategyConfig::Td);
        // Nothing has been idle for an hour.
        assert_eq!(m.hibernate_idle(Duration::from_secs(3600)), 0);
        // A zero TTL parks everything at once.
        assert_eq!(m.hibernate_idle(Duration::ZERO), 2);
        assert_eq!(m.stats().hibernated_sessions, 2);
        // Touching one wakes exactly that one.
        let _ = m.next_question(a).unwrap();
        assert_eq!(m.stats().hibernated_sessions, 1);
        // sweep() is a no-op without a configured TTL…
        assert_eq!(m.sweep(), 0);
        // …and parks idle sessions when one is set.
        let ttl = SessionManager::new(
            Arc::clone(m.universe()),
            ServerConfig {
                hibernate_ttl: Some(Duration::ZERO),
                ..ServerConfig::default()
            },
        );
        let c = ttl.create_session(StrategyConfig::Bu);
        assert_eq!(ttl.sweep(), 1);
        assert_eq!(ttl.stats().hibernated_sessions, 1);
        let _ = ttl.next_question(c).unwrap();
        assert_eq!(ttl.stats().hibernated_sessions, 0);
    }

    #[test]
    fn pending_question_survives_hibernation() {
        let m = manager();
        let id = m.create_session(StrategyConfig::Td);
        let q = m.next_question(id).unwrap().unwrap();
        assert!(m.hibernate(id).unwrap());
        // Re-delivery after waking returns the same outstanding question
        // without consuming a strategy step.
        let q2 = m.next_question(id).unwrap().unwrap();
        assert_eq!(q2.class, q.class);
        assert_eq!(m.interactions(id).unwrap(), 0);
    }

    #[test]
    fn unknown_and_removed_sessions_error() {
        let m = manager();
        assert_eq!(
            m.next_question(99).unwrap_err(),
            ServerError::UnknownSession(99)
        );
        let id = m.create_session(StrategyConfig::Bu);
        m.remove(id).unwrap();
        assert_eq!(m.remove(id).unwrap_err(), ServerError::UnknownSession(id));
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn restore_preserves_id_and_bumps_allocation() {
        let m = manager();
        let goal =
            jqi_core::predicate_from_names(m.universe().instance(), &[("To", "City")]).unwrap();
        let id = m.create_session(StrategyConfig::Rnd { seed: 5 });
        let q = m.next_question(id).unwrap().unwrap();
        let label = if goal.is_subset(m.universe().sig(q.class)) {
            Label::Positive
        } else {
            Label::Negative
        };
        m.answer(id, q.class, label).unwrap();
        let snap = m.snapshot(id).unwrap();

        // Simulate a restart: a brand-new manager restores the snapshot.
        let m2 = SessionManager::new(
            Arc::clone(m.universe()),
            ServerConfig {
                shards: 3,
                ..ServerConfig::default()
            },
        );
        let restored = m2.restore(&snap).unwrap();
        assert_eq!(restored, id);
        assert_eq!(m2.interactions(id).unwrap(), 1);
        // Restoring again under a live id collides.
        assert_eq!(
            m2.restore(&snap).unwrap_err(),
            ServerError::SessionExists(id)
        );
        // Fresh ids skip past the restored one.
        let fresh = m2.create_session(StrategyConfig::Bu);
        assert!(fresh > id);
        // And both reach the same final predicate as an uninterrupted run.
        let theta_restored = drive(&m2, id, &goal);
        let id3 = m.create_session(StrategyConfig::Rnd { seed: 5 });
        let theta_solo = drive(&m, id3, &goal);
        assert_eq!(theta_restored, theta_solo);
    }
}
