//! Minimal JSON emission **and parsing** for session snapshots.
//!
//! The build container cannot fetch `serde`/`serde_json`, so snapshots use
//! the same hand-rolled JSON the `jqi_bench` reports use — plus the parser
//! that crate never needed (reports are write-only; snapshots round-trip).
//! Emission is deliberately plain: objects keep insertion order, floats
//! print with `{}` (shortest round-trip), strings escape the JSON control
//! set. The parser is a strict recursive-descent reader of exactly that
//! dialect (UTF-8 text, `\uXXXX` escapes limited to the BMP).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (u64 counts are exact below 2^53, plenty here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// The value under `key`, if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if `self` is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (the `serde_json`
    /// `to_string_pretty` look).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes is appended wholesale.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The document is valid UTF-8 (it is a &str) and the run
                // stops only at ASCII delimiters, so the slice stays on
                // character boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("string run is not valid UTF-8"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad hex in \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("x\"y\n\\z")),
            ("n".into(), Json::num(3u32)),
            ("mean".into(), Json::Num(1.5)),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Num(-2.0))]),
            ),
        ]);
        let text = v.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_compact_documents_too() {
        let v = Json::parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::str("tab\there ünïcode \u{1} quote\" slash\\");
        let parsed = Json::parse(&original.to_string_pretty()).unwrap();
        assert_eq!(parsed, original);
        // Upstream-style escapes we emit never, but accept always.
        assert_eq!(Json::parse(r#""a\/b\u00e9""#).unwrap(), Json::str("a/bé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"open",
            "{\"k\" 1}",
            "[1] extra",
            "\"\\q\"",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_with_sign_and_exponent() {
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("7").unwrap(), Json::Num(7.0));
    }
}
