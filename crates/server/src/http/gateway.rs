//! The JSON gateway: routes HTTP requests to [`SessionManager`] calls.
//!
//! The gateway is a [`jqi_net::Handler`]: pure request → response, no
//! sockets, no threads — the transport crate owns those. Routing is a
//! match over path segments; bodies are parsed with the same vendored
//! [`crate::json`] reader the snapshot format uses. Every failure mode
//! maps to one JSON error shape,
//!
//! ```json
//! {"error": {"code": "…", "message": "…"}}
//! ```
//!
//! with `universe_mismatch` additionally carrying the `expected`/`found`
//! fingerprints as hex strings — the loud cross-universe rejection the
//! durability tier insists on, surfaced over the wire. The full
//! endpoint-by-endpoint contract lives in `docs/API.md`.

use crate::http::metrics::{GatewayMetrics, LatencyHistogram};
use crate::http::overload::OverloadConfig;
use crate::http::registry::{valid_universe_id, UniverseEntry, UniverseRegistry};
use crate::json::Json;
use crate::manager::{ManagerStats, ServerError, SessionId, SessionManager};
use crate::snapshot::SessionSnapshot;
use jqi_core::{Candidate, ClassId, Label, StrategyConfig, UniverseDelta};
use jqi_net::{NetStats, Request, Response, StatsHandle};
use jqi_relation::{Side, Tuple, Value};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Largest accepted `answers` array in one batch. Batches beyond it are
/// refused with `413 batch_too_large` before any answer is applied.
pub const MAX_ANSWER_BATCH: usize = 4096;

/// The HTTP/JSON front end over a [`UniverseRegistry`].
pub struct Gateway {
    registry: Arc<UniverseRegistry>,
    metrics: Arc<GatewayMetrics>,
    overload: OverloadConfig,
    /// Live transport counters, attached once the server is bound (the
    /// gateway is constructed first); `GET /v1/stats` serves them.
    transport: OnceLock<StatsHandle>,
}

impl Gateway {
    /// Wraps a registry. The returned gateway is ready to be passed to
    /// [`jqi_net::Server::bind`] (via [`crate::http::serve`]).
    pub fn new(registry: Arc<UniverseRegistry>) -> Gateway {
        Gateway::with_overload(registry, OverloadConfig::default())
    }

    /// [`Gateway::new`] with explicit admission-control thresholds.
    pub fn with_overload(registry: Arc<UniverseRegistry>, overload: OverloadConfig) -> Gateway {
        Gateway {
            registry,
            metrics: Arc::new(GatewayMetrics::new()),
            overload,
            transport: OnceLock::new(),
        }
    }

    /// The registry this gateway routes into.
    pub fn registry(&self) -> &Arc<UniverseRegistry> {
        &self.registry
    }

    /// The live per-endpoint latency histograms (also served under
    /// `"endpoints"` in `GET /v1/stats`).
    pub fn metrics(&self) -> &Arc<GatewayMetrics> {
        &self.metrics
    }

    /// Attaches the bound server's live transport counters so
    /// `GET /v1/stats` can serve them. Later calls are no-ops.
    pub fn attach_transport(&self, handle: StatsHandle) {
        let _ = self.transport.set(handle);
    }

    /// The histogram whose rolling estimate stands for this request in
    /// admission control, by the same leaf rules the router uses.
    fn histogram_for(&self, method: &str, path: &str) -> &LatencyHistogram {
        let leaf = path.rsplit('/').next().unwrap_or_default();
        match (method, leaf) {
            (_, "question") => &self.metrics.question,
            (_, "answers") => &self.metrics.answers,
            (_, "snapshot") => &self.metrics.snapshot,
            ("POST", "sessions") => &self.metrics.create_session,
            ("POST", "restore") => &self.metrics.restore,
            ("POST", "delta") => &self.metrics.delta,
            (_, "stats") | (_, "universes") => &self.metrics.stats,
            _ => &self.metrics.session,
        }
    }

    fn route(&self, request: &Request) -> Response {
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        let method = request.method.as_str();
        match segments.as_slice() {
            ["v1", "stats"] => match method {
                "GET" => self.timed(&self.metrics.stats, || self.stats()),
                _ => method_not_allowed("GET"),
            },
            ["v1", "universes"] => match method {
                "GET" => self.timed(&self.metrics.stats, || self.list_universes()),
                _ => method_not_allowed("GET"),
            },
            ["v1", "universes", uid, "sessions"] => match method {
                "POST" => self.with_universe(uid, &self.metrics.create_session, |m| {
                    create_session(m, request)
                }),
                _ => method_not_allowed("POST"),
            },
            ["v1", "universes", uid, "restore"] => match method {
                "POST" => self.with_universe(uid, &self.metrics.restore, |m| restore(m, request)),
                _ => method_not_allowed("POST"),
            },
            ["v1", "universes", uid, "delta"] => match method {
                "POST" => self.with_universe(uid, &self.metrics.delta, |m| apply_delta(m, request)),
                _ => method_not_allowed("POST"),
            },
            ["v1", "universes", uid, "sessions", sid] => {
                let Some(sid) = parse_session_id(sid) else {
                    return error(404, "unknown_session", "session ids are integers");
                };
                match method {
                    "GET" => {
                        self.with_universe(uid, &self.metrics.session, |m| session_status(m, sid))
                    }
                    "DELETE" => self.with_universe(uid, &self.metrics.session, |m| {
                        m.remove(sid).map_err(server_error)?;
                        Ok(Response {
                            status: 204,
                            headers: vec![],
                            body: vec![],
                            close: false,
                        })
                    }),
                    _ => method_not_allowed("GET, DELETE"),
                }
            }
            ["v1", "universes", uid, "sessions", sid, leaf] => {
                let Some(sid) = parse_session_id(sid) else {
                    return error(404, "unknown_session", "session ids are integers");
                };
                match (*leaf, method) {
                    ("question", "GET") => {
                        self.with_universe(uid, &self.metrics.question, |m| question(m, sid))
                    }
                    ("question", _) => method_not_allowed("GET"),
                    ("answers", "POST") => {
                        self.with_universe(uid, &self.metrics.answers, |m| answers(m, sid, request))
                    }
                    ("answers", _) => method_not_allowed("POST"),
                    ("snapshot", "GET") => self.with_universe(uid, &self.metrics.snapshot, |m| {
                        let snap = m.snapshot(sid).map_err(server_error)?;
                        Ok(Response::json(200, snap.to_json_string()))
                    }),
                    ("snapshot", _) => method_not_allowed("GET"),
                    _ => unknown_route(&request.path),
                }
            }
            _ => unknown_route(&request.path),
        }
    }

    /// Resolves `uid`, times the handler, and maps resolution failures
    /// to the documented statuses: unknown id → `404 unknown_universe`,
    /// failed recovery → `503 universe_failed` (with the preserved
    /// recovery error — a WAL fingerprint mismatch surfaces here).
    fn with_universe(
        &self,
        uid: &str,
        histogram: &crate::http::metrics::LatencyHistogram,
        f: impl FnOnce(&SessionManager) -> Result<Response, Response>,
    ) -> Response {
        if !valid_universe_id(uid) {
            return error(404, "unknown_universe", "invalid universe id");
        }
        match self.registry.lookup(uid) {
            None => error(404, "unknown_universe", &format!("no universe {uid:?}")),
            Some(UniverseEntry::Failed { error: cause }) => {
                // Recovery may be re-attempted by an operator at any
                // time; tell well-behaved clients when to look again.
                let mut response = error(
                    503,
                    "universe_failed",
                    &format!("universe {uid:?} failed recovery: {cause}"),
                );
                response.headers.push(("retry-after".into(), "5".into()));
                response
            }
            Some(UniverseEntry::Serving(manager)) => self.timed(histogram, || f(&manager)),
        }
    }

    fn timed(
        &self,
        histogram: &crate::http::metrics::LatencyHistogram,
        f: impl FnOnce() -> Result<Response, Response>,
    ) -> Response {
        let start = Instant::now();
        let response = f().unwrap_or_else(|e| e);
        histogram.record(start.elapsed());
        response
    }

    fn list_universes(&self) -> Result<Response, Response> {
        let universes = self
            .registry
            .uids()
            .into_iter()
            .filter_map(|uid| self.registry.lookup(&uid).map(|e| (uid, e)))
            .map(|(uid, entry)| {
                let value = match entry {
                    UniverseEntry::Serving(m) => Json::Obj(vec![
                        ("status".into(), Json::str("serving")),
                        (
                            "fingerprint".into(),
                            Json::str(format!("{:016x}", m.universe_fingerprint())),
                        ),
                        ("sessions".into(), Json::num(m.session_count() as f64)),
                    ]),
                    UniverseEntry::Failed { error } => Json::Obj(vec![
                        ("status".into(), Json::str("failed")),
                        ("error".into(), Json::str(error)),
                    ]),
                };
                (uid, value)
            })
            .collect();
        Ok(ok(Json::Obj(vec![(
            "universes".into(),
            Json::Obj(universes),
        )])))
    }

    /// The `"transport"` block for `GET /v1/stats` — [`NetStats`] as
    /// JSON, or `Null` before a server is attached.
    fn transport_json(&self) -> Json {
        let Some(handle) = self.transport.get() else {
            return Json::Null;
        };
        let stats: NetStats = handle.snapshot();
        Json::Obj(vec![
            ("accepted".into(), Json::num(stats.accepted as f64)),
            ("rejected".into(), Json::num(stats.rejected as f64)),
            (
                "open_connections".into(),
                Json::num(stats.open_connections as f64),
            ),
            ("requests".into(), Json::num(stats.requests as f64)),
            (
                "protocol_errors".into(),
                Json::num(stats.protocol_errors as f64),
            ),
            (
                "handler_panics".into(),
                Json::num(stats.handler_panics as f64),
            ),
            (
                "idle_timeouts".into(),
                Json::num(stats.idle_timeouts as f64),
            ),
            ("peer_resets".into(), Json::num(stats.peer_resets as f64)),
            ("shed".into(), Json::num(stats.shed as f64)),
            (
                "deadlines_exceeded".into(),
                Json::num(stats.deadlines_exceeded as f64),
            ),
            ("queue_depth".into(), Json::num(stats.queue_depth as f64)),
        ])
    }

    fn stats(&self) -> Result<Response, Response> {
        let universes = self
            .registry
            .uids()
            .into_iter()
            .filter_map(|uid| self.registry.lookup(&uid).map(|e| (uid, e)))
            .map(|(uid, entry)| {
                let value = match entry {
                    UniverseEntry::Serving(m) => Json::Obj(vec![
                        ("status".into(), Json::str("serving")),
                        (
                            "fingerprint".into(),
                            Json::str(format!("{:016x}", m.universe_fingerprint())),
                        ),
                        ("stats".into(), manager_stats_json(&m.stats())),
                    ]),
                    UniverseEntry::Failed { error } => Json::Obj(vec![
                        ("status".into(), Json::str("failed")),
                        ("error".into(), Json::str(error)),
                    ]),
                };
                (uid, value)
            })
            .collect();
        Ok(ok(Json::Obj(vec![
            ("universes".into(), Json::Obj(universes)),
            ("endpoints".into(), self.metrics.to_json()),
            ("transport".into(), self.transport_json()),
        ])))
    }
}

impl jqi_net::Handler for Gateway {
    fn handle(&self, request: &Request) -> Response {
        self.route(request)
    }

    /// Admission control: the transport asks on the framed request head,
    /// before any routing or body transfer happens. Policy lives in
    /// [`OverloadConfig::admit`]; the rolling latency estimate comes
    /// from the endpoint's own histogram.
    fn admit(
        &self,
        head: &jqi_net::RequestHead,
        pressure: jqi_net::Pressure,
    ) -> jqi_net::Admission {
        let ewma_us = self.histogram_for(&head.method, &head.path).ewma_us();
        self.overload.admit(head, pressure, ewma_us)
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("universes", &self.registry.uids())
            .finish()
    }
}

// ── endpoint bodies ────────────────────────────────────────────────────

/// The last deadline check before mutating work: once the manager runs,
/// the WAL append happens, and an append must never be orphaned by a
/// client that already gave up. Cheap reads skip this — the transport
/// already rejected requests that arrived expired.
fn deadline_guard(request: &Request) -> Result<(), Response> {
    if request.expired() {
        return Err(error(
            504,
            "deadline_exceeded",
            "client deadline lapsed before the mutation was applied; nothing was appended",
        ));
    }
    Ok(())
}

fn create_session(manager: &SessionManager, request: &Request) -> Result<Response, Response> {
    let doc = parse_body(request)?;
    let strategy: StrategyConfig = doc
        .get("strategy")
        .and_then(Json::as_str)
        .ok_or_else(|| {
            error(
                400,
                "bad_request",
                "body must be {\"strategy\": \"LKS:2\" | \"BU\" | \"TD\" | \"EG\" | \"OPT\" | \"RND:<seed>\"}",
            )
        })?
        .parse()
        .map_err(|e: String| error(400, "bad_strategy", &e))?;
    deadline_guard(request)?;
    let id = manager
        .create_session(strategy.clone())
        .map_err(server_error)?;
    Ok(ok_with(
        201,
        Json::Obj(vec![
            ("session".into(), Json::num(id as f64)),
            ("strategy".into(), Json::str(strategy.to_string())),
            (
                "universe".into(),
                Json::str(format!("{:016x}", manager.universe_fingerprint())),
            ),
        ]),
    ))
}

fn question(manager: &SessionManager, sid: SessionId) -> Result<Response, Response> {
    let candidate = manager.next_question(sid).map_err(server_error)?;
    let interactions = manager.interactions(sid).map_err(server_error)?;
    let mut fields = vec![("session".into(), Json::num(sid as f64))];
    match candidate {
        Some(c) => {
            fields.push(("question".into(), candidate_json(manager, &c)));
            fields.push(("done".into(), Json::Bool(false)));
        }
        None => {
            fields.push(("question".into(), Json::Null));
            fields.push(("done".into(), Json::Bool(true)));
            fields.push(("predicate".into(), predicate_json(manager, sid)?));
        }
    }
    fields.push(("interactions".into(), Json::num(interactions as f64)));
    Ok(ok(Json::Obj(fields)))
}

fn answers(
    manager: &SessionManager,
    sid: SessionId,
    request: &Request,
) -> Result<Response, Response> {
    let doc = parse_body(request)?;
    let items = doc.get("answers").and_then(Json::as_arr).ok_or_else(|| {
        error(
            400,
            "bad_request",
            "body must be {\"answers\": [{\"class\": <id>, \"label\": \"+\" | \"-\"}, …]}",
        )
    })?;
    if items.len() > MAX_ANSWER_BATCH {
        return Err(error(
            413,
            "batch_too_large",
            &format!(
                "batch of {} answers exceeds the limit of {MAX_ANSWER_BATCH}",
                items.len()
            ),
        ));
    }
    let mut batch: Vec<(ClassId, Label)> = Vec::with_capacity(items.len());
    for item in items {
        let class = item
            .get("class")
            .and_then(Json::as_num)
            .filter(|n| n.fract() == 0.0 && (0.0..=9e15).contains(n))
            .ok_or_else(|| error(400, "bad_request", "each answer needs an integer \"class\""))?
            as ClassId;
        let label = match item.get("label").and_then(Json::as_str) {
            Some("+") => Label::Positive,
            Some("-") => Label::Negative,
            _ => {
                return Err(error(
                    400,
                    "bad_request",
                    "each answer needs a \"label\" of \"+\" or \"-\"",
                ))
            }
        };
        batch.push((class, label));
    }
    deadline_guard(request)?;
    let applied = manager.answer_batch(sid, &batch).map_err(server_error)?;
    let done = manager.is_done(sid).map_err(server_error)?;
    let interactions = manager.interactions(sid).map_err(server_error)?;
    Ok(ok(Json::Obj(vec![
        ("session".into(), Json::num(sid as f64)),
        ("applied".into(), Json::num(applied as f64)),
        ("interactions".into(), Json::num(interactions as f64)),
        ("done".into(), Json::Bool(done)),
    ])))
}

fn session_status(manager: &SessionManager, sid: SessionId) -> Result<Response, Response> {
    let done = manager.is_done(sid).map_err(server_error)?;
    let interactions = manager.interactions(sid).map_err(server_error)?;
    let mut fields = vec![
        ("session".into(), Json::num(sid as f64)),
        ("interactions".into(), Json::num(interactions as f64)),
        ("done".into(), Json::Bool(done)),
    ];
    fields.push((
        "predicate".into(),
        if done {
            predicate_json(manager, sid)?
        } else {
            Json::Null
        },
    ));
    Ok(ok(Json::Obj(fields)))
}

fn restore(manager: &SessionManager, request: &Request) -> Result<Response, Response> {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| error(400, "bad_request", "snapshot body is not UTF-8"))?;
    let snapshot =
        SessionSnapshot::from_json(body).map_err(|e| error(400, "bad_snapshot", &e.to_string()))?;
    deadline_guard(request)?;
    let id = manager.restore(&snapshot).map_err(server_error)?;
    Ok(ok_with(
        201,
        Json::Obj(vec![
            ("session".into(), Json::num(id as f64)),
            (
                "interactions".into(),
                Json::num(snapshot.history.len() as f64),
            ),
        ]),
    ))
}

/// Parses one JSON row — an array of ints and strings — into a [`Tuple`]
/// interned against the serving universe's (shared, append-only)
/// interner. Arity is *not* checked here; [`jqi_core::Universe::apply_delta`]
/// validates it against the schema and the rejection comes back as
/// `400 bad_delta`.
fn parse_row(
    interner: &jqi_relation::Interner,
    key: &str,
    index: usize,
    row: &Json,
) -> Result<Tuple, Response> {
    let cells = row.as_arr().ok_or_else(|| {
        error(
            400,
            "bad_request",
            &format!("{key}[{index}] must be an array of row values"),
        )
    })?;
    let mut values = Vec::with_capacity(cells.len());
    for cell in cells {
        values.push(match cell {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9e15 => Value::int(*n as i64),
            Json::Str(s) => Value::str(s.as_str()),
            _ => {
                return Err(error(
                    400,
                    "bad_request",
                    &format!("{key}[{index}] values must be integers or strings"),
                ))
            }
        });
    }
    Ok(Tuple::intern(interner, &values))
}

fn apply_delta(manager: &SessionManager, request: &Request) -> Result<Response, Response> {
    let doc = parse_body(request)?;
    let universe = manager.universe();
    let interner = universe.instance().interner();
    let mut delta = UniverseDelta::new();
    for (key, side, is_delete) in [
        ("insert_r", Side::R, false),
        ("delete_r", Side::R, true),
        ("insert_p", Side::P, false),
        ("delete_p", Side::P, true),
    ] {
        let Some(block) = doc.get(key) else { continue };
        let rows = block.as_arr().ok_or_else(|| {
            error(
                400,
                "bad_request",
                &format!("{key} must be an array of rows"),
            )
        })?;
        for (index, row) in rows.iter().enumerate() {
            let tuple = parse_row(interner, key, index, row)?;
            if is_delete {
                delta.delete(side, tuple);
            } else {
                delta.insert(side, tuple);
            }
        }
    }
    if delta.is_empty() {
        return Err(error(
            400,
            "bad_request",
            "delta has no edits; provide at least one of \
             insert_r, delete_r, insert_p, delete_p",
        ));
    }
    deadline_guard(request)?;
    let report = manager.apply_delta(&delta).map_err(server_error)?;
    let universe = manager.universe();
    Ok(ok(Json::Obj(vec![
        ("epoch".into(), Json::num(universe.epoch() as f64)),
        (
            "universe".into(),
            Json::str(format!("{:016x}", manager.universe_fingerprint())),
        ),
        ("edits".into(), Json::num(delta.len() as f64)),
        ("sessions".into(), Json::num(report.sessions as f64)),
        ("carried".into(), Json::num(report.carried as f64)),
        ("replayed".into(), Json::num(report.replayed as f64)),
        (
            "dropped_labels".into(),
            Json::num(report.dropped_labels as f64),
        ),
        (
            "invalidated".into(),
            Json::Arr(
                report
                    .invalidated
                    .iter()
                    .map(|&id| Json::num(id as f64))
                    .collect(),
            ),
        ),
    ])))
}

// ── shared plumbing ────────────────────────────────────────────────────

fn candidate_json(manager: &SessionManager, candidate: &Candidate) -> Json {
    let values = candidate
        .values(&manager.universe())
        .iter()
        .map(|v| Json::str(v.to_string()))
        .collect();
    Json::Obj(vec![
        ("class".into(), Json::num(candidate.class as f64)),
        (
            "tuple".into(),
            Json::Arr(vec![
                Json::num(candidate.tuple.0 as f64),
                Json::num(candidate.tuple.1 as f64),
            ]),
        ),
        ("values".into(), Json::Arr(values)),
    ])
}

fn predicate_json(manager: &SessionManager, sid: SessionId) -> Result<Json, Response> {
    let theta = manager.inferred_predicate(sid).map_err(server_error)?;
    Ok(Json::str(
        manager.universe().instance().predicate_string(&theta),
    ))
}

fn parse_session_id(segment: &str) -> Option<SessionId> {
    segment.parse::<SessionId>().ok()
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| error(400, "bad_request", "body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(error(400, "bad_request", "a JSON body is required"));
    }
    Json::parse(text).map_err(|e| error(400, "bad_json", &e.to_string()))
}

fn ok(body: Json) -> Response {
    ok_with(200, body)
}

fn ok_with(status: u16, body: Json) -> Response {
    Response::json(status, body.to_string_pretty() + "\n")
}

/// The single error shape every gateway failure uses. `extra` fields are
/// spliced into the `"error"` object after `code`/`message`.
fn error_with(status: u16, code: &str, message: &str, extra: Vec<(String, Json)>) -> Response {
    let mut fields = vec![
        ("code".into(), Json::str(code)),
        ("message".into(), Json::str(message)),
    ];
    fields.extend(extra);
    Response::json(
        status,
        Json::Obj(vec![("error".into(), Json::Obj(fields))]).to_string_pretty() + "\n",
    )
}

fn error(status: u16, code: &str, message: &str) -> Response {
    error_with(status, code, message, vec![])
}

fn method_not_allowed(allow: &str) -> Response {
    let mut response = error(
        405,
        "method_not_allowed",
        &format!("this route accepts: {allow}"),
    );
    response.headers.push(("allow".into(), allow.to_string()));
    response
}

fn unknown_route(path: &str) -> Response {
    error(404, "unknown_route", &format!("no route for {path:?}"))
}

/// Maps [`ServerError`] onto the HTTP error contract (see `docs/API.md`).
fn server_error(e: ServerError) -> Response {
    match &e {
        ServerError::UnknownSession(_) => error(404, "unknown_session", &e.to_string()),
        ServerError::SessionExists(_) => error(409, "session_exists", &e.to_string()),
        ServerError::UniverseMismatch { expected, found } => error_with(
            409,
            "universe_mismatch",
            &e.to_string(),
            vec![
                ("expected".into(), Json::str(format!("{expected:016x}"))),
                ("found".into(), Json::str(format!("{found:016x}"))),
            ],
        ),
        ServerError::Inference(_) => error(400, "inference_error", &e.to_string()),
        ServerError::Durability(_) => error(500, "durability_error", &e.to_string()),
        ServerError::Delta(_) => error(400, "bad_delta", &e.to_string()),
    }
}

/// Serializes [`ManagerStats`] (plus its nested decision-cache and
/// durability blocks) for `GET /v1/stats`.
pub fn manager_stats_json(stats: &ManagerStats) -> Json {
    let cache = &stats.decision_cache;
    let mut fields = vec![
        ("sessions".into(), Json::num(stats.sessions as f64)),
        (
            "resident_sessions".into(),
            Json::num(stats.resident_sessions as f64),
        ),
        (
            "hibernated_sessions".into(),
            Json::num(stats.hibernated_sessions as f64),
        ),
        (
            "spilled_sessions".into(),
            Json::num(stats.spilled_sessions as f64),
        ),
        ("state_bytes".into(), Json::num(stats.state_bytes as f64)),
        (
            "resident_bytes".into(),
            Json::num(stats.resident_bytes as f64),
        ),
        (
            "history_bytes".into(),
            Json::num(stats.history_bytes as f64),
        ),
        (
            "hibernated_bytes".into(),
            Json::num(stats.hibernated_bytes as f64),
        ),
        (
            "spilled_bytes".into(),
            Json::num(stats.spilled_bytes as f64),
        ),
        (
            "decision_cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::num(cache.hits as f64)),
                ("misses".into(), Json::num(cache.misses as f64)),
                ("evictions".into(), Json::num(cache.evictions as f64)),
                ("entries".into(), Json::num(cache.entries as f64)),
                ("bytes".into(), Json::num(cache.bytes as f64)),
                ("budget_bytes".into(), Json::num(cache.budget_bytes as f64)),
            ]),
        ),
    ];
    fields.push((
        "durability".into(),
        match &stats.durability {
            None => Json::Null,
            Some(d) => Json::Obj(vec![
                ("wal_records".into(), Json::num(d.wal_records as f64)),
                ("wal_syncs".into(), Json::num(d.wal_syncs as f64)),
                (
                    "wal_appended_bytes".into(),
                    Json::num(d.wal_appended_bytes as f64),
                ),
                ("spill_entries".into(), Json::num(d.spill_entries as f64)),
                (
                    "spill_bytes_written".into(),
                    Json::num(d.spill_bytes_written as f64),
                ),
                ("spill_reads".into(), Json::num(d.spill_reads as f64)),
            ]),
        },
    ));
    Json::Obj(fields)
}
