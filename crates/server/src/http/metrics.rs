//! Live per-endpoint latency histograms for `GET /v1/stats`.
//!
//! The offline bench reports (`jqi_bench::throughput`) summarize latency
//! as `{count, mean_us, p50_us, p95_us, p99_us, max_us}`; the gateway
//! exposes the same shape as a *live* metric, computed from a lock-free
//! log₂-bucketed histogram instead of a recorded sample vector. Recording
//! is a handful of relaxed atomic adds on the request path; quantiles are
//! read back from bucket upper bounds, so `p99_us` is exact to within one
//! power-of-two bucket — the right trade for a counter that every request
//! touches.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One power-of-two bucket per `floor(log2(nanos))`; 48 buckets cover
/// sub-nanosecond through ~78 hours.
const BUCKETS: usize = 48;

/// Half-life of the rolling latency estimate while *no* samples arrive:
/// the stored EWMA is halved per this much wall-clock silence when read.
/// This is what keeps latency-based shedding from latching — once an
/// endpoint sheds, it stops producing samples, so without decay a single
/// slow burst (or one slow cold-start request seeding the estimate)
/// would 503 that endpoint class until restart. With decay, a shed
/// endpoint's estimate falls back under its threshold within a few
/// half-lives and traffic is readmitted; if the endpoint is still slow,
/// the readmitted requests re-raise the estimate and shedding resumes —
/// a bounded duty cycle instead of a lockout.
const EWMA_HALF_LIFE_NS: u64 = 500_000_000;

/// Monotonic nanoseconds since the first time any histogram looked at
/// the clock — a process-wide epoch so timestamps fit in an atomic.
fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// `ewma_ns` decayed by `elapsed_ns` of silence: halved per
/// [`EWMA_HALF_LIFE_NS`], with linear interpolation inside a half-life
/// so the estimate falls smoothly rather than in steps.
fn decayed(ewma_ns: u64, elapsed_ns: u64) -> u64 {
    let halves = elapsed_ns / EWMA_HALF_LIFE_NS;
    if halves >= 64 {
        return 0;
    }
    let base = ewma_ns >> halves;
    let frac = elapsed_ns % EWMA_HALF_LIFE_NS;
    base - ((u128::from(base / 2) * u128::from(frac)) / u128::from(EWMA_HALF_LIFE_NS)) as u64
}

/// A concurrent latency histogram with log₂ buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Rolling estimate (EWMA, α = 1/8) of recent latency — the signal
    /// admission control sheds on. Lossy under races, which is fine for
    /// a smoothed estimate. Time-decays toward zero while no samples
    /// arrive (see [`EWMA_HALF_LIFE_NS`]) so shedding can never latch.
    ewma_ns: AtomicU64,
    /// [`monotonic_ns`] timestamp of the last EWMA update.
    ewma_at_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            ewma_ns: AtomicU64::new(0),
            ewma_at_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let now = monotonic_ns();
        let old = decayed(
            self.ewma_ns.load(Ordering::Relaxed),
            now.saturating_sub(self.ewma_at_ns.load(Ordering::Relaxed)),
        );
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
        self.ewma_at_ns.store(now, Ordering::Relaxed);
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The rolling latency estimate in microseconds (0 before any
    /// sample) — what admission control compares against its
    /// thresholds. Decayed by the silence since the last sample, so a
    /// shed (hence sample-starved) endpoint recovers within a few
    /// half-lives instead of latching shut.
    pub fn ewma_us(&self) -> u64 {
        let at = self.ewma_at_ns.load(Ordering::Relaxed);
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        decayed(ewma, monotonic_ns().saturating_sub(at)) / 1_000
    }

    /// The latency at quantile `q` (0..=1), read from bucket upper
    /// bounds; `None` when no samples were recorded.
    fn quantile_ns(&self, counts: &[u64; BUCKETS], total: u64, q: f64) -> Option<u64> {
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) - 1 ns.
                return Some((1u64 << (i + 1)) - 1);
            }
        }
        Some(self.max_ns.load(Ordering::Relaxed))
    }

    /// The live summary in the bench-report shape:
    /// `{count, mean_us, p50_us, p95_us, p99_us, max_us}` — or
    /// `Json::Null` when nothing was recorded yet.
    pub fn summary_json(&self) -> Json {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return Json::Null;
        }
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let snapshot_total: u64 = counts.iter().sum();
        let to_us = |ns: u64| ns as f64 / 1e3;
        let mean_us = self.total_ns.load(Ordering::Relaxed) as f64 / total as f64 / 1e3;
        let q = |quant: f64| {
            self.quantile_ns(&counts, snapshot_total, quant)
                .map_or(Json::Null, |ns| Json::Num(to_us(ns)))
        };
        Json::Obj(vec![
            ("count".into(), Json::num(total as f64)),
            ("mean_us".into(), Json::Num(mean_us)),
            ("p50_us".into(), q(0.50)),
            ("p95_us".into(), q(0.95)),
            ("p99_us".into(), q(0.99)),
            (
                "max_us".into(),
                Json::Num(to_us(self.max_ns.load(Ordering::Relaxed))),
            ),
            ("ewma_us".into(), Json::num(self.ewma_us() as f64)),
        ])
    }
}

/// One histogram per gateway operation, named as they appear under
/// `"endpoints"` in the `GET /v1/stats` response.
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// `POST /v1/universes/{uid}/sessions`.
    pub create_session: LatencyHistogram,
    /// `GET …/sessions/{sid}/question`.
    pub question: LatencyHistogram,
    /// `POST …/sessions/{sid}/answers`.
    pub answers: LatencyHistogram,
    /// `GET …/sessions/{sid}/snapshot`.
    pub snapshot: LatencyHistogram,
    /// `POST /v1/universes/{uid}/restore`.
    pub restore: LatencyHistogram,
    /// `POST /v1/universes/{uid}/delta`.
    pub delta: LatencyHistogram,
    /// `GET …/sessions/{sid}` and `DELETE …/sessions/{sid}`.
    pub session: LatencyHistogram,
    /// `GET /v1/stats` and `GET /v1/universes`.
    pub stats: LatencyHistogram,
}

impl GatewayMetrics {
    /// Creates a zeroed metrics table.
    pub fn new() -> GatewayMetrics {
        GatewayMetrics::default()
    }

    /// `(name, histogram)` pairs in stats-report order.
    pub fn all(&self) -> [(&'static str, &LatencyHistogram); 8] {
        [
            ("create_session", &self.create_session),
            ("question", &self.question),
            ("answers", &self.answers),
            ("snapshot", &self.snapshot),
            ("restore", &self.restore),
            ("delta", &self.delta),
            ("session", &self.session),
            ("stats", &self.stats),
        ]
    }

    /// The `"endpoints"` object for `GET /v1/stats`.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.all()
                .into_iter()
                .map(|(name, histogram)| (name.to_string(), histogram.summary_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarizes_to_null() {
        assert_eq!(LatencyHistogram::new().summary_json(), Json::Null);
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket of 10_000 ns
        }
        h.record(Duration::from_millis(10)); // one slow outlier
        let summary = h.summary_json();
        let get = |k: &str| summary.get(k).and_then(Json::as_num).unwrap();
        assert_eq!(get("count"), 100.0);
        // p50 within one power-of-two of 10 µs.
        assert!(
            get("p50_us") >= 10.0 && get("p50_us") <= 20.0,
            "{summary:?}"
        );
        // p99 still in the fast buckets; max sees the outlier exactly.
        assert!(get("p99_us") <= 20.0);
        assert!((get("max_us") - 10_000.0).abs() < 1.0);
        assert!(get("mean_us") > 10.0 && get("mean_us") < 200.0);
    }

    #[test]
    fn ewma_tracks_recent_latency_and_decays() {
        let h = LatencyHistogram::new();
        assert_eq!(h.ewma_us(), 0, "no samples, no estimate");
        h.record(Duration::from_millis(10));
        let seeded = h.ewma_us();
        assert!(
            (9_900..=10_000).contains(&seeded),
            "first sample seeds the estimate, got {seeded}"
        );
        // A burst of fast samples pulls the estimate down toward them.
        for _ in 0..64 {
            h.record(Duration::from_micros(100));
        }
        assert!(h.ewma_us() < 500, "decayed to {}", h.ewma_us());
        assert!(h.ewma_us() >= 90);
    }

    #[test]
    fn ewma_decay_halves_per_half_life_of_silence() {
        // The pure decay curve: exact at whole half-lives, monotone and
        // interpolated inside one, zero once the shifts run out.
        assert_eq!(decayed(800_000, 0), 800_000);
        assert_eq!(decayed(800_000, EWMA_HALF_LIFE_NS), 400_000);
        assert_eq!(decayed(800_000, 3 * EWMA_HALF_LIFE_NS), 100_000);
        let mid = decayed(800_000, EWMA_HALF_LIFE_NS / 2);
        assert!(mid < 800_000 && mid > 400_000, "got {mid}");
        assert_eq!(decayed(u64::MAX, 64 * EWMA_HALF_LIFE_NS), 0);
        assert_eq!(decayed(0, 123), 0);
    }

    #[test]
    fn a_sample_starved_estimate_recovers_below_the_shed_threshold() {
        // The latch regression: one slow request seeds the estimate past
        // the soft threshold (250 ms); with every follow-up shed, no new
        // samples arrive — the estimate must fall back on its own.
        let h = LatencyHistogram::new();
        h.record(Duration::from_millis(400));
        assert!(h.ewma_us() > 250_000, "seeded hot: {}", h.ewma_us());
        std::thread::sleep(Duration::from_millis(2 * EWMA_HALF_LIFE_NS / 1_000_000));
        let recovered = h.ewma_us();
        assert!(
            recovered < 250_000,
            "the estimate must decay below the threshold, got {recovered}"
        );
        assert!(recovered > 0, "decay is gradual, not a reset");
        // A fresh slow sample blends with the *decayed* estimate, not
        // the stale stored one.
        h.record(Duration::from_millis(400));
        assert!(h.ewma_us() < 400_000, "got {}", h.ewma_us());
    }

    #[test]
    fn metrics_table_lists_every_endpoint() {
        let m = GatewayMetrics::new();
        m.answers.record(Duration::from_micros(3));
        let json = m.to_json();
        assert_eq!(json.get("create_session"), Some(&Json::Null));
        assert!(json.get("answers").unwrap().get("count").is_some());
    }
}
