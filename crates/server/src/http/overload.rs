//! Admission control: which requests to shed, and when.
//!
//! The transport ([`jqi_net`]) owns the *mechanism* — a fast `503
//! overloaded` with `Retry-After`, decided on the framed request head
//! before any routing, body transfer, or body parsing happens — and
//! consults the gateway for the *policy* through
//! [`jqi_net::Handler::admit`]. This module is that policy: endpoint
//! priority tiers plus thresholds over the two live pressure signals,
//! the transport's aggregate worker queue depth and the per-endpoint
//! rolling latency estimate
//! ([`crate::http::metrics::LatencyHistogram::ewma_us`]).
//!
//! Latency-based shedding cannot latch: the rolling estimate only gains
//! samples from requests that are actually served, so while an endpoint
//! sheds it is sample-starved — but the estimate time-decays (halving
//! per half-life of silence, see `metrics`), so within a few half-lives
//! it falls back under the threshold and traffic is readmitted. A still
//! -slow endpoint re-raises the estimate and sheds again: a bounded
//! duty cycle, never a lockout until restart.
//!
//! The shed order is deliberate for an interactive inference service:
//! read-only traffic (`question`, `snapshot`, listings, status) is cheap
//! for the *client* to retry and goes first; mutating traffic
//! (`answers`, session creation, `restore`) carries crowd work that is
//! expensive to re-collect and sheds only past the hard thresholds; and
//! `GET /v1/stats` never sheds — blinding the operators during the
//! incident is how an overload becomes an outage.

use jqi_net::{Admission, Pressure, RequestHead};

/// The priority tier a request belongs to, lowest-priority first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointClass {
    /// Read-only traffic: shed first (past the *soft* thresholds).
    ReadOnly,
    /// Mutating traffic: shed only past the *hard* thresholds.
    Mutating,
    /// Observability (`GET /v1/stats`): never shed.
    Control,
}

/// Classifies a request into its shed tier without routing it.
pub fn classify(method: &str, path: &str) -> EndpointClass {
    if path == "/v1/stats" {
        return EndpointClass::Control;
    }
    // The read/write split tracks the HTTP method exactly: every
    // read-only endpoint (question, snapshot, session status, listings)
    // is a GET; every mutating one (create, answers, restore, delete)
    // is not.
    if method == "GET" {
        EndpointClass::ReadOnly
    } else {
        EndpointClass::Mutating
    }
}

/// Shedding thresholds. A request sheds when its tier's queue-depth
/// *or* rolling-latency threshold is exceeded.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Queue depth above which [`EndpointClass::ReadOnly`] sheds.
    pub queue_soft: usize,
    /// Queue depth above which [`EndpointClass::Mutating`] sheds too.
    pub queue_hard: usize,
    /// Per-endpoint rolling latency (µs) above which read-only sheds.
    pub latency_soft_us: u64,
    /// Per-endpoint rolling latency (µs) above which mutating sheds.
    pub latency_hard_us: u64,
    /// The `Retry-After` hint (seconds) on shed responses.
    pub retry_after_s: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            // Depth is measured in dispatched-but-unfinished wake-ups;
            // 4×/16× the default 8-worker pool leaves headroom for
            // bursts while bounding the queue a request waits behind.
            queue_soft: 32,
            queue_hard: 128,
            latency_soft_us: 250_000,
            latency_hard_us: 1_000_000,
            retry_after_s: 1,
        }
    }
}

impl OverloadConfig {
    /// The admission decision for one request, given its framed head,
    /// the transport pressure, and the endpoint's rolling latency
    /// estimate (already time-decayed by the histogram, so a shed
    /// endpoint's estimate self-recovers — see the module docs).
    pub fn admit(&self, head: &RequestHead, pressure: Pressure, ewma_us: u64) -> Admission {
        let shed = Admission::Shed {
            retry_after_s: self.retry_after_s,
        };
        match classify(&head.method, &head.path) {
            EndpointClass::Control => Admission::Accept,
            EndpointClass::ReadOnly
                if pressure.queue_depth > self.queue_soft || ewma_us > self.latency_soft_us =>
            {
                shed
            }
            EndpointClass::Mutating
                if pressure.queue_depth > self.queue_hard || ewma_us > self.latency_hard_us =>
            {
                shed
            }
            _ => Admission::Accept,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str) -> RequestHead {
        RequestHead::synthetic(method, path)
    }

    fn pressure(queue_depth: usize) -> Pressure {
        Pressure {
            queue_depth,
            open_connections: 10,
            workers: 8,
        }
    }

    #[test]
    fn tiers_follow_the_documented_shed_order() {
        assert_eq!(classify("GET", "/v1/stats"), EndpointClass::Control);
        assert_eq!(
            classify("GET", "/v1/universes/u/sessions/1/question"),
            EndpointClass::ReadOnly
        );
        assert_eq!(
            classify("GET", "/v1/universes/u/sessions/1/snapshot"),
            EndpointClass::ReadOnly
        );
        assert_eq!(classify("GET", "/v1/universes"), EndpointClass::ReadOnly);
        assert_eq!(
            classify("POST", "/v1/universes/u/sessions/1/answers"),
            EndpointClass::Mutating
        );
        assert_eq!(
            classify("POST", "/v1/universes/u/sessions"),
            EndpointClass::Mutating
        );
        assert_eq!(
            classify("POST", "/v1/universes/u/restore"),
            EndpointClass::Mutating
        );
        assert_eq!(
            classify("DELETE", "/v1/universes/u/sessions/1"),
            EndpointClass::Mutating
        );
    }

    #[test]
    fn read_only_sheds_before_mutating_and_stats_never_does() {
        let config = OverloadConfig {
            queue_soft: 4,
            queue_hard: 16,
            ..OverloadConfig::default()
        };
        let question = request("GET", "/v1/universes/u/sessions/1/question");
        let answers = request("POST", "/v1/universes/u/sessions/1/answers");
        let stats = request("GET", "/v1/stats");

        // Calm: everyone admitted.
        for r in [&question, &answers, &stats] {
            assert_eq!(config.admit(r, pressure(2), 0), Admission::Accept);
        }
        // Past soft: reads shed, writes and stats do not.
        assert!(matches!(
            config.admit(&question, pressure(8), 0),
            Admission::Shed { retry_after_s: 1 }
        ));
        assert_eq!(config.admit(&answers, pressure(8), 0), Admission::Accept);
        assert_eq!(config.admit(&stats, pressure(8), 0), Admission::Accept);
        // Past hard: writes shed too; stats still answers.
        assert!(matches!(
            config.admit(&answers, pressure(20), 0),
            Admission::Shed { .. }
        ));
        assert_eq!(config.admit(&stats, pressure(20), 0), Admission::Accept);
    }

    #[test]
    fn rolling_latency_sheds_even_at_low_queue_depth() {
        let config = OverloadConfig::default();
        let question = request("GET", "/v1/universes/u/sessions/1/question");
        let answers = request("POST", "/v1/universes/u/sessions/1/answers");
        // A slow endpoint sheds its own readers first.
        assert!(matches!(
            config.admit(&question, pressure(1), 300_000),
            Admission::Shed { .. }
        ));
        assert_eq!(
            config.admit(&answers, pressure(1), 300_000),
            Admission::Accept
        );
        assert!(matches!(
            config.admit(&answers, pressure(1), 1_500_000),
            Admission::Shed { .. }
        ));
    }
}
