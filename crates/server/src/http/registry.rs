//! Multi-universe tenancy: the table mapping universe ids to serving
//! [`SessionManager`]s.
//!
//! One gateway process hosts many universes — each with its own
//! immutable instance, session fleet, and (optionally) its own
//! durability directory. The registry is the routing table: request
//! paths carry a universe id (`/v1/universes/{uid}/…`), and the gateway
//! resolves it here before touching any session.
//!
//! A universe whose startup recovery **failed** is not silently absent —
//! it is registered as [`UniverseEntry::Failed`] with the recovery error
//! preserved, so requests against it answer `503` with the real cause
//! (e.g. a WAL stamped by a different universe fingerprint) instead of a
//! misleading `404`. Failing loudly over the wire is the whole point of
//! the fingerprint checks; swallowing them at the routing layer would
//! undo it.

use crate::durability::{DurabilityConfig, DurabilityError, RecoveryReport};
use crate::manager::{ServerConfig, SessionManager};
use jqi_core::Universe;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// What the registry knows about one universe id.
#[derive(Clone)]
pub enum UniverseEntry {
    /// Healthy: requests route to this manager.
    Serving(Arc<SessionManager>),
    /// Startup recovery failed; the error is served as `503` until an
    /// operator re-registers the universe.
    Failed {
        /// The preserved recovery error, verbatim.
        error: String,
    },
}

impl std::fmt::Debug for UniverseEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UniverseEntry::Serving(m) => f
                .debug_struct("Serving")
                .field(
                    "fingerprint",
                    &format_args!("{:016x}", m.universe_fingerprint()),
                )
                .finish(),
            UniverseEntry::Failed { error } => {
                f.debug_struct("Failed").field("error", error).finish()
            }
        }
    }
}

/// A universe id was rejected or collided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The id is already registered (serving or failed).
    Duplicate(String),
    /// The id is empty, too long, or contains characters outside
    /// `[A-Za-z0-9_-]` — ids are path segments and directory names, so
    /// the alphabet is restricted up front.
    InvalidId(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(uid) => write!(f, "universe {uid:?} is already registered"),
            RegistryError::InvalidId(uid) => write!(
                f,
                "invalid universe id {uid:?}: 1-64 characters of [A-Za-z0-9_-]"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Validates a universe id (also used by the gateway to pre-screen path
/// segments).
pub fn valid_universe_id(uid: &str) -> bool {
    !uid.is_empty()
        && uid.len() <= 64
        && uid
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// The id → universe routing table. Cheap to clone behind an `Arc`;
/// reads are lock-free in spirit (a short `RwLock` read).
#[derive(Debug, Default)]
pub struct UniverseRegistry {
    entries: RwLock<HashMap<String, UniverseEntry>>,
}

impl UniverseRegistry {
    /// An empty registry.
    pub fn new() -> UniverseRegistry {
        UniverseRegistry::default()
    }

    /// Registers an in-memory (non-durable) universe under `uid`.
    pub fn register(&self, uid: &str, manager: Arc<SessionManager>) -> Result<(), RegistryError> {
        self.insert(uid, UniverseEntry::Serving(manager))
    }

    /// Opens (or recovers) a **durable** universe under `uid`, with its
    /// WAL and spill segments rooted at `dir`.
    ///
    /// On a fresh directory this creates an empty durable fleet; on an
    /// existing one it replays the WAL. Either way the storage headers
    /// are checked against `universe.fingerprint()` — a directory written
    /// by a *different* universe makes recovery fail, and the failure is
    /// **registered**: the uid resolves to [`UniverseEntry::Failed`] and
    /// every request against it answers `503` carrying this error.
    pub fn open_durable(
        &self,
        uid: &str,
        universe: Arc<Universe>,
        config: ServerConfig,
        durability: DurabilityConfig,
        dir: &Path,
    ) -> Result<(Arc<SessionManager>, RecoveryReport), DurabilityError> {
        // Reserve the slot first so a concurrent open of the same uid
        // cannot race two recoveries of one directory.
        if let Err(e) = self.insert(
            uid,
            UniverseEntry::Failed {
                error: "recovery in progress".into(),
            },
        ) {
            return Err(DurabilityError::Io(e.to_string()));
        }
        match SessionManager::recover(universe, config, durability, dir) {
            Ok((manager, report)) => {
                let manager = Arc::new(manager);
                self.entries.write().insert(
                    uid.to_string(),
                    UniverseEntry::Serving(Arc::clone(&manager)),
                );
                Ok((manager, report))
            }
            Err(error) => {
                self.entries.write().insert(
                    uid.to_string(),
                    UniverseEntry::Failed {
                        error: error.to_string(),
                    },
                );
                Err(error)
            }
        }
    }

    fn insert(&self, uid: &str, entry: UniverseEntry) -> Result<(), RegistryError> {
        if !valid_universe_id(uid) {
            return Err(RegistryError::InvalidId(uid.to_string()));
        }
        let mut entries = self.entries.write();
        if entries.contains_key(uid) {
            return Err(RegistryError::Duplicate(uid.to_string()));
        }
        entries.insert(uid.to_string(), entry);
        Ok(())
    }

    /// Resolves a universe id.
    pub fn lookup(&self, uid: &str) -> Option<UniverseEntry> {
        self.entries.read().get(uid).cloned()
    }

    /// Drops a universe from the table (its sessions die with the
    /// manager's last `Arc`). Returns whether the uid existed.
    pub fn remove(&self, uid: &str) -> bool {
        self.entries.write().remove(uid).is_some()
    }

    /// All registered ids, sorted (for deterministic stats output).
    pub fn uids(&self) -> Vec<String> {
        let mut uids: Vec<String> = self.entries.read().keys().cloned().collect();
        uids.sort();
        uids
    }

    /// Number of registered universes (serving + failed).
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::flight_hotel;

    fn manager() -> Arc<SessionManager> {
        let universe = Arc::new(Universe::build(flight_hotel()));
        Arc::new(SessionManager::new(universe, ServerConfig::default()))
    }

    #[test]
    fn register_lookup_remove_round_trip() {
        let registry = UniverseRegistry::new();
        registry.register("flights", manager()).unwrap();
        assert!(matches!(
            registry.lookup("flights"),
            Some(UniverseEntry::Serving(_))
        ));
        assert!(registry.lookup("hotels").is_none());
        assert_eq!(registry.uids(), vec!["flights".to_string()]);
        assert!(registry.remove("flights"));
        assert!(!registry.remove("flights"));
        assert!(registry.is_empty());
    }

    #[test]
    fn duplicate_and_invalid_ids_are_rejected() {
        let registry = UniverseRegistry::new();
        registry.register("u1", manager()).unwrap();
        assert_eq!(
            registry.register("u1", manager()),
            Err(RegistryError::Duplicate("u1".into()))
        );
        for bad in ["", "has space", "a/b", "x".repeat(65).as_str()] {
            assert_eq!(
                registry.register(bad, manager()),
                Err(RegistryError::InvalidId(bad.into()))
            );
        }
    }

    #[test]
    fn failed_recovery_is_registered_not_forgotten() {
        use crate::durability::DurabilityConfig;
        use jqi_core::paper::example_2_1;

        let dir = std::env::temp_dir().join(format!("jqi-registry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Write a durable directory under universe A…
        let registry = UniverseRegistry::new();
        let a = Arc::new(Universe::build(flight_hotel()));
        let (m, _) = registry
            .open_durable(
                "tenant",
                Arc::clone(&a),
                ServerConfig::default(),
                DurabilityConfig::default(),
                &dir,
            )
            .unwrap();
        m.create_session(jqi_core::StrategyConfig::Bu).unwrap();
        m.flush_wal().unwrap();
        drop(m);

        // …then try to serve the same directory as universe B.
        let registry2 = UniverseRegistry::new();
        let b = Arc::new(Universe::build(example_2_1()));
        let err = registry2
            .open_durable(
                "tenant",
                b,
                ServerConfig::default(),
                DurabilityConfig::default(),
                &dir,
            )
            .unwrap_err();
        assert!(
            matches!(err, DurabilityError::FingerprintMismatch { .. }),
            "got {err}"
        );
        match registry2.lookup("tenant") {
            Some(UniverseEntry::Failed { error }) => {
                assert!(error.contains("fingerprint mismatch"), "got {error:?}")
            }
            other => panic!("expected Failed entry, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
