//! The HTTP/JSON front end: multi-universe routing over `jqi_net`.
//!
//! The paper's interaction loop is a service protocol — questions go out
//! to (crowd) workers, labeled answers come back, possibly batched and
//! out of order. This module exposes that loop over the wire:
//!
//! * [`UniverseRegistry`] — multi-tenancy: one process hosts many
//!   universes, each with its own [`crate::SessionManager`] and
//!   (optionally) its own durability directory. A universe whose startup
//!   recovery failed is *kept* in the table so requests against it
//!   answer `503` with the real cause — a WAL stamped by a different
//!   [`jqi_core::Universe::fingerprint`] fails loudly over HTTP instead
//!   of replaying garbage.
//! * [`Gateway`] — the [`jqi_net::Handler`] mapping routes under
//!   `/v1/universes/{uid}/…` to session calls, with one JSON error shape
//!   and per-endpoint live latency histograms ([`GatewayMetrics`]).
//! * [`serve`] — one call to bind the whole stack to a socket address.
//!
//! The endpoint contract (schemas, curl examples, error codes) is
//! documented in `docs/API.md`; the layering in `docs/ARCHITECTURE.md`.

pub mod gateway;
pub mod metrics;
pub mod overload;
pub mod registry;

pub use gateway::{manager_stats_json, Gateway, MAX_ANSWER_BATCH};
pub use metrics::{GatewayMetrics, LatencyHistogram};
pub use overload::{classify, EndpointClass, OverloadConfig};
pub use registry::{valid_universe_id, RegistryError, UniverseEntry, UniverseRegistry};

use std::net::ToSocketAddrs;
use std::sync::Arc;

/// Binds an HTTP server serving `registry` on `addr`.
///
/// Returns the running [`jqi_net::Server`] and the [`Gateway`] (for its
/// live metrics). The server stops when the returned handle is dropped.
///
/// ```no_run
/// use jqi_core::{paper::flight_hotel, Universe};
/// use jqi_server::http::{serve, UniverseRegistry};
/// use jqi_server::{ServerConfig, SessionManager};
/// use std::sync::Arc;
///
/// let registry = Arc::new(UniverseRegistry::new());
/// let universe = Arc::new(Universe::build(flight_hotel()));
/// let manager = SessionManager::new(universe, ServerConfig::default());
/// registry.register("demo", Arc::new(manager)).unwrap();
/// let (server, _gateway) = serve(
///     Arc::clone(&registry),
///     "127.0.0.1:0",
///     jqi_net::NetConfig::default(),
/// )
/// .unwrap();
/// println!("serving on http://{}", server.local_addr());
/// ```
pub fn serve(
    registry: Arc<UniverseRegistry>,
    addr: impl ToSocketAddrs,
    config: jqi_net::NetConfig,
) -> std::io::Result<(jqi_net::Server, Arc<Gateway>)> {
    serve_with(registry, addr, config, OverloadConfig::default())
}

/// [`serve`] with explicit admission-control thresholds — the bench's
/// `overload` phase and the chaos tests tighten these to force shedding
/// at small scale.
pub fn serve_with(
    registry: Arc<UniverseRegistry>,
    addr: impl ToSocketAddrs,
    config: jqi_net::NetConfig,
    overload: OverloadConfig,
) -> std::io::Result<(jqi_net::Server, Arc<Gateway>)> {
    let gateway = Arc::new(Gateway::with_overload(registry, overload));
    let handler: Arc<dyn jqi_net::Handler> = Arc::clone(&gateway) as Arc<dyn jqi_net::Handler>;
    let server = jqi_net::Server::bind(addr, handler, config)?;
    gateway.attach_transport(server.stats_handle());
    Ok((server, gateway))
}
