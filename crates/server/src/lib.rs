//! A concurrent multi-session inference service over one shared universe.
//!
//! The paper's interaction model (Algorithm 1) is aimed at non-expert
//! users behind a UI or a crowdsourcing task queue — many users, each with
//! their own goal query, labeling tuples of the *same* instance. This
//! crate turns the single-threaded [`jqi_core::session::Session`] loop
//! into a service:
//!
//! * [`SessionManager`] — a sharded, thread-safe session table over an
//!   immutable `Arc<Universe>`; create/answer/drop sessions from any
//!   thread, with per-session mutexes so distinct sessions never contend.
//! * class-addressed, batched answers — answers may arrive asynchronously,
//!   out of order, and in batches ([`SessionManager::answer_batch`] folds a
//!   whole batch into the inference state under one lock acquisition);
//!   agreeing duplicates from concurrent crowd workers are idempotent.
//! * [`SessionSnapshot`] — snapshot/restore by deterministic replay:
//!   persist a session as its strategy config + label sequence (a few
//!   bytes per answer, JSON), rebuild it bit-for-bit after a process
//!   restart.
//! * a **hibernation tier** — resident sessions idle past a TTL are parked
//!   down to their replay log (strategy config + label history, tens of
//!   bytes) by [`SessionManager::hibernate_idle`] / the configured
//!   [`SessionManager::sweep`], and re-materialize lazily on the next
//!   touch via one replay `apply_batch`. Combined with the universe-level
//!   decision cache (warm fleets answer strategy questions from the shared
//!   cache), millions of parked sessions fit in memory and waking one is
//!   microseconds.
//! * a **durability tier** ([`durability`]) — an fsync'd,
//!   CRC32-checksummed write-ahead log of every session mutation (group
//!   commit amortizes the fsyncs), spill segment files that take parked
//!   sessions out of RAM entirely past a watermark, and
//!   [`SessionManager::recover`], which rebuilds the whole fleet after a
//!   `kill -9` — truncating a torn WAL tail, failing loudly on mid-log
//!   corruption, and refusing state stamped by a different universe
//!   ([`jqi_core::Universe::fingerprint`]).
//!
//! # Example: two users, one universe
//!
//! ```
//! use jqi_core::paper::flight_hotel;
//! use jqi_core::{Label, StrategyConfig, Universe};
//! use jqi_server::{ServerConfig, SessionManager, SessionSnapshot};
//! use std::sync::Arc;
//!
//! let universe = Arc::new(Universe::build(flight_hotel()));
//! let manager = SessionManager::new(Arc::clone(&universe), ServerConfig::default());
//!
//! // User A wants Q2 (city AND discount airline must match), via L2S.
//! let a = manager.create_session(StrategyConfig::Lks { depth: 2 }).unwrap();
//! while let Some(q) = manager.next_question(a).unwrap() {
//!     let v = q.values(&universe);
//!     let keep = v[1] == v[3] && v[2] == v[4];
//!     let label = if keep { Label::Positive } else { Label::Negative };
//!     manager.answer(a, q.class, label).unwrap();
//! }
//! let theta = manager.inferred_predicate(a).unwrap();
//! assert_eq!(
//!     universe.instance().predicate_string(&theta),
//!     "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}"
//! );
//!
//! // User B's session survives a "restart" as a tiny JSON document.
//! let b = manager.create_session(StrategyConfig::Bu).unwrap();
//! let q = manager.next_question(b).unwrap().unwrap();
//! manager.answer(b, q.class, Label::Negative).unwrap();
//! let json = manager.snapshot(b).unwrap().to_json_string();
//!
//! let reborn = SessionManager::new(universe, ServerConfig::default());
//! let restored = SessionSnapshot::from_json(&json).unwrap();
//! assert_eq!(reborn.restore(&restored).unwrap(), b);
//! assert_eq!(reborn.interactions(b).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod durability;
pub mod http;
pub mod json;
pub mod manager;
pub mod snapshot;

pub use durability::{DurabilityConfig, DurabilityError, DurabilityStats, RecoveryReport};
pub use http::{Gateway, UniverseRegistry};
pub use manager::{
    ManagerStats, MigrationReport, Result, ServerConfig, ServerError, SessionId, SessionManager,
    SweepReport,
};
pub use snapshot::{SessionSnapshot, SnapshotError, SNAPSHOT_FORMAT};
