//! Certain and uninformative tuples (§3.4).
//!
//! A tuple is *uninformative* w.r.t. a sample `S` if labeling it cannot
//! shrink the set `C(S)` of consistent predicates. The paper proves
//! (Lemma 3.2) that the uninformative examples are exactly the *certain*
//! ones, which admit goal-independent PTIME characterizations:
//!
//! * **Lemma 3.3** — `t ∈ Cert⁺(S)` iff `T(S⁺) ⊆ T(t)`.
//! * **Lemma 3.4** — `t ∈ Cert⁻(S)` iff `∃ t′ ∈ S⁻ : T(S⁺) ∩ T(t) ⊆ T(t′)`.
//!
//! Together these give Theorem 3.5: testing informativeness is in PTIME.
//! This module also provides the *weighted uninformative-tuple count* that
//! the lookahead strategies' entropy computation (§4.4) is built on.

use crate::sample::{Label, Sample};
use crate::universe::{ClassId, Universe};

/// How entropy counts tuples that become uninformative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountMode {
    /// Count individual product tuples (each class weighted by its
    /// multiplicity). This matches Figure 5 of the paper, where `u⁺`/`u⁻`
    /// count tuples of the Cartesian product.
    #[default]
    Tuples,
    /// Count T-equivalence classes once each — an ablation showing that the
    /// strategies' decisions rarely change, since same-signature tuples are
    /// interchangeable.
    Classes,
}

/// Lemma 3.3: class `c` is certainly selected by every consistent predicate.
#[inline]
pub fn is_certain_positive(universe: &Universe, sample: &Sample, c: ClassId) -> bool {
    sample.t_pos().is_subset(universe.sig(c))
}

/// Lemma 3.4: class `c` is certainly rejected by every consistent predicate.
#[inline]
pub fn is_certain_negative(universe: &Universe, sample: &Sample, c: ClassId) -> bool {
    let tpos = sample.t_pos();
    let sig = universe.sig(c);
    sample
        .negatives()
        .iter()
        .any(|&g| tpos.intersection_is_subset(sig, universe.sig(g)))
}

/// The certain label of class `c`, if any.
pub fn certain_label(universe: &Universe, sample: &Sample, c: ClassId) -> Option<Label> {
    if is_certain_positive(universe, sample, c) {
        Some(Label::Positive)
    } else if is_certain_negative(universe, sample, c) {
        Some(Label::Negative)
    } else {
        None
    }
}

/// A tuple is *informative* iff it is unlabeled and not certain (§3.4).
#[inline]
pub fn is_informative(universe: &Universe, sample: &Sample, c: ClassId) -> bool {
    sample.label(c).is_none()
        && !is_certain_positive(universe, sample, c)
        && !is_certain_negative(universe, sample, c)
}

/// All informative classes, in class-id order (deterministic).
pub fn informative_classes(universe: &Universe, sample: &Sample) -> Vec<ClassId> {
    (0..universe.num_classes())
        .filter(|&c| is_informative(universe, sample, c))
        .collect()
}

/// Whether any informative tuple remains — the negation of the halt
/// condition Γ of Algorithm 1.
pub fn any_informative(universe: &Universe, sample: &Sample) -> bool {
    (0..universe.num_classes()).any(|c| is_informative(universe, sample, c))
}

/// Weighted count of uninformative tuples under `mode`.
///
/// For a labeled class, the labeled representative itself is *not* counted
/// (it is part of `S`, not of `Uninf(S)` as used by Figure 5), but the
/// remaining `count − 1` tuples of its class are: they are certain.
/// For an unlabeled certain class the whole class counts.
///
/// The entropy quantities `u^α_{t,S} = |Uninf(S ∪ {(t,α)}) \ Uninf(S)|`
/// are computed as differences of this function, which is valid because
/// uninformativeness is monotone in `S` for consistent samples.
pub fn uninformative_count(universe: &Universe, sample: &Sample, mode: CountMode) -> u64 {
    let mut total = 0u64;
    for c in 0..universe.num_classes() {
        let weight = match mode {
            CountMode::Tuples => universe.count(c),
            CountMode::Classes => 1,
        };
        if sample.label(c).is_some() {
            // The labeled tuple itself is an example, not an uninformative
            // tuple; its classmates are uninformative.
            total += weight.saturating_sub(1);
        } else if is_certain_positive(universe, sample, c)
            || is_certain_negative(universe, sample, c)
        {
            total += weight;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    fn class_of(u: &Universe, ri: usize, pi: usize) -> ClassId {
        u.class_of(ri, pi).unwrap()
    }

    /// §3.4's example: with goal θG = {(A2,B3)} and S = {((t2,t2'),+),
    /// ((t1,t3'),−)}, the examples ((t4,t1'),+) and ((t2,t1'),−) are
    /// uninformative.
    #[test]
    fn section_3_4_uninformative_examples() {
        let u = Universe::build(example_2_1());
        let mut s = crate::Sample::new(&u);
        s.add(&u, class_of(&u, 1, 1), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 0, 2), Label::Negative).unwrap();
        assert!(s.is_consistent(&u));
        // (t4,t1') has T = {(A1,B1),(A1,B2),(A2,B3)} ⊇ T(S⁺) = {(A1,B1),(A2,B3)}.
        let c41 = class_of(&u, 3, 0);
        assert!(is_certain_positive(&u, &s, c41));
        assert_eq!(certain_label(&u, &s, c41), Some(Label::Positive));
        // (t2,t1') has T = {(A1,B3)}; T(S⁺) ∩ T = ∅ ⊆ T(t1,t3') = {(A1,B2),(A1,B3)}.
        let c21 = class_of(&u, 1, 0);
        assert!(is_certain_negative(&u, &s, c21));
        assert_eq!(certain_label(&u, &s, c21), Some(Label::Negative));
        assert!(!is_informative(&u, &s, c41));
        assert!(!is_informative(&u, &s, c21));
    }

    #[test]
    fn empty_sample_everything_informative_unless_omega_signature() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        // Example 2.1 has no tuple with T = Ω, so all 12 classes are informative.
        assert_eq!(informative_classes(&u, &s).len(), 12);
        assert!(any_informative(&u, &s));
        assert_eq!(uninformative_count(&u, &s, CountMode::Tuples), 0);
    }

    #[test]
    fn omega_signature_tuple_is_never_informative() {
        use jqi_relation::{InstanceBuilder, Value};
        // A product tuple with all values equal has T = Ω: every predicate
        // selects it, so even with an empty sample it is certain-positive.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(5)]);
        b.row_p(&[Value::int(5)]);
        let u = Universe::build(b.build().unwrap());
        let s = crate::Sample::new(&u);
        assert!(is_certain_positive(&u, &s, 0));
        assert!(!is_informative(&u, &s, 0));
        assert!(!any_informative(&u, &s));
    }

    #[test]
    fn labeling_a_class_makes_it_uninformative() {
        let u = Universe::build(example_2_1());
        let mut s = crate::Sample::new(&u);
        let c = class_of(&u, 0, 0);
        assert!(is_informative(&u, &s, c));
        s.add(&u, c, Label::Positive).unwrap();
        assert!(!is_informative(&u, &s, c));
    }

    /// Lemma 3.2 (Uninf = Cert) checked semantically on the small instance:
    /// a class is certain iff every predicate consistent with S gives it the
    /// same membership status, enumerated by brute force over P(Ω).
    #[test]
    fn certain_matches_brute_force_enumeration() {
        let u = Universe::build(example_2_1());
        let nbits = u.omega_len();
        assert!(nbits <= 20, "test requires small Ω");
        let mut s = crate::Sample::new(&u);
        s.add(&u, class_of(&u, 1, 1), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 0, 2), Label::Negative).unwrap();

        // Enumerate all θ ⊆ Ω consistent with s.
        let consistent: Vec<jqi_relation::BitSet> = (0u64..(1 << nbits))
            .map(|mask| {
                jqi_relation::BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1))
            })
            .filter(|theta| s.admits(&u, theta))
            .collect();
        assert!(!consistent.is_empty());

        for c in 0..u.num_classes() {
            let sig = u.sig(c);
            let always_in = consistent.iter().all(|t| t.is_subset(sig));
            let never_in = consistent.iter().all(|t| !t.is_subset(sig));
            assert_eq!(
                is_certain_positive(&u, &s, c),
                always_in,
                "Cert⁺ mismatch for class {c}"
            );
            assert_eq!(
                is_certain_negative(&u, &s, c),
                never_in,
                "Cert⁻ mismatch for class {c}"
            );
        }
    }

    #[test]
    fn uninformative_count_modes() {
        use jqi_relation::{InstanceBuilder, Value};
        // Two R rows with value 1 → the {A=B} class has multiplicity 2.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_r(&[Value::int(1)]);
        b.row_r(&[Value::int(2)]);
        b.row_p(&[Value::int(1)]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 2);
        let mut s = crate::Sample::new(&u);
        let c_match = (0..2).find(|&c| !u.sig(c).is_empty()).unwrap();
        s.add(&u, c_match, Label::Positive).unwrap();
        // Tuples mode: the classmate of the labeled tuple is uninformative
        // (1), and the ∅-class is NOT certain (T(S⁺)={A=B} ⊄ ∅, no negatives).
        assert_eq!(uninformative_count(&u, &s, CountMode::Tuples), 1);
        // Classes mode: labeled class contributes 0 (weight 1 − 1).
        assert_eq!(uninformative_count(&u, &s, CountMode::Classes), 0);
    }
}
