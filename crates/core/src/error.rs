//! Error types for the inference core.

use crate::sample::Label;
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, InferenceError>;

/// Errors surfaced by the inference engine and session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The user/oracle produced a label making the sample inconsistent,
    /// i.e. no equijoin predicate selects all positives and no negative
    /// (Algorithm 1, lines 6–7).
    InconsistentSample {
        /// The class whose label broke consistency.
        class: usize,
    },
    /// `Session::answer` was called without a pending candidate.
    NoPendingCandidate,
    /// `Session::next` was called while a candidate was still unanswered.
    CandidateAlreadyPending,
    /// A class id was out of range for the universe.
    ClassOutOfBounds {
        /// The offending class id.
        class: usize,
        /// Number of classes in the universe.
        len: usize,
    },
    /// A class was labeled twice.
    AlreadyLabeled {
        /// The class that already carries a label.
        class: usize,
    },
    /// A batched answer contradicted the label already recorded for the
    /// class (batch application is idempotent for *agreeing* duplicates).
    ConflictingLabel {
        /// The class answered twice.
        class: usize,
        /// The label already recorded.
        existing: Label,
        /// The contradicting label the batch carried.
        conflicting: Label,
    },
    /// The minimax-optimal strategy refused to run on a universe this large.
    UniverseTooLarge {
        /// Number of informative classes found.
        classes: usize,
        /// Configured limit.
        limit: usize,
    },
    /// An error from the relational substrate.
    Relation(jqi_relation::RelationError),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::InconsistentSample { class } => write!(
                f,
                "sample became inconsistent after labeling class {class}: no equijoin predicate is consistent with the labels"
            ),
            InferenceError::NoPendingCandidate => {
                write!(f, "no candidate is pending; call next() first")
            }
            InferenceError::CandidateAlreadyPending => {
                write!(f, "a candidate is already pending; answer it before asking for another")
            }
            InferenceError::ClassOutOfBounds { class, len } => {
                write!(f, "class {class} out of bounds for universe with {len} classes")
            }
            InferenceError::AlreadyLabeled { class } => {
                write!(f, "class {class} is already labeled")
            }
            InferenceError::ConflictingLabel {
                class,
                existing,
                conflicting,
            } => write!(
                f,
                "class {class} is already labeled {existing} but the batch answers {conflicting}"
            ),
            InferenceError::UniverseTooLarge { classes, limit } => write!(
                f,
                "minimax-optimal strategy limited to {limit} informative classes, found {classes}"
            ),
            InferenceError::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for InferenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferenceError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<jqi_relation::RelationError> for InferenceError {
    fn from(e: jqi_relation::RelationError) -> Self {
        InferenceError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_class() {
        let e = InferenceError::InconsistentSample { class: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn relation_error_is_wrapped() {
        let re = jqi_relation::RelationError::MissingRelation { which: "R" };
        let e: InferenceError = re.clone().into();
        assert_eq!(e, InferenceError::Relation(re));
        assert!(std::error::Error::source(&e).is_some());
    }
}
