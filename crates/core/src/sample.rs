//! Samples: labeled examples and consistency checking (§3.1).
//!
//! A sample `S ⊆ D × {+, −}` is stored at class granularity: labeling a
//! product tuple labels its T-equivalence class, because every other tuple
//! of the class immediately becomes certain (see [`crate::universe`]).
//! The sample maintains `T(S⁺)` — the most specific predicate selecting all
//! positive examples — incrementally, which makes consistency checking
//! (§3.1) linear in the number of negative examples.

use crate::error::{InferenceError, Result};
use crate::universe::{ClassId, Universe};
use jqi_relation::BitSet;

/// A user label for one example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The user wants this tuple in the join result.
    Positive,
    /// The user does not want this tuple.
    Negative,
}

impl Label {
    /// The two labels, in the `{+, −}` order the paper iterates them.
    pub const BOTH: [Label; 2] = [Label::Positive, Label::Negative];

    /// The other label.
    pub fn flip(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Positive => write!(f, "+"),
            Label::Negative => write!(f, "−"),
        }
    }
}

/// A set of labeled examples over a [`Universe`], with `T(S⁺)` maintained
/// incrementally.
#[derive(Debug, Clone)]
pub struct Sample {
    labels: Vec<Option<Label>>,
    pos: Vec<ClassId>,
    neg: Vec<ClassId>,
    /// `T(S⁺)`: intersection of the signatures of all positive classes;
    /// `Ω` while there is no positive example.
    tpos: BitSet,
}

impl Sample {
    /// The empty sample over `universe`.
    pub fn new(universe: &Universe) -> Self {
        Sample {
            labels: vec![None; universe.num_classes()],
            pos: Vec::new(),
            neg: Vec::new(),
            tpos: universe.omega(),
        }
    }

    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether no example has been labeled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label of class `c`, if any.
    #[inline]
    pub fn label(&self, c: ClassId) -> Option<Label> {
        self.labels[c]
    }

    /// Positive classes, in labeling order.
    pub fn positives(&self) -> &[ClassId] {
        &self.pos
    }

    /// Negative classes, in labeling order.
    pub fn negatives(&self) -> &[ClassId] {
        &self.neg
    }

    /// `T(S⁺)`, the most specific predicate selecting every positive
    /// example. Equals `Ω` while `S⁺ = ∅` (§3.3: with only negative labels
    /// the inferred, instance-equivalent predicate is Ω).
    pub fn t_pos(&self) -> &BitSet {
        &self.tpos
    }

    /// Adds a label, updating `T(S⁺)`. Rejects double labeling.
    ///
    /// This does *not* check consistency — see [`Sample::is_consistent`] /
    /// [`Sample::check_consistent`], mirroring Algorithm 1 which labels
    /// first (line 5) and verifies afterwards (line 6).
    pub fn add(&mut self, universe: &Universe, c: ClassId, label: Label) -> Result<()> {
        if c >= self.labels.len() {
            return Err(InferenceError::ClassOutOfBounds {
                class: c,
                len: self.labels.len(),
            });
        }
        if self.labels[c].is_some() {
            return Err(InferenceError::AlreadyLabeled { class: c });
        }
        self.labels[c] = Some(label);
        match label {
            Label::Positive => {
                self.tpos.intersect_with(universe.sig(c));
                self.pos.push(c);
            }
            Label::Negative => self.neg.push(c),
        }
        Ok(())
    }

    /// §3.1 consistency check: there exists a consistent equijoin predicate
    /// iff `R ⋈_{T(S⁺)} P` selects no negative example, i.e. iff no negative
    /// class signature contains `T(S⁺)`.
    pub fn is_consistent(&self, universe: &Universe) -> bool {
        self.neg
            .iter()
            .all(|&g| !self.tpos.is_subset(universe.sig(g)))
    }

    /// Like [`Sample::is_consistent`] but returns the most specific
    /// consistent predicate `T(S⁺)` on success.
    pub fn check_consistent(&self, universe: &Universe) -> Option<BitSet> {
        if self.is_consistent(universe) {
            Some(self.tpos.clone())
        } else {
            None
        }
    }

    /// Whether the predicate `theta` is consistent with this sample:
    /// it selects all positive classes and no negative class.
    pub fn admits(&self, universe: &Universe, theta: &BitSet) -> bool {
        self.pos.iter().all(|&c| theta.is_subset(universe.sig(c)))
            && self.neg.iter().all(|&c| !theta.is_subset(universe.sig(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    fn class_of(u: &Universe, ri: usize, pi: usize) -> ClassId {
        u.class_of(ri, pi).unwrap()
    }

    /// Example 3.1: S0 with positives {(t2,t2'),(t4,t1')} and negative
    /// {(t3,t2')} is consistent, with most specific predicate
    /// θ0 = {(A1,B1),(A2,B3)}.
    #[test]
    fn example_3_1_consistent_sample() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        s.add(&u, class_of(&u, 1, 1), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 3, 0), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 2, 1), Label::Negative).unwrap();
        let theta = s.check_consistent(&u).expect("S0 is consistent");
        let inst = u.instance();
        let expect = crate::predicate_from_names(inst, &[("A1", "B1"), ("A2", "B3")]).unwrap();
        assert_eq!(theta, expect);
        // θ0' = {(A1,B1)} is also consistent (but not most specific).
        let theta_p = crate::predicate_from_names(inst, &[("A1", "B1")]).unwrap();
        assert!(s.admits(&u, &theta_p));
        // Whereas {(A1,B3)} selects the negative example (t3,t2').
        let bad = crate::predicate_from_names(inst, &[("A1", "B3")]).unwrap();
        assert!(!s.admits(&u, &bad));
    }

    /// Example 3.1: S0' with positives {(t1,t2'),(t1,t3')} and negative
    /// {(t3,t1')} is NOT consistent.
    #[test]
    fn example_3_1_inconsistent_sample() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        s.add(&u, class_of(&u, 0, 1), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 0, 2), Label::Positive).unwrap();
        s.add(&u, class_of(&u, 2, 0), Label::Negative).unwrap();
        assert!(!s.is_consistent(&u));
        assert_eq!(s.check_consistent(&u), None);
    }

    #[test]
    fn tpos_is_omega_without_positives() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        assert_eq!(s.t_pos(), &u.omega());
        s.add(&u, 0, Label::Negative).unwrap();
        assert_eq!(s.t_pos(), &u.omega());
    }

    #[test]
    fn tpos_shrinks_with_positives() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        let c1 = class_of(&u, 1, 1); // T = {(A1,B1),(A2,B3)}
        let c2 = class_of(&u, 3, 0); // T = {(A1,B1),(A1,B2),(A2,B3)}
        s.add(&u, c1, Label::Positive).unwrap();
        assert_eq!(s.t_pos(), u.sig(c1));
        s.add(&u, c2, Label::Positive).unwrap();
        assert_eq!(s.t_pos(), &u.sig(c1).intersection(u.sig(c2)));
    }

    #[test]
    fn double_labeling_is_rejected() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        s.add(&u, 3, Label::Positive).unwrap();
        let e = s.add(&u, 3, Label::Negative).unwrap_err();
        assert!(matches!(e, InferenceError::AlreadyLabeled { class: 3 }));
    }

    #[test]
    fn out_of_bounds_class_is_rejected() {
        let u = Universe::build(example_2_1());
        let mut s = Sample::new(&u);
        let e = s.add(&u, 99, Label::Positive).unwrap_err();
        assert!(matches!(
            e,
            InferenceError::ClassOutOfBounds { class: 99, .. }
        ));
    }

    #[test]
    fn empty_sample_is_consistent() {
        let u = Universe::build(example_2_1());
        let s = Sample::new(&u);
        assert!(s.is_consistent(&u));
        assert!(s.is_empty());
    }

    #[test]
    fn label_flip_and_display() {
        assert_eq!(Label::Positive.flip(), Label::Negative);
        assert_eq!(Label::Negative.flip(), Label::Positive);
        assert_eq!(Label::Positive.to_string(), "+");
        assert_eq!(Label::Negative.to_string(), "−");
    }
}
