//! Lookahead skyline strategies (L1S, L2S, LkS — Algorithms 4–6).

use crate::certain::CountMode;
use crate::entropy::{Entropy, ENTROPY_INF};
use crate::error::Result;
use crate::sample::Label;
use crate::state::InferenceState;
use crate::strategy::{cached_move, Strategy, CACHE_KEY_LKS};
use crate::universe::ClassId;

/// LkS: the k-step lookahead skyline strategy.
///
/// For each informative tuple it computes the depth-`k` entropy
/// (Algorithm 5 for `k = 2`) and returns a tuple whose entropy lies on the
/// skyline with maximal guaranteed gain (Algorithm 4/6 lines 2–4).
/// `k = 1` is the paper's L1S, `k = 2` its L2S; larger `k` approaches the
/// minimax-optimal strategy at exponentially growing cost (§4.4: "if k is
/// greater than the total number of informative tuples … the strategy
/// becomes optimal and thus inefficient").
///
/// Depth-1 entropies come straight from the state's mask-compressed gain
/// computation (a popcount/weight-fold of closure masks per candidate, no
/// walk of the informative set); deeper lookahead branches on
/// [`InferenceState::speculate_into`] — a few machine words copied into a
/// per-depth scratch pool plus a word-OR apply per hypothetical label,
/// never a fresh allocation per node. The candidate ordering pass computes
/// each class's raw `(u⁺, u⁻)` pair once and threads it into the recursion,
/// so no gain is computed twice for the same node.
///
/// The deep recursion is **branch-and-bound** pruned, without changing any
/// result: candidates at each node are ordered by their depth-1 entropy
/// (best first) so a strong incumbent is established early, and a
/// candidate's subtree is abandoned as soon as one of its two label
/// branches proves its guaranteed gain cannot beat the incumbent — the
/// node's value is the *minimum* over the two labels, so the untried label
/// cannot raise it. Pruned candidates are exactly those that would have
/// lost the skyline selection anyway, hence selections and reported
/// entropies are identical to the exhaustive recursion (property-tested in
/// `tests/properties.rs`).
#[derive(Debug, Clone)]
pub struct Lookahead {
    depth: usize,
    mode: CountMode,
    name: String,
}

impl Lookahead {
    /// A k-step lookahead strategy counting uninformative tuples.
    pub fn new(depth: usize) -> Self {
        Self::with_mode(depth, CountMode::Tuples)
    }

    /// A k-step lookahead with an explicit [`CountMode`] (the class-level
    /// mode is an ablation; the paper counts tuples).
    pub fn with_mode(depth: usize, mode: CountMode) -> Self {
        assert!(depth >= 1, "lookahead depth must be at least 1");
        let name = match (depth, mode) {
            (1, CountMode::Tuples) => "L1S".to_string(),
            (2, CountMode::Tuples) => "L2S".to_string(),
            (k, CountMode::Tuples) => format!("L{k}S"),
            (k, CountMode::Classes) => format!("L{k}S/classes"),
        };
        Lookahead { depth, mode, name }
    }

    /// The one-step lookahead skyline strategy (Algorithm 4).
    pub fn l1s() -> Self {
        Self::new(1)
    }

    /// The two-step lookahead skyline strategy (Algorithm 6).
    pub fn l2s() -> Self {
        Self::new(2)
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The uncached Algorithm 4/6 selection over the current state.
    fn select(&self, state: &InferenceState<'_>) -> Option<ClassId> {
        if self.depth == 1 {
            // Streaming Algorithm 4: track the select_best incumbent while
            // sweeping the informative mask, no entry vector.
            let mut best: Option<(ClassId, Entropy)> = None;
            for t in state.informative() {
                update_best(&mut best, t, state.entropy(t, self.mode));
            }
            return best.map(|(c, _)| c);
        }
        // Deep lookahead selects through the same bounded scan the inner
        // nodes use — pruned candidates are exactly those select_best over
        // the exhaustive entropies would have rejected.
        let base = state.uninformative_count(self.mode);
        let mut scratch = Scratch::new(self.depth);
        best_successor(
            state,
            base,
            self.depth,
            self.mode,
            0,
            u64::MAX,
            &mut scratch,
        )
        .map(|(c, _)| c)
    }

    /// Entropies of all informative classes at the configured depth.
    ///
    /// Every value is the exact Algorithm 5 result: branch-and-bound only
    /// happens *inside* each class's recursion, against incumbents whose
    /// defeat is already decided.
    pub fn entropies(&self, state: &InferenceState<'_>) -> Vec<(ClassId, Entropy)> {
        if self.depth == 1 {
            state.entropies(self.mode)
        } else {
            let base = state.uninformative_count(self.mode);
            let mut scratch = Scratch::new(self.depth);
            state
                .informative()
                .collect::<Vec<_>>()
                .into_iter()
                .map(|c| {
                    let pair = state.gain_pair(c, self.mode);
                    (
                        c,
                        entropy_rel(state, base, c, pair, self.depth, self.mode, 0, &mut scratch),
                    )
                })
                .collect()
        }
    }
}

/// Per-depth scratch buffers for the lookahead recursion: speculation
/// states and candidate orderings are taken from the pool at each node and
/// returned afterwards, so a whole depth-k evaluation performs O(k)
/// allocations (first touch per level) instead of O(visited nodes).
/// Orderings carry the raw `(u⁺, u⁻)` pair so the recursion never
/// recomputes a gain the ordering pass already paid for.
/// One node's candidate ordering: class and its raw `(u⁺, u⁻)` pair.
type Ordering = Vec<(ClassId, (u64, u64))>;

struct Scratch<'u> {
    states: Vec<Option<InferenceState<'u>>>,
    orders: Vec<Option<Ordering>>,
}

impl<'u> Scratch<'u> {
    fn new(depth: usize) -> Self {
        Scratch {
            states: (0..=depth).map(|_| None).collect(),
            orders: (0..=depth).map(|_| None).collect(),
        }
    }
}

/// Incumbent update replicating [`select_best`]'s ordering exactly:
/// maximal `lo`, then maximal `hi`, then the smallest class id.
fn update_best(best: &mut Option<(ClassId, Entropy)>, t: ClassId, e: Entropy) {
    let better = match *best {
        None => true,
        Some((bc, be)) => {
            e.lo > be.lo || (e.lo == be.lo && (e.hi > be.hi || (e.hi == be.hi && t < bc)))
        }
    };
    if better {
        *best = Some((t, e));
    }
}

/// Algorithm 4/6 lines 2–4 at depth `k` over the informative classes of
/// `s`: `select_best` of the depth-`k` entropies, with two α/β-style
/// relaxations licensed by the caller (a min-node over the two labels):
///
/// * `alpha` — values below it are irrelevant to the caller (its own
///   incumbent already beats them): candidate subtrees are pruned against
///   `max(alpha, incumbent)`, and if *every* candidate lands below `alpha`
///   the returned value is merely an upper bound that still satisfies
///   `lo < alpha`, which is all the caller needs to abandon its branch.
/// * `beta` — once the incumbent's guaranteed gain exceeds it, the caller's
///   minimum is decided by its other label branch: stop scanning and
///   return the incumbent (a lower bound of the true maximum with
///   `lo > beta`, which is all the caller needs).
///
/// With `alpha = 0, beta = u64::MAX` the result is the exact
/// [`select_best`] over exact entropies. Returns `None` iff no informative
/// class remains.
fn best_successor<'u>(
    s: &InferenceState<'u>,
    base: u64,
    k: usize,
    mode: CountMode,
    alpha: u64,
    beta: u64,
    scratch: &mut Scratch<'u>,
) -> Option<(ClassId, Entropy)> {
    if !s.any_informative() {
        return None;
    }
    if k == 1 {
        // Leaf level: the one-step entropies *are* the depth-1 values
        // relative to the original sample, shifted by the uninformative
        // tuples accumulated since — popcount folds over the closure masks.
        let shift = s.uninformative_count(mode).saturating_sub(base);
        let mut best: Option<(ClassId, Entropy)> = None;
        for t in s.informative() {
            let e1 = s.entropy(t, mode);
            let e = Entropy {
                lo: e1.lo + shift,
                hi: e1.hi + shift,
            };
            update_best(&mut best, t, e);
            if e.lo > beta {
                break; // β-cut: the caller's min is its other label branch
            }
        }
        return best;
    }
    // Candidates ordered by depth-1 entropy, best first: strong candidates
    // establish a high incumbent early, so weaker subtrees prune sooner.
    let mut order = scratch.orders[k].take().unwrap_or_default();
    order.clear();
    order.extend(s.informative().map(|t| (t, s.gain_pair(t, mode))));
    order.sort_by(|(ca, pa), (cb, pb)| {
        let (ea, eb) = (Entropy::of(pa.0, pa.1), Entropy::of(pb.0, pb.1));
        eb.lo.cmp(&ea.lo).then(eb.hi.cmp(&ea.hi)).then(ca.cmp(cb))
    });
    let mut best: Option<(ClassId, Entropy)> = None;
    // The maximum over candidates that fell below `alpha` — only reported
    // when NO candidate reaches `alpha`, as the sub-`alpha` upper bound.
    let mut below_alpha: Option<(ClassId, Entropy)> = None;
    for &(t, pair) in order.iter() {
        let cutoff = best.map_or(alpha, |(_, e)| e.lo);
        let e = entropy_rel(s, base, t, pair, k, mode, cutoff, scratch);
        if e.lo < cutoff {
            // Pruned, or exactly evaluated and strictly worse.
            update_best(&mut below_alpha, t, e);
            continue;
        }
        update_best(&mut best, t, e);
        if e.lo > beta {
            break; // β-cut: the caller's min is its other label branch
        }
    }
    scratch.orders[k] = Some(order);
    best.or(below_alpha)
}

/// Depth-`k` entropy of `c` w.r.t. the *current* state, with uninformative
/// counts measured against `base` (the original sample's count, per
/// Algorithm 5 lines 8–9). `pair` is `c`'s one-step `(u⁺, u⁻)` against the
/// current state, already computed by the caller's ordering pass.
///
/// `cutoff` is the caller's incumbent guaranteed gain. The node's value is
/// the minimum over its two label branches, so as soon as one branch comes
/// back below `cutoff` the node is abandoned and an upper bound of the true
/// value (still `< cutoff`) is returned — the caller discards it. Pass `0`
/// to force the exact value.
#[allow(clippy::too_many_arguments)]
fn entropy_rel<'u>(
    current: &InferenceState<'u>,
    base: u64,
    c: ClassId,
    pair: (u64, u64),
    k: usize,
    mode: CountMode,
    cutoff: u64,
    scratch: &mut Scratch<'u>,
) -> Entropy {
    let (g_pos, g_neg) = pair;
    if k == 1 {
        // u^α relative to the ORIGINAL sample: the current absolute count
        // plus the incremental gain of this labeling, minus the base.
        let here = current.uninformative_count(mode);
        return Entropy::of(
            (here + g_pos).saturating_sub(base),
            (here + g_neg).saturating_sub(base),
        );
    }
    // Try the label with the smaller one-step gain first: it is the
    // likelier minimum, so a sub-cutoff branch is discovered before the
    // second subtree is explored at all.
    let order = if g_pos <= g_neg {
        [Label::Positive, Label::Negative]
    } else {
        [Label::Negative, Label::Positive]
    };
    let mut per_label: [Entropy; 2] = [ENTROPY_INF; 2];
    let mut first_lo = u64::MAX;
    for (round, &alpha) in order.iter().enumerate() {
        let mut slot = scratch.states[k].take();
        match slot.as_mut() {
            Some(st) => current.speculate_into(c, alpha, st),
            None => slot = Some(current.speculate(c, alpha)),
        }
        let s1 = slot.as_ref().expect("slot was just populated");
        let idx = match alpha {
            Label::Positive => 0,
            Label::Negative => 1,
        };
        // The first branch inherits the caller's floor; the second also
        // gets the first's value as a ceiling — once it provably exceeds
        // it, this node's minimum is the first branch regardless.
        per_label[idx] = match best_successor(s1, base, k - 1, mode, cutoff, first_lo, scratch) {
            // Lines 11–12: skyline element with min(e) = max of mins.
            Some((_, e)) => e,
            // Line 4: e_α = (∞, ∞) — labeling ends the inference.
            None => ENTROPY_INF,
        };
        scratch.states[k] = slot;
        if round == 0 {
            if per_label[idx].lo < cutoff {
                return per_label[idx];
            }
            first_lo = per_label[idx].lo;
        }
    }
    // Lines 13–14: return e_α with the smaller min (worst case over labels).
    if per_label[0].lo <= per_label[1].lo {
        per_label[0]
    } else {
        per_label[1]
    }
}

impl Strategy for Lookahead {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // The selection is a deterministic function of the derived state,
        // so it is served from the universe-level decision cache in *both*
        // phases: a server running thousands of sessions over one shared
        // universe pays each full-candidate-set lookahead — the most
        // expensive question of a session — exactly once per distinct
        // `(T(S⁺), negative mask)` state, not once per session. The key
        // folds depth and count mode into distinct fingerprints.
        let key = CACHE_KEY_LKS
            | (self.depth as u64) << 32
            | match self.mode {
                CountMode::Tuples => 0,
                CountMode::Classes => 1,
            };
        Ok(cached_move(key, state, || self.select(state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::entropy::select_best;
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    #[test]
    fn l1s_first_choice_matches_section_4_4() {
        // §4.4 (with the Figure 5 typo corrected, see entropy::tests):
        // L1S picks (t2,t1'), whose entropy (1,4) has the maximal min.
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let mut l1s = Lookahead::l1s();
        let c = l1s.next(&state).unwrap().unwrap();
        assert_eq!(u.representative(c), (1, 0));
    }

    #[test]
    fn deep_entropies_match_the_scratch_recursion() {
        // entropy_rel over speculated states must agree with the reference
        // entropy_k over cloned samples (Algorithm 5 semantics).
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state
            .apply(u.class_of(0, 2).unwrap(), crate::Label::Positive)
            .unwrap();
        state
            .apply(u.class_of(2, 0).unwrap(), crate::Label::Negative)
            .unwrap();
        let sample = state.as_sample();
        for k in [1usize, 2] {
            let strategy = Lookahead::new(k);
            for (c, e) in strategy.entropies(&state) {
                assert_eq!(
                    e,
                    crate::entropy::entropy_k(&u, &sample, c, k, CountMode::Tuples),
                    "depth-{k} entropy diverges for class {c}"
                );
            }
        }
    }

    #[test]
    fn pruned_depth_3_matches_scratch_recursion_and_selection() {
        // On a synthetic instance with nontrivial branching, the bounded
        // recursion must reproduce the exhaustive entropy_k values AND the
        // exhaustive select_best choice, at depths 2 and 3.
        use jqi_datagen_free::tiny_synthetic;
        let u = Universe::build(tiny_synthetic());
        let mut state = InferenceState::new(&u);
        let first = state.nth_informative(0).unwrap();
        state.apply(first, crate::Label::Negative).unwrap();
        let sample = state.as_sample();
        for k in [2usize, 3] {
            let mut strategy = Lookahead::new(k);
            let entries = strategy.entropies(&state);
            for &(c, e) in &entries {
                assert_eq!(
                    e,
                    crate::entropy::entropy_k(&u, &sample, c, k, CountMode::Tuples),
                    "depth-{k} entropy diverges for class {c}"
                );
            }
            let picked = strategy.next(&state).unwrap();
            assert_eq!(
                picked,
                select_best(&entries).map(|(c, _)| c),
                "depth-{k} pruned selection diverges from exhaustive select_best"
            );
        }
    }

    /// A small instance with duplicate rows and mixed overlap, built
    /// without depending on `jqi_datagen` (which depends on this crate).
    mod jqi_datagen_free {
        use jqi_relation::{Instance, InstanceBuilder};

        pub fn tiny_synthetic() -> Instance {
            let mut b = InstanceBuilder::new();
            b.relation_r("R", &["A1", "A2"]);
            b.relation_p("P", &["B1", "B2"]);
            let r_rows: [[i64; 2]; 7] = [[0, 1], [0, 1], [1, 2], [2, 0], [1, 1], [3, 2], [2, 2]];
            let p_rows: [[i64; 2]; 6] = [[1, 0], [1, 0], [2, 1], [0, 2], [3, 3], [2, 0]];
            for r in r_rows {
                b.row_r_ints(&r);
            }
            for p in p_rows {
                b.row_p_ints(&p);
            }
            b.build().expect("well-formed")
        }
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(Lookahead::l1s().name(), "L1S");
        assert_eq!(Lookahead::l2s().name(), "L2S");
        assert_eq!(Lookahead::new(3).name(), "L3S");
        assert_eq!(
            Lookahead::with_mode(2, CountMode::Classes).name(),
            "L2S/classes"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        Lookahead::new(0);
    }

    #[test]
    fn l2s_beats_rnd_on_average() {
        // The paper's empirical claim (§5.3) is about averages: across all
        // non-nullable goals (and several RND seeds), L2S needs fewer
        // interactions than the random baseline.
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        let mut l2s_total = 0usize;
        let mut rnd_total = 0usize;
        let seeds = [1u64, 2, 3, 4, 5];
        for goal in &goals {
            let mut o = PredicateOracle::new(goal.clone());
            l2s_total += run_inference(&u, &mut Lookahead::l2s(), &mut o)
                .unwrap()
                .interactions
                * seeds.len();
            for &seed in &seeds {
                let mut o = PredicateOracle::new(goal.clone());
                rnd_total += run_inference(&u, &mut crate::strategy::Random::new(seed), &mut o)
                    .unwrap()
                    .interactions;
            }
        }
        assert!(
            l2s_total < rnd_total,
            "L2S mean {} not better than RND mean {}",
            l2s_total as f64 / (goals.len() * seeds.len()) as f64,
            rnd_total as f64 / (goals.len() * seeds.len()) as f64
        );
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(Lookahead::l2s().depth(), 2);
    }
}
