//! Lookahead skyline strategies (L1S, L2S, LkS — Algorithms 4–6).

use crate::certain::{informative_classes, uninformative_count, CountMode};
use crate::entropy::{entropy_with_base, select_best, Entropy};
use crate::error::Result;
use crate::sample::Sample;
use crate::strategy::Strategy;
use crate::universe::{ClassId, Universe};

/// LkS: the k-step lookahead skyline strategy.
///
/// For each informative tuple it computes the depth-`k` entropy
/// (Algorithm 5 for `k = 2`) and returns a tuple whose entropy lies on the
/// skyline with maximal guaranteed gain (Algorithm 4/6 lines 2–4).
/// `k = 1` is the paper's L1S, `k = 2` its L2S; larger `k` approaches the
/// minimax-optimal strategy at exponentially growing cost (§4.4: "if k is
/// greater than the total number of informative tuples … the strategy
/// becomes optimal and thus inefficient").
#[derive(Debug, Clone)]
pub struct Lookahead {
    depth: usize,
    mode: CountMode,
    name: String,
}

impl Lookahead {
    /// A k-step lookahead strategy counting uninformative tuples.
    pub fn new(depth: usize) -> Self {
        Self::with_mode(depth, CountMode::Tuples)
    }

    /// A k-step lookahead with an explicit [`CountMode`] (the class-level
    /// mode is an ablation; the paper counts tuples).
    pub fn with_mode(depth: usize, mode: CountMode) -> Self {
        assert!(depth >= 1, "lookahead depth must be at least 1");
        let name = match (depth, mode) {
            (1, CountMode::Tuples) => "L1S".to_string(),
            (2, CountMode::Tuples) => "L2S".to_string(),
            (k, CountMode::Tuples) => format!("L{k}S"),
            (k, CountMode::Classes) => format!("L{k}S/classes"),
        };
        Lookahead { depth, mode, name }
    }

    /// The one-step lookahead skyline strategy (Algorithm 4).
    pub fn l1s() -> Self {
        Self::new(1)
    }

    /// The two-step lookahead skyline strategy (Algorithm 6).
    pub fn l2s() -> Self {
        Self::new(2)
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Entropies of all informative classes at the configured depth.
    pub fn entropies(
        &self,
        universe: &Universe,
        sample: &Sample,
    ) -> Vec<(ClassId, Entropy)> {
        let informative = informative_classes(universe, sample);
        if self.depth == 1 {
            let base = uninformative_count(universe, sample, self.mode);
            informative
                .into_iter()
                .map(|c| (c, entropy_with_base(universe, sample, base, c, self.mode)))
                .collect()
        } else {
            informative
                .into_iter()
                .map(|c| {
                    (
                        c,
                        crate::entropy::entropy_k(universe, sample, c, self.depth, self.mode),
                    )
                })
                .collect()
        }
    }
}

impl Strategy for Lookahead {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self, universe: &Universe, sample: &Sample) -> Result<Option<ClassId>> {
        let entries = self.entropies(universe, sample);
        Ok(select_best(&entries).map(|(c, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    #[test]
    fn l1s_first_choice_matches_section_4_4() {
        // §4.4 (with the Figure 5 typo corrected, see entropy::tests):
        // L1S picks (t2,t1'), whose entropy (1,4) has the maximal min.
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        let mut l1s = Lookahead::l1s();
        let c = l1s.next(&u, &s).unwrap().unwrap();
        assert_eq!(u.representative(c), (1, 0));
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(Lookahead::l1s().name(), "L1S");
        assert_eq!(Lookahead::l2s().name(), "L2S");
        assert_eq!(Lookahead::new(3).name(), "L3S");
        assert_eq!(
            Lookahead::with_mode(2, CountMode::Classes).name(),
            "L2S/classes"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        Lookahead::new(0);
    }

    #[test]
    fn l2s_beats_rnd_on_average() {
        // The paper's empirical claim (§5.3) is about averages: across all
        // non-nullable goals (and several RND seeds), L2S needs fewer
        // interactions than the random baseline.
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        let mut l2s_total = 0usize;
        let mut rnd_total = 0usize;
        let seeds = [1u64, 2, 3, 4, 5];
        for goal in &goals {
            let mut o = PredicateOracle::new(goal.clone());
            l2s_total +=
                run_inference(&u, &mut Lookahead::l2s(), &mut o).unwrap().interactions
                    * seeds.len();
            for &seed in &seeds {
                let mut o = PredicateOracle::new(goal.clone());
                rnd_total += run_inference(
                    &u,
                    &mut crate::strategy::Random::new(seed),
                    &mut o,
                )
                .unwrap()
                .interactions;
            }
        }
        assert!(
            l2s_total < rnd_total,
            "L2S mean {} not better than RND mean {}",
            l2s_total as f64 / (goals.len() * seeds.len()) as f64,
            rnd_total as f64 / (goals.len() * seeds.len()) as f64
        );
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(Lookahead::l2s().depth(), 2);
    }
}
