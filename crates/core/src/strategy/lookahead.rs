//! Lookahead skyline strategies (L1S, L2S, LkS — Algorithms 4–6).

use crate::certain::CountMode;
use crate::entropy::{select_best, Entropy, ENTROPY_INF};
use crate::error::Result;
use crate::state::InferenceState;
use crate::strategy::Strategy;
use crate::universe::ClassId;

/// LkS: the k-step lookahead skyline strategy.
///
/// For each informative tuple it computes the depth-`k` entropy
/// (Algorithm 5 for `k = 2`) and returns a tuple whose entropy lies on the
/// skyline with maximal guaranteed gain (Algorithm 4/6 lines 2–4).
/// `k = 1` is the paper's L1S, `k = 2` its L2S; larger `k` approaches the
/// minimax-optimal strategy at exponentially growing cost (§4.4: "if k is
/// greater than the total number of informative tuples … the strategy
/// becomes optimal and thus inefficient").
///
/// Depth-1 entropies come straight from the state's incremental gain
/// computation (one pass over the informative set per candidate, served
/// from the version-stamped cache on repeat queries); deeper lookahead
/// branches on [`InferenceState::speculate`] — an O(classes) clone plus an
/// O(delta) apply per hypothetical label, instead of the former
/// sample-clone-and-rescan-Ω per node.
#[derive(Debug, Clone)]
pub struct Lookahead {
    depth: usize,
    mode: CountMode,
    name: String,
}

impl Lookahead {
    /// A k-step lookahead strategy counting uninformative tuples.
    pub fn new(depth: usize) -> Self {
        Self::with_mode(depth, CountMode::Tuples)
    }

    /// A k-step lookahead with an explicit [`CountMode`] (the class-level
    /// mode is an ablation; the paper counts tuples).
    pub fn with_mode(depth: usize, mode: CountMode) -> Self {
        assert!(depth >= 1, "lookahead depth must be at least 1");
        let name = match (depth, mode) {
            (1, CountMode::Tuples) => "L1S".to_string(),
            (2, CountMode::Tuples) => "L2S".to_string(),
            (k, CountMode::Tuples) => format!("L{k}S"),
            (k, CountMode::Classes) => format!("L{k}S/classes"),
        };
        Lookahead { depth, mode, name }
    }

    /// The one-step lookahead skyline strategy (Algorithm 4).
    pub fn l1s() -> Self {
        Self::new(1)
    }

    /// The two-step lookahead skyline strategy (Algorithm 6).
    pub fn l2s() -> Self {
        Self::new(2)
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Entropies of all informative classes at the configured depth.
    pub fn entropies(&self, state: &InferenceState<'_>) -> Vec<(ClassId, Entropy)> {
        if self.depth == 1 {
            state.entropies(self.mode)
        } else {
            let base = state.uninformative_count(self.mode);
            state
                .informative()
                .iter()
                .map(|&c| (c, entropy_rel(state, base, c, self.depth, self.mode)))
                .collect()
        }
    }
}

/// Depth-`k` entropy of `c` w.r.t. the *current* state, with uninformative
/// counts measured against `base` (the original sample's count, per
/// Algorithm 5 lines 8–9).
fn entropy_rel(
    current: &InferenceState<'_>,
    base: u64,
    c: ClassId,
    k: usize,
    mode: CountMode,
) -> Entropy {
    if k == 1 {
        // u^α relative to the ORIGINAL sample: the current absolute count
        // plus the incremental gain of this labeling, minus the base.
        let here = current.uninformative_count(mode);
        let u_pos = (here + current.gain(c, crate::Label::Positive, mode)).saturating_sub(base);
        let u_neg = (here + current.gain(c, crate::Label::Negative, mode)).saturating_sub(base);
        return Entropy::of(u_pos, u_neg);
    }
    let mut per_label: [Entropy; 2] = [ENTROPY_INF; 2];
    for (idx, alpha) in crate::Label::BOTH.into_iter().enumerate() {
        let s1 = current.speculate(c, alpha);
        if !s1.any_informative() {
            // Line 4: e_α = (∞, ∞) — labeling ends the inference.
            per_label[idx] = ENTROPY_INF;
            continue;
        }
        let entries: Vec<(ClassId, Entropy)> = s1
            .informative()
            .iter()
            .map(|&t2| (t2, entropy_rel(&s1, base, t2, k - 1, mode)))
            .collect();
        // Lines 11–12: skyline element with min(e) = max of mins.
        per_label[idx] = select_best(&entries).expect("entries nonempty").1;
    }
    // Lines 13–14: return e_α with the smaller min (worst case over labels).
    if per_label[0].lo <= per_label[1].lo {
        per_label[0]
    } else {
        per_label[1]
    }
}

impl Strategy for Lookahead {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        let entries = self.entropies(state);
        Ok(select_best(&entries).map(|(c, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    #[test]
    fn l1s_first_choice_matches_section_4_4() {
        // §4.4 (with the Figure 5 typo corrected, see entropy::tests):
        // L1S picks (t2,t1'), whose entropy (1,4) has the maximal min.
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let mut l1s = Lookahead::l1s();
        let c = l1s.next(&state).unwrap().unwrap();
        assert_eq!(u.representative(c), (1, 0));
    }

    #[test]
    fn deep_entropies_match_the_scratch_recursion() {
        // entropy_rel over speculated states must agree with the reference
        // entropy_k over cloned samples (Algorithm 5 semantics).
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state
            .apply(u.class_of(0, 2).unwrap(), crate::Label::Positive)
            .unwrap();
        state
            .apply(u.class_of(2, 0).unwrap(), crate::Label::Negative)
            .unwrap();
        let sample = state.as_sample();
        for k in [1usize, 2] {
            let strategy = Lookahead::new(k);
            for (c, e) in strategy.entropies(&state) {
                assert_eq!(
                    e,
                    crate::entropy::entropy_k(&u, &sample, c, k, CountMode::Tuples),
                    "depth-{k} entropy diverges for class {c}"
                );
            }
        }
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(Lookahead::l1s().name(), "L1S");
        assert_eq!(Lookahead::l2s().name(), "L2S");
        assert_eq!(Lookahead::new(3).name(), "L3S");
        assert_eq!(
            Lookahead::with_mode(2, CountMode::Classes).name(),
            "L2S/classes"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        Lookahead::new(0);
    }

    #[test]
    fn l2s_beats_rnd_on_average() {
        // The paper's empirical claim (§5.3) is about averages: across all
        // non-nullable goals (and several RND seeds), L2S needs fewer
        // interactions than the random baseline.
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        let mut l2s_total = 0usize;
        let mut rnd_total = 0usize;
        let seeds = [1u64, 2, 3, 4, 5];
        for goal in &goals {
            let mut o = PredicateOracle::new(goal.clone());
            l2s_total += run_inference(&u, &mut Lookahead::l2s(), &mut o)
                .unwrap()
                .interactions
                * seeds.len();
            for &seed in &seeds {
                let mut o = PredicateOracle::new(goal.clone());
                rnd_total += run_inference(&u, &mut crate::strategy::Random::new(seed), &mut o)
                    .unwrap()
                    .interactions;
            }
        }
        assert!(
            l2s_total < rnd_total,
            "L2S mean {} not better than RND mean {}",
            l2s_total as f64 / (goals.len() * seeds.len()) as f64,
            rnd_total as f64 / (goals.len() * seeds.len()) as f64
        );
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(Lookahead::l2s().depth(), 2);
    }
}
