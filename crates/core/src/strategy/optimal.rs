//! The minimax-optimal strategy (§4.1).
//!
//! The paper observes that an optimal strategy exists "by employing the
//! standard construction of a minimax tree" but is exponential. We build it
//! anyway — with memoization over labeled-state vectors — as a quality
//! yardstick for the heuristics on small instances: property tests assert
//! that no heuristic ever beats the optimal worst case, and the `optimal_gap`
//! benchmark measures how close TD / L2S come.
//!
//! The game: the algorithm picks an informative class, the adversary (the
//! worst-case user) picks a label; the cost of a state is the number of
//! questions until no informative tuple remains. Because a class is
//! informative exactly when both labels keep the sample consistent, every
//! adversary answer is realizable by some goal predicate. Game-tree nodes
//! are explored via [`InferenceState::speculate`], so each node pays an
//! O(delta) incremental update rather than a from-scratch re-derivation.

use crate::error::{InferenceError, Result};
use crate::sample::Label;
use crate::state::InferenceState;
use crate::strategy::Strategy;
use crate::universe::{ClassId, Universe};
use std::collections::HashMap;

/// Default cap on the number of informative classes the optimal strategy
/// will consider (the state space is `O(3^classes)`).
pub const DEFAULT_CLASS_LIMIT: usize = 14;

/// Canonical memo key: one byte per class (0 unlabeled, 1 positive,
/// 2 negative).
fn state_key(state: &InferenceState<'_>) -> Vec<u8> {
    (0..state.num_classes())
        .map(|c| match state.label(c) {
            None => 0,
            Some(Label::Positive) => 1,
            Some(Label::Negative) => 2,
        })
        .collect()
}

/// Worst-case number of interactions from `state` under optimal play,
/// with the optimal first question.
fn minimax(
    state: &InferenceState<'_>,
    memo: &mut HashMap<Vec<u8>, (u32, Option<ClassId>)>,
) -> (u32, Option<ClassId>) {
    let key = state_key(state);
    if let Some(&hit) = memo.get(&key) {
        return hit;
    }
    let result = if !state.any_informative() {
        (0, None)
    } else {
        let mut best: Option<(u32, ClassId)> = None;
        // Iterate a copy: speculation borrows the state immutably anyway,
        // but the candidate list must outlive each branch.
        let informative: Vec<ClassId> = state.informative().collect();
        for c in informative {
            let mut worst = 0u32;
            for alpha in Label::BOTH {
                let s = state.speculate(c, alpha);
                debug_assert!(
                    s.is_consistent(),
                    "both labels of an informative class keep consistency"
                );
                let (cost, _) = minimax(&s, memo);
                worst = worst.max(cost);
            }
            let total = 1 + worst;
            if best.is_none_or(|(b, bc)| total < b || (total == b && c < bc)) {
                best = Some((total, c));
            }
        }
        let (cost, class) = best.expect("informative set nonempty");
        (cost, Some(class))
    };
    memo.insert(key, result);
    result
}

/// The worst-case-optimal number of interactions for `universe` starting
/// from the empty sample.
///
/// Fails with [`InferenceError::UniverseTooLarge`] when there are more than
/// `limit` classes.
pub fn optimal_worst_case(universe: &Universe, limit: usize) -> Result<u32> {
    let classes = universe.num_classes();
    if classes > limit {
        return Err(InferenceError::UniverseTooLarge { classes, limit });
    }
    let state = InferenceState::new(universe);
    let mut memo = HashMap::new();
    Ok(minimax(&state, &mut memo).0)
}

/// The worst-case number of interactions a *deterministic* strategy needs
/// on `universe`, over all adversary (consistent-user) answer sequences —
/// computed by exploring the full binary game tree.
///
/// This is the quantity [`optimal_worst_case`] lower-bounds for every
/// strategy. Exponential in the number of classes; a yardstick for small
/// instances. Stateful strategies (e.g. [`crate::strategy::Random`]) would
/// leak RNG state across branches and give meaningless results.
pub fn strategy_worst_case(universe: &Universe, strategy: &mut dyn Strategy) -> Result<u32> {
    fn rec(strategy: &mut dyn Strategy, state: &InferenceState<'_>) -> Result<u32> {
        match strategy.next(state)? {
            None => Ok(0),
            Some(c) => {
                let mut worst = 0u32;
                for alpha in Label::BOTH {
                    let s = state.speculate(c, alpha);
                    worst = worst.max(rec(strategy, &s)?);
                }
                Ok(1 + worst)
            }
        }
    }
    rec(strategy, &InferenceState::new(universe))
}

/// OPT: plays the minimax-optimal strategy, caching the game tree across
/// calls within one run.
#[derive(Debug, Clone)]
pub struct Optimal {
    limit: usize,
    memo: HashMap<Vec<u8>, (u32, Option<ClassId>)>,
}

impl Default for Optimal {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimal {
    /// Creates the strategy with [`DEFAULT_CLASS_LIMIT`].
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_CLASS_LIMIT)
    }

    /// Creates the strategy with an explicit class-count cap.
    pub fn with_limit(limit: usize) -> Self {
        Optimal {
            limit,
            memo: HashMap::new(),
        }
    }
}

impl Strategy for Optimal {
    fn name(&self) -> &str {
        "OPT"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // OPT stays off the universe-level decision cache: it is restricted
        // to tiny universes anyway, carries its own game-tree memo that
        // amortizes across the whole run, and its error path (the class
        // limit) does not fit the cache's infallible-value shape.
        let classes = state.num_classes();
        if classes > self.limit {
            return Err(InferenceError::UniverseTooLarge {
                classes,
                limit: self.limit,
            });
        }
        let (_, class) = minimax(state, &mut self.memo);
        Ok(class)
    }

    fn reset(&mut self) {
        // The memo only depends on the universe; keep it across runs on the
        // same universe. Clearing would also be correct, just slower.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, AdversarialOracle, PredicateOracle};
    use crate::paper::{example_2_1, example_3_3};
    use crate::strategy::{BottomUp, Lookahead, TopDown};
    use crate::universe::Universe;

    #[test]
    fn trivial_universe_costs_zero() {
        // Example 3.3: the single product tuple has T = Ω = {(A1,B1),(A2,B1)},
        // certain-positive from the start, so no question is ever needed.
        let u = Universe::build(example_3_3());
        assert_eq!(optimal_worst_case(&u, 14).unwrap(), 0);
    }

    #[test]
    fn example_2_1_optimal_worst_case() {
        let u = Universe::build(example_2_1());
        let opt = optimal_worst_case(&u, 14).unwrap();
        // Sanity bounds: at least ⌈log2⌉ of distinguishable outcomes, at
        // most the class count.
        assert!(opt >= 4, "12 classes cannot be resolved in < 4 questions");
        assert!(opt <= 12);
        // No deterministic heuristic beats OPT in its true worst case (the
        // maximum over all consistent answer sequences). L2S is excluded
        // here only because its game tree is slow in debug builds; the
        // property test covers it on smaller instances.
        for mut strategy in [
            Box::new(BottomUp::new()) as Box<dyn Strategy>,
            Box::new(TopDown::new()),
            Box::new(Lookahead::l1s()),
        ] {
            let wc = strategy_worst_case(&u, strategy.as_mut()).unwrap();
            assert!(
                wc >= opt,
                "{} worst case {} < OPT {}",
                strategy.name(),
                wc,
                opt
            );
        }
        // The lazy adversarial oracle is *weaker* than the minimax
        // adversary, so heuristics may finish under `opt` against it — but
        // the run must still be consistent and halt.
        let mut adversary = AdversarialOracle::new();
        let run = run_inference(&u, &mut TopDown::new(), &mut adversary).unwrap();
        assert!(run.sample.is_consistent(&u));
    }

    #[test]
    fn optimal_strategy_attains_its_own_bound() {
        let u = Universe::build(example_2_1());
        let bound = optimal_worst_case(&u, 14).unwrap();
        let mut opt = Optimal::new();
        let mut adversary = AdversarialOracle::new();
        let run = run_inference(&u, &mut opt, &mut adversary).unwrap();
        assert_eq!(run.interactions as u32, bound);
    }

    #[test]
    fn optimal_infers_correct_predicates_too() {
        let u = Universe::build(example_2_1());
        let goal = crate::predicate_from_names(u.instance(), &[("A1", "B1")]).unwrap();
        let mut opt = Optimal::new();
        let mut oracle = PredicateOracle::new(goal.clone());
        let run = run_inference(&u, &mut opt, &mut oracle).unwrap();
        assert_eq!(
            u.instance().equijoin(&run.predicate),
            u.instance().equijoin(&goal)
        );
    }

    #[test]
    fn limit_is_enforced() {
        let u = Universe::build(example_2_1());
        assert!(matches!(
            optimal_worst_case(&u, 5),
            Err(InferenceError::UniverseTooLarge {
                classes: 12,
                limit: 5
            })
        ));
        let mut opt = Optimal::with_limit(5);
        let state = InferenceState::new(&u);
        assert!(opt.next(&state).is_err());
    }
}
