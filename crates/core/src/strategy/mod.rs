//! Strategies for presenting tuples to the user (§4).
//!
//! A strategy `Υ` maps the Cartesian product and the current sample to the
//! next tuple to present. The paper proposes:
//!
//! * [`Random`] (RND) — a random informative tuple, the baseline.
//! * [`BottomUp`] (BU, Algorithm 2) — minimal `|T(t)|` first.
//! * [`TopDown`] (TD, Algorithm 3) — `⊆`-maximal signatures first, then BU.
//! * [`Lookahead`] (L1S / L2S / LkS, Algorithms 4–6) — skyline selection on
//!   tuple entropy with configurable lookahead depth.
//! * [`Optimal`] — the minimax-optimal strategy (§4.1), exponential; usable
//!   as a quality yardstick on small instances.
//! * [`ExpectedGain`] — a probabilistic extension in the spirit of the
//!   paper's future work (§7): expected gain under a uniform prior over
//!   the consistent predicates.
//!
//! All strategies restrict themselves to *informative* tuples (Theorem 3.5)
//! and are deterministic given their configuration (the random strategy
//! takes an explicit seed), which makes every experiment reproducible.

mod bottom_up;
mod expected_gain;
mod lookahead;
mod optimal;
mod random;
mod top_down;

pub use bottom_up::BottomUp;
pub use expected_gain::{positive_probability, ExpectedGain};
pub use lookahead::Lookahead;
pub use optimal::{optimal_worst_case, strategy_worst_case, Optimal, DEFAULT_CLASS_LIMIT};
pub use random::Random;
pub use top_down::TopDown;

use crate::error::Result;
use crate::state::InferenceState;
use crate::universe::ClassId;

/// Decision-cache fingerprints of the deterministic strategies (see
/// [`crate::universe::Universe::cached_decision`]). Each strategy owns a
/// distinct base key; parameterized strategies fold their parameters into
/// bits 32..62, and [`cached_move`] reserves bit 63 for the "any positive
/// yet?" phase bit.
pub(crate) const CACHE_KEY_BU: u64 = 0x4255;
pub(crate) const CACHE_KEY_TD: u64 = 0x5444;
pub(crate) const CACHE_KEY_EG: u64 = 0x4547;
pub(crate) const CACHE_KEY_LKS: u64 = 0x4c6b_5300;

/// Serves a deterministic strategy's move from the universe-level decision
/// cache, computing it with `compute` on the first probe per distinct
/// derived state.
///
/// `base_key` must fingerprint the strategy and every parameter its choice
/// depends on besides the state (depth, count mode, …); the current
/// phase — whether any positive example exists — is folded in here because
/// strategies may branch on it even when `T(S⁺)` still equals Ω (a
/// positive whose signature is all of Ω). Inconsistent states bypass the
/// cache: the derived partition stops being maintained there, so the
/// mask key no longer determines the state.
pub(crate) fn cached_move(
    base_key: u64,
    state: &InferenceState<'_>,
    compute: impl FnOnce() -> Option<ClassId>,
) -> Option<ClassId> {
    if !state.is_consistent() {
        return compute();
    }
    let key = base_key | ((!state.positives().is_empty() as u64) << 63);
    let (pos, neg) = state.decision_masks();
    state.universe().cached_decision(key, pos, neg, compute)
}

/// A strategy `Υ(D, S)` choosing the next tuple (class) to present.
///
/// Strategies read the session through the incrementally maintained
/// [`InferenceState`] — the informative candidate set, entropies, and the
/// consistent-predicate interval are all `O(1)`-or-`O(delta)` queries on
/// it, so no strategy rescans all of Ω per step.
pub trait Strategy {
    /// Short name used in reports and benchmarks (`"BU"`, `"L2S"`, …).
    fn name(&self) -> &str;

    /// The next informative class to present, or `None` when the halt
    /// condition Γ holds (no informative tuple remains).
    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>>;

    /// Clears any per-run internal state (memo tables, RNG position).
    /// The default does nothing; stateful strategies override it.
    fn reset(&mut self) {}
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        (**self).next(state)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// A boxed, thread-safe strategy object.
///
/// [`Strategy`] is object-safe, and every strategy in the crate is `Send`,
/// so heterogeneous strategies (RND next to L2S next to BU) can live in one
/// session table and move across threads with their sessions. This is the
/// strategy type of [`crate::session::OwnedSession`].
pub type DynStrategy = Box<dyn Strategy + Send>;

/// A serializable description of a strategy: enough to rebuild it exactly.
///
/// This is what session snapshots persist — restoring a session replays
/// its label history into a strategy rebuilt from this config, and because
/// every strategy (including [`Random`], which derives its choice from
/// `(seed, |S|)` alone) is a deterministic function of its configuration
/// and the current state, the restored session continues exactly as an
/// uninterrupted one would.
///
/// The textual form round-trips through [`std::fmt::Display`] /
/// [`std::str::FromStr`]: `"RND:7"`, `"BU"`, `"TD"`, `"LKS:2"`, `"EG"`,
/// `"OPT"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StrategyConfig {
    /// Random informative tuple with the given seed.
    Rnd {
        /// The RNG seed.
        seed: u64,
    },
    /// Bottom-up (Algorithm 2).
    Bu,
    /// Top-down (Algorithm 3).
    Td,
    /// k-step lookahead skyline (Algorithms 4–6); depth 1 is L1S, 2 is L2S.
    Lks {
        /// The lookahead depth `k ≥ 1`.
        depth: usize,
    },
    /// Expected gain under a uniform prior.
    Eg,
    /// Minimax-optimal (small instances only).
    Optimal,
}

impl StrategyConfig {
    /// Instantiates the described strategy.
    pub fn build(&self) -> DynStrategy {
        match *self {
            StrategyConfig::Rnd { seed } => Box::new(Random::new(seed)),
            StrategyConfig::Bu => Box::new(BottomUp::new()),
            StrategyConfig::Td => Box::new(TopDown::new()),
            StrategyConfig::Lks { depth } => Box::new(Lookahead::new(depth)),
            StrategyConfig::Eg => Box::new(ExpectedGain::new()),
            StrategyConfig::Optimal => Box::new(Optimal::new()),
        }
    }

    /// The config describing what [`StrategyKind::build`] builds.
    pub fn from_kind(kind: StrategyKind, seed: u64) -> StrategyConfig {
        match kind {
            StrategyKind::Rnd => StrategyConfig::Rnd { seed },
            StrategyKind::Bu => StrategyConfig::Bu,
            StrategyKind::Td => StrategyConfig::Td,
            StrategyKind::L1s => StrategyConfig::Lks { depth: 1 },
            StrategyKind::L2s => StrategyConfig::Lks { depth: 2 },
            StrategyKind::Optimal => StrategyConfig::Optimal,
            StrategyKind::Eg => StrategyConfig::Eg,
        }
    }
}

impl std::fmt::Display for StrategyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StrategyConfig::Rnd { seed } => write!(f, "RND:{seed}"),
            StrategyConfig::Bu => f.write_str("BU"),
            StrategyConfig::Td => f.write_str("TD"),
            StrategyConfig::Lks { depth } => write!(f, "LKS:{depth}"),
            StrategyConfig::Eg => f.write_str("EG"),
            StrategyConfig::Optimal => f.write_str("OPT"),
        }
    }
}

impl std::str::FromStr for StrategyConfig {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<StrategyConfig, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let numeric = |what: &str| -> std::result::Result<u64, String> {
            arg.ok_or_else(|| format!("strategy {head} needs a :{what}"))?
                .parse::<u64>()
                .map_err(|e| format!("bad {what} in strategy {s:?}: {e}"))
        };
        match head {
            "RND" => Ok(StrategyConfig::Rnd {
                seed: numeric("seed")?,
            }),
            "LKS" => {
                let depth = numeric("depth")? as usize;
                if depth == 0 {
                    return Err("lookahead depth must be at least 1".into());
                }
                Ok(StrategyConfig::Lks { depth })
            }
            "BU" | "TD" | "EG" | "OPT" if arg.is_some() => {
                Err(format!("strategy {head} takes no argument, got {s:?}"))
            }
            "BU" => Ok(StrategyConfig::Bu),
            "TD" => Ok(StrategyConfig::Td),
            "EG" => Ok(StrategyConfig::Eg),
            "OPT" => Ok(StrategyConfig::Optimal),
            other => Err(format!("unknown strategy {other:?}")),
        }
    }
}

/// A dynamic catalogue of the paper's strategies, used by the experiment
/// harness to iterate over all of them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Random informative tuple (baseline).
    Rnd,
    /// Bottom-up local strategy (Algorithm 2).
    Bu,
    /// Top-down local strategy (Algorithm 3).
    Td,
    /// One-step lookahead skyline (Algorithm 4).
    L1s,
    /// Two-step lookahead skyline (Algorithm 6).
    L2s,
    /// Minimax-optimal (small instances only).
    Optimal,
    /// Expected-gain under a uniform prior over consistent predicates
    /// (a probabilistic extension beyond the paper — §7 future work).
    Eg,
}

impl StrategyKind {
    /// The five strategies compared throughout §5, in the paper's order.
    pub const PAPER: [StrategyKind; 5] = [
        StrategyKind::Bu,
        StrategyKind::Td,
        StrategyKind::L1s,
        StrategyKind::L2s,
        StrategyKind::Rnd,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Rnd => "RND",
            StrategyKind::Bu => "BU",
            StrategyKind::Td => "TD",
            StrategyKind::L1s => "L1S",
            StrategyKind::L2s => "L2S",
            StrategyKind::Optimal => "OPT",
            StrategyKind::Eg => "EG",
        }
    }

    /// Instantiates the strategy; `seed` only affects [`Random`].
    pub fn build(self, seed: u64) -> DynStrategy {
        StrategyConfig::from_kind(self, seed).build()
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    /// Every catalogued strategy infers an instance-equivalent predicate on
    /// Example 2.1, for every non-nullable goal.
    #[test]
    fn all_strategies_reach_equivalent_predicates() {
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        for kind in [
            StrategyKind::Rnd,
            StrategyKind::Bu,
            StrategyKind::Td,
            StrategyKind::L1s,
            StrategyKind::L2s,
        ] {
            for goal in &goals {
                let mut strategy = kind.build(42);
                let mut oracle = PredicateOracle::new(goal.clone());
                let run = run_inference(&u, strategy.as_mut(), &mut oracle).unwrap();
                assert_eq!(
                    u.instance().equijoin(&run.predicate),
                    u.instance().equijoin(goal),
                    "{kind} failed on goal {goal:?}"
                );
            }
        }
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(StrategyKind::Rnd.to_string(), "RND");
        assert_eq!(StrategyKind::L2s.to_string(), "L2S");
        assert_eq!(StrategyKind::PAPER.len(), 5);
    }
}
