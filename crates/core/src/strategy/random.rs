//! The random baseline strategy (RND).

use crate::error::Result;
use crate::state::InferenceState;
use crate::strategy::Strategy;
use crate::universe::ClassId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RND: picks a uniformly random informative tuple.
///
/// The paper uses RND as the baseline all other strategies are compared
/// against. The RNG is seeded explicitly so that experiments are
/// reproducible; [`Strategy::reset`] rewinds it to the seed. The candidate
/// set is the state's maintained informative slice — no scan.
#[derive(Debug, Clone)]
pub struct Random {
    seed: u64,
    rng: SmallRng,
}

impl Random {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Random {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for Random {
    fn name(&self) -> &str {
        "RND"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        let candidates = state.informative();
        if candidates.is_empty() {
            return Ok(None);
        }
        let i = self.rng.gen_range(0..candidates.len());
        Ok(Some(candidates[i]))
    }

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    #[test]
    fn picks_only_informative_classes() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut rnd = Random::new(7);
        for _ in 0..5 {
            let c = rnd.next(&state).unwrap().expect("informative left");
            assert!(state.is_informative(c));
            state.apply(c, Label::Negative).unwrap();
            if !state.is_consistent() {
                break;
            }
        }
    }

    #[test]
    fn reset_replays_the_same_sequence() {
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let mut rnd = Random::new(99);
        let a = rnd.next(&state).unwrap();
        let b = rnd.next(&state).unwrap();
        rnd.reset();
        assert_eq!(rnd.next(&state).unwrap(), a);
        assert_eq!(rnd.next(&state).unwrap(), b);
    }

    #[test]
    fn halts_when_nothing_informative() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let u = Universe::build(b.build().unwrap());
        let state = InferenceState::new(&u);
        let mut rnd = Random::new(0);
        assert_eq!(rnd.next(&state).unwrap(), None);
    }
}
