//! The random baseline strategy (RND).

use crate::certain::informative_classes;
use crate::error::Result;
use crate::sample::Sample;
use crate::strategy::Strategy;
use crate::universe::{ClassId, Universe};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RND: picks a uniformly random informative tuple.
///
/// The paper uses RND as the baseline all other strategies are compared
/// against. The RNG is seeded explicitly so that experiments are
/// reproducible; [`Strategy::reset`] rewinds it to the seed.
#[derive(Debug, Clone)]
pub struct Random {
    seed: u64,
    rng: SmallRng,
}

impl Random {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Random { seed, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl Strategy for Random {
    fn name(&self) -> &str {
        "RND"
    }

    fn next(&mut self, universe: &Universe, sample: &Sample) -> Result<Option<ClassId>> {
        let candidates = informative_classes(universe, sample);
        if candidates.is_empty() {
            return Ok(None);
        }
        let i = self.rng.gen_range(0..candidates.len());
        Ok(Some(candidates[i]))
    }

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    #[test]
    fn picks_only_informative_classes() {
        let u = Universe::build(example_2_1());
        let mut s = crate::Sample::new(&u);
        let mut rnd = Random::new(7);
        for _ in 0..5 {
            let c = rnd.next(&u, &s).unwrap().expect("informative left");
            assert!(crate::certain::is_informative(&u, &s, c));
            s.add(&u, c, crate::Label::Negative).unwrap();
            if !s.is_consistent(&u) {
                break;
            }
        }
    }

    #[test]
    fn reset_replays_the_same_sequence() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        let mut rnd = Random::new(99);
        let a = rnd.next(&u, &s).unwrap();
        let b = rnd.next(&u, &s).unwrap();
        rnd.reset();
        assert_eq!(rnd.next(&u, &s).unwrap(), a);
        assert_eq!(rnd.next(&u, &s).unwrap(), b);
    }

    #[test]
    fn halts_when_nothing_informative() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let u = Universe::build(b.build().unwrap());
        let s = crate::Sample::new(&u);
        let mut rnd = Random::new(0);
        assert_eq!(rnd.next(&u, &s).unwrap(), None);
    }
}
