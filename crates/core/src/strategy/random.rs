//! The random baseline strategy (RND).

use crate::error::Result;
use crate::state::InferenceState;
use crate::strategy::Strategy;
use crate::universe::ClassId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RND: picks a uniformly random informative tuple.
///
/// The paper uses RND as the baseline all other strategies are compared
/// against. The RNG is seeded explicitly so that experiments are
/// reproducible.
///
/// The choice is **memoryless**: each call seeds a fresh RNG from
/// `(seed, |S|)` instead of advancing a long-lived generator. Driven
/// normally — one answer between `next` calls — the draws still differ per
/// step, but the strategy becomes a pure function of its configuration and
/// the current state, like every other strategy in the crate. That is what
/// makes session snapshot/restore exact: replaying a session's label
/// history puts RND in precisely the position an uninterrupted run would
/// occupy, with no RNG stream offset to reconstruct.
#[derive(Debug, Clone)]
pub struct Random {
    seed: u64,
}

impl Random {
    /// Creates the strategy with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Random { seed }
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Strategy for Random {
    fn name(&self) -> &str {
        "RND"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // RND deliberately bypasses the universe-level decision cache: its
        // choice depends on the per-session seed and on |S| (the history
        // length), neither of which the shared (T(S⁺), negative-mask) key
        // captures — two sessions at the same derived state must be free
        // to draw different candidates.
        let n = state.informative_len();
        if n == 0 {
            return Ok(None);
        }
        // Decorrelate consecutive steps with a splitmix64-style odd
        // multiplier; SmallRng's seeding scrambles the rest.
        let step = (state.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ step);
        let i = rng.gen_range(0..n);
        // Word-skipping select straight off the informative mask: the i-th
        // set bit is the same class the old materialized list held at [i].
        Ok(state.nth_informative(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    #[test]
    fn picks_only_informative_classes() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut rnd = Random::new(7);
        for _ in 0..5 {
            let c = rnd.next(&state).unwrap().expect("informative left");
            assert!(state.is_informative(c));
            state.apply(c, Label::Negative).unwrap();
            if !state.is_consistent() {
                break;
            }
        }
    }

    #[test]
    fn choice_is_a_pure_function_of_seed_and_state() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut rnd = Random::new(99);
        let a = rnd.next(&state).unwrap();
        // No hidden stream position: re-asking the same state re-draws the
        // same candidate, and a freshly built strategy (the restore path)
        // agrees with one that has been asked before.
        assert_eq!(rnd.next(&state).unwrap(), a);
        let mut restored = Random::new(99);
        assert_eq!(restored.next(&state).unwrap(), a);
        state.apply(a.unwrap(), Label::Negative).unwrap();
        assert_eq!(rnd.next(&state).unwrap(), restored.next(&state).unwrap());
    }

    #[test]
    fn different_seeds_can_disagree() {
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let picks: std::collections::HashSet<_> = (0..32u64)
            .map(|seed| Random::new(seed).next(&state).unwrap())
            .collect();
        assert!(picks.len() > 1, "all 32 seeds picked the same candidate");
    }

    #[test]
    fn halts_when_nothing_informative() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let u = Universe::build(b.build().unwrap());
        let state = InferenceState::new(&u);
        let mut rnd = Random::new(0);
        assert_eq!(rnd.next(&state).unwrap(), None);
    }
}
