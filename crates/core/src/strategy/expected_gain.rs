//! The expected-gain strategy (EG) — a probabilistic extension (§7).
//!
//! The paper's future work proposes "lookahead strategies using
//! probabilistic graphical models". This module implements the natural
//! first step: instead of the skyline over worst/best cases
//! `(min(u⁺,u⁻), max(u⁺,u⁻))`, rank tuples by the *expected* number of
//! tuples rendered uninformative,
//!
//! ```text
//! EG(t) = p(t)·u⁺ + (1 − p(t))·u⁻
//! ```
//!
//! where `p(t)` is the probability that the user labels `t` positively
//! under a uniform prior over the consistent predicates `C(S)`. The
//! counts `|C(S)|` and `|{θ ∈ C(S) | θ selects t}|` are computed *exactly*
//! by inclusion–exclusion over the negative examples:
//!
//! ```text
//! C(S) = P(T(S⁺)) \ ⋃_{t′∈S⁻} P(T(S⁺) ∩ T(t′))
//! ```
//!
//! so `|C(S)| = Σ_{N ⊆ S⁻} (−1)^{|N|} 2^{|T(S⁺) ∩ ⋂_{t′∈N} T(t′)|}`, and the
//! selecting count is the same sum with every term further intersected
//! with `T(t)`. Exponential in `|S⁻|`, so beyond
//! [`ExpectedGain::MAX_NEGATIVES`] the strategy falls back to the
//! uninformed prior `p = ½` (which ranks by `(u⁺ + u⁻)/2`).
//!
//! The gains `u⁺`/`u⁻` come from the state's incremental entropy
//! computation (shared with L1S through the same version-stamped cache).

use crate::certain::CountMode;
use crate::error::Result;
use crate::state::InferenceState;
use crate::strategy::{cached_move, Strategy, CACHE_KEY_EG};
use crate::universe::ClassId;
use jqi_relation::BitSet;

/// EG: picks the informative tuple with maximal expected information gain
/// under a uniform prior over consistent predicates.
#[derive(Debug, Clone, Default)]
pub struct ExpectedGain;

impl ExpectedGain {
    /// Inclusion–exclusion is `O(2^{|S⁻|})`; beyond this many negative
    /// examples the label probability falls back to ½.
    pub const MAX_NEGATIVES: usize = 16;

    /// Creates the strategy.
    pub fn new() -> Self {
        ExpectedGain
    }
}

/// `Σ_{N ⊆ negs} (−1)^{|N|} 2^{|base ∩ ⋂ N|}` as an f64 (counts can exceed
/// u64 for wide Ω; f64 keeps the ratios we need).
fn count_down_set(base: &BitSet, negs: &[&BitSet]) -> f64 {
    let k = negs.len();
    debug_assert!(k <= ExpectedGain::MAX_NEGATIVES);
    let mut total = 0.0f64;
    for mask in 0u32..(1u32 << k) {
        let mut inter = base.clone();
        for (i, neg) in negs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                inter.intersect_with(neg);
            }
        }
        let term = 2f64.powi(inter.len() as i32);
        if mask.count_ones() % 2 == 0 {
            total += term;
        } else {
            total -= term;
        }
    }
    total
}

/// The probability that class `c` is labeled positive under a uniform
/// prior over `C(S)`. Returns `None` when `|S⁻|` exceeds the
/// inclusion–exclusion budget.
pub fn positive_probability(state: &InferenceState<'_>, c: ClassId) -> Option<f64> {
    let (negs, total) = sorted_negatives_and_total(state)?;
    Some(selecting_probability(state, c, &negs, total))
}

/// The candidate-invariant part of the label probability: the negative
/// signatures in **canonical (class-id) order** and `|C(S)|`. Hoisted out
/// of the per-candidate loop by [`ExpectedGain::select`]; `None` when the
/// inclusion–exclusion budget is exceeded or `C(S)` is empty.
///
/// Canonical order, NOT labeling order: the inclusion–exclusion terms are
/// summed in f64, so the summation order must be a function of the
/// negative *set* for EG's move to be cacheable under the
/// `(T(S⁺), neg mask)` key — two sessions that labeled the same negatives
/// in different orders must compute bit-identical gains.
fn sorted_negatives_and_total<'s>(state: &'s InferenceState<'_>) -> Option<(Vec<&'s BitSet>, f64)> {
    if state.negatives().len() > ExpectedGain::MAX_NEGATIVES {
        return None;
    }
    let universe = state.universe();
    let mut neg_ids: Vec<ClassId> = state.negatives().to_vec();
    neg_ids.sort_unstable();
    let negs: Vec<&BitSet> = neg_ids.iter().map(|&g| universe.sig(g)).collect();
    let total = count_down_set(state.t_pos(), &negs);
    if total <= 0.0 {
        return None; // inconsistent or empty C(S): probability undefined
    }
    Some((negs, total))
}

/// `|{θ ∈ C(S) : θ selects c}| / |C(S)|` given the hoisted invariants:
/// predicates selecting `c` are `θ ⊆ T(S⁺) ∩ T(c)`, minus the same union
/// of negative down-sets.
fn selecting_probability(
    state: &InferenceState<'_>,
    c: ClassId,
    negs: &[&BitSet],
    total: f64,
) -> f64 {
    let base_sel = state.t_pos().intersection(state.universe().sig(c));
    (count_down_set(&base_sel, negs) / total).clamp(0.0, 1.0)
}

impl ExpectedGain {
    /// The uncached expected-gain selection over the current state. The
    /// candidate-invariant half of the probability (sorted negatives,
    /// `|C(S)|`) is computed once, not per informative class.
    fn select(&self, state: &InferenceState<'_>) -> Option<ClassId> {
        let prior = sorted_negatives_and_total(state);
        let mut best: Option<(f64, ClassId)> = None;
        for c in state.informative() {
            let (u_pos, u_neg) = state.gain_pair(c, CountMode::Tuples);
            let p = match &prior {
                Some((negs, total)) => selecting_probability(state, c, negs, *total),
                None => 0.5,
            };
            let gain = p * u_pos as f64 + (1.0 - p) * u_neg as f64;
            if best.is_none_or(|(bg, bc)| gain > bg || (gain == bg && c < bc)) {
                best = Some((gain, c));
            }
        }
        best.map(|(_, c)| c)
    }
}

impl Strategy for ExpectedGain {
    fn name(&self) -> &str {
        "EG"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // The probabilities and gains are deterministic functions of the
        // derived state (the inclusion–exclusion sum iterates the negative
        // set order-independently), so EG's move is served from the shared
        // universe-level decision cache like the other deterministic
        // strategies.
        Ok(cached_move(CACHE_KEY_EG, state, || self.select(state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    #[test]
    fn probability_is_one_for_certain_positive() {
        use jqi_relation::{InstanceBuilder, Value};
        // Single tuple with T = Ω: every consistent predicate selects it.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let u = Universe::build(b.build().unwrap());
        let state = InferenceState::new(&u);
        assert_eq!(positive_probability(&state, 0), Some(1.0));
    }

    #[test]
    fn probability_shrinks_with_signature() {
        // Empty sample on Example 2.1: C(S) = P(Ω), |Ω| = 6, so the
        // probability that θ ⊆ T(t) is 2^{|T(t)|}/2^6.
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        for c in 0..u.num_classes() {
            let expect = 2f64.powi(u.sig(c).len() as i32) / 64.0;
            let got = positive_probability(&state, c).unwrap();
            assert!((got - expect).abs() < 1e-12, "class {c}: {got} vs {expect}");
        }
    }

    #[test]
    fn probability_respects_negatives() {
        // After labeling the ∅-signature tuple negative, C(S) loses only
        // the empty predicate: |C(S)| = 2^6 − 1.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let c_empty = (0..u.num_classes()).find(|&c| u.sig(c).is_empty()).unwrap();
        state.apply(c_empty, Label::Negative).unwrap();
        let c_one = (0..u.num_classes()).find(|&c| u.sig(c).len() == 1).unwrap();
        // θ ⊆ T(t) with |T| = 1: 2 predicates, minus the empty one = 1.
        let got = positive_probability(&state, c_one).unwrap();
        assert!((got - 1.0 / 63.0).abs() < 1e-12);
    }

    #[test]
    fn eg_infers_correctly_on_all_goals() {
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        for goal in &goals {
            let mut strategy = ExpectedGain::new();
            let mut oracle = PredicateOracle::new(goal.clone());
            let run = run_inference(&u, &mut strategy, &mut oracle).unwrap();
            assert_eq!(
                u.instance().equijoin(&run.predicate),
                u.instance().equijoin(goal),
            );
        }
    }

    #[test]
    fn eg_is_competitive_with_l1s_on_average() {
        let u = Universe::build(example_2_1());
        let goals = crate::lattice::non_nullable_predicates(&u, 10_000).unwrap();
        let mut eg_total = 0usize;
        let mut l1s_total = 0usize;
        for goal in &goals {
            let mut o1 = PredicateOracle::new(goal.clone());
            eg_total += run_inference(&u, &mut ExpectedGain::new(), &mut o1)
                .unwrap()
                .interactions;
            let mut o2 = PredicateOracle::new(goal.clone());
            l1s_total += run_inference(&u, &mut crate::strategy::Lookahead::l1s(), &mut o2)
                .unwrap()
                .interactions;
        }
        // Not a theorem; a guardrail that the probabilistic ranking is in
        // the same league as the paper's L1S (within 25% on this instance).
        assert!(
            (eg_total as f64) <= l1s_total as f64 * 1.25,
            "EG {eg_total} vs L1S {l1s_total}"
        );
    }

    #[test]
    fn move_is_independent_of_negative_label_order() {
        // The decision cache serves EG's move under a (T(S⁺), neg mask)
        // key, so two sessions that labeled the same negative SET in
        // different ORDERS must compute bit-identical probabilities and
        // the same move — the f64 inclusion–exclusion sum must not depend
        // on labeling order. Cache disabled: compare raw computation.
        let u = Universe::build(example_2_1()).with_decision_cache_budget(0);
        let probe = InferenceState::new(&u);
        let n1 = probe.nth_informative(0).unwrap();
        let n2 = probe.nth_informative(3).unwrap();
        let mut a = InferenceState::new(&u);
        let mut b = InferenceState::new(&u);
        a.apply(n1, Label::Negative).unwrap();
        a.apply(n2, Label::Negative).unwrap();
        b.apply(n2, Label::Negative).unwrap();
        b.apply(n1, Label::Negative).unwrap();
        assert!(a.is_consistent() && b.is_consistent());
        for c in a.informative() {
            let pa = positive_probability(&a, c);
            let pb = positive_probability(&b, c);
            assert!(
                pa == pb,
                "probability depends on labeling order for class {c}: {pa:?} vs {pb:?}"
            );
        }
        let mut eg_a = ExpectedGain::new();
        let mut eg_b = ExpectedGain::new();
        assert_eq!(eg_a.next(&a).unwrap(), eg_b.next(&b).unwrap());
    }

    #[test]
    fn inclusion_exclusion_matches_enumeration() {
        // Cross-check count_down_set against brute force on Example 2.1.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state
            .apply(u.class_of(1, 1).unwrap(), Label::Positive)
            .unwrap();
        state
            .apply(u.class_of(0, 2).unwrap(), Label::Negative)
            .unwrap();
        let sample = state.as_sample();
        let nbits = u.omega_len();
        let brute = (0u64..(1 << nbits))
            .filter(|&mask| {
                let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
                sample.admits(&u, &theta)
            })
            .count() as f64;
        let negs: Vec<&BitSet> = state.negatives().iter().map(|&g| u.sig(g)).collect();
        let ie = count_down_set(state.t_pos(), &negs);
        assert_eq!(ie, brute);
    }
}
