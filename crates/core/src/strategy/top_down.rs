//! The top-down local strategy (TD, Algorithm 3).

use crate::error::Result;
use crate::lattice::maximal_among;
use crate::state::InferenceState;
use crate::strategy::bottom_up::min_signature_informative;
use crate::strategy::{cached_move, Strategy, CACHE_KEY_TD};
use crate::universe::ClassId;

/// TD: while there is no positive example, presents tuples whose signature
/// is `⊆`-maximal (descending the lattice from Ω); once a positive example
/// arrives, behaves like bottom-up.
///
/// A negative answer on a maximal node prunes everything below it
/// (Lemma 3.4 with `T(S⁺) = Ω`), so TD infers the goal Ω — the worst case
/// for BU — after labeling only the maximal classes. The paper's line 2
/// quantifies over all of `D` (`∄ t′ ∈ D. T(t) ⊊ T(t′)`); we take maximality
/// among *informative* signatures, which coincides whenever a maximal class
/// is still informative and remains well-defined in the corner case where
/// the unique maximal signature is Ω itself (certain-positive from the
/// start, hence never informative).
#[derive(Debug, Clone, Default)]
pub struct TopDown;

impl TopDown {
    /// Creates the strategy.
    pub fn new() -> Self {
        TopDown
    }
}

impl TopDown {
    /// The uncached Algorithm 3 selection over the current state.
    fn select(&self, state: &InferenceState<'_>) -> Option<ClassId> {
        if !state.positives().is_empty() {
            // Lines 3–5: with a positive example the goal is non-nullable;
            // switch to the bottom-up order.
            return min_signature_informative(state);
        }
        // Lines 1–2: an informative class whose signature is maximal among
        // informative signatures; prefer larger signatures, then smaller id.
        //
        // With the static closure available, `c` is maximal among the
        // informative classes iff no *other* informative signature contains
        // it — distinct classes have distinct signatures, so containment is
        // proper — i.e. iff `|up(c) ∧ open| = 1`: one popcount per
        // candidate instead of the bucketed subset scans of
        // [`maximal_among`].
        let universe = state.universe();
        let closure = universe.closure();
        let best = if closure.has_static_masks() {
            let open = state.informative_mask();
            state
                .informative()
                .filter(|&c| {
                    let up = closure.up(c).expect("static masks present");
                    jqi_relation::bitset::count_and(up, open.words()) == 1
                })
                .min_by_key(|&c| (usize::MAX - universe.sig_size(c), c))
        } else {
            let informative: Vec<ClassId> = state.informative().collect();
            maximal_among(universe, &informative)
                .into_iter()
                .min_by_key(|&c| (usize::MAX - universe.sig_size(c), c))
        };
        debug_assert!(
            best.is_some() || !state.any_informative(),
            "maximality over informative classes always has a witness"
        );
        best
    }
}

impl Strategy for TopDown {
    fn name(&self) -> &str {
        "TD"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // TD is deterministic and parameterless; its move is served from
        // the shared universe-level decision cache in both phases. The
        // phase bit the cache helper folds in matters for TD in
        // particular: its branch on "any positive yet?" is not captured by
        // T(S⁺) alone.
        Ok(cached_move(CACHE_KEY_TD, state, || self.select(state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    #[test]
    fn first_picks_are_maximal_nodes() {
        // §4.3: TD first asks about tuples corresponding to ⊆-maximal
        // predicates, e.g. {(A1,B1),(A1,B2),(A2,B3)} = (t4,t1').
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let mut td = TopDown::new();
        let c = td.next(&state).unwrap().unwrap();
        let maximal = crate::lattice::maximal_classes(&u);
        assert!(maximal.contains(&c));
        assert_eq!(u.sig(c).len(), 3, "size-3 nodes are preferred first");
    }

    #[test]
    fn goal_omega_labels_only_maximal_classes() {
        // If the user answers all-negative, TD infers Ω after labeling the
        // seven maximal classes — not all twelve (BU's worst case).
        let u = Universe::build(example_2_1());
        let mut oracle = PredicateOracle::new(u.omega());
        let run = run_inference(&u, &mut TopDown::new(), &mut oracle).unwrap();
        assert_eq!(run.interactions, crate::lattice::maximal_classes(&u).len());
        assert_eq!(run.interactions, 7);
        assert_eq!(run.predicate, u.omega());
    }

    #[test]
    fn switches_to_bottom_up_after_a_positive() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut td = TopDown::new();
        let c = td.next(&state).unwrap().unwrap();
        state.apply(c, Label::Positive).unwrap();
        let c2 = td.next(&state).unwrap().unwrap();
        // BU choice: smallest informative signature.
        let bu = min_signature_informative(&state).unwrap();
        assert_eq!(c2, bu);
    }

    #[test]
    fn agrees_with_bu_for_all_positive_history() {
        let u = Universe::build(example_2_1());
        let goal = crate::predicate_from_names(u.instance(), &[("A1", "B1")]).unwrap();
        let mut oracle_td = PredicateOracle::new(goal.clone());
        let mut oracle_bu = PredicateOracle::new(goal.clone());
        let td = run_inference(&u, &mut TopDown::new(), &mut oracle_td).unwrap();
        let bu = run_inference(&u, &mut crate::strategy::BottomUp::new(), &mut oracle_bu).unwrap();
        assert_eq!(
            u.instance().equijoin(&td.predicate),
            u.instance().equijoin(&bu.predicate)
        );
    }
}
