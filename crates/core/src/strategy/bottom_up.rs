//! The bottom-up local strategy (BU, Algorithm 2).

use crate::error::Result;
use crate::state::InferenceState;
use crate::strategy::{cached_move, Strategy, CACHE_KEY_BU};
use crate::universe::ClassId;

/// BU: navigates the lattice from the most general predicate `∅` upward,
/// always presenting an informative tuple with minimal `|T(t)|`.
///
/// Discovers small goal predicates (especially `∅`) in very few questions,
/// but degenerates when the user answers only negatively: in the worst case
/// it visits every T-equivalence class. Ties on `|T(t)|` break toward the
/// smallest class id so runs are deterministic.
#[derive(Debug, Clone, Default)]
pub struct BottomUp;

impl BottomUp {
    /// Creates the strategy.
    pub fn new() -> Self {
        BottomUp
    }
}

/// Shared by BU and the positive-phase of TD: the informative class with the
/// smallest signature. One pass over the maintained informative mask, using
/// the universe's precomputed signature sizes.
pub(crate) fn min_signature_informative(state: &InferenceState<'_>) -> Option<ClassId> {
    let universe = state.universe();
    state
        .informative()
        .min_by_key(|&c| (universe.sig_size(c), c))
}

impl Strategy for BottomUp {
    fn name(&self) -> &str {
        "BU"
    }

    fn next(&mut self, state: &InferenceState<'_>) -> Result<Option<ClassId>> {
        // Deterministic and parameterless: served from the shared
        // universe-level decision cache in both phases. The scan itself is
        // one pass over the open mask, but a fleet of sessions sharing a
        // universe repeats the same states endlessly and a cache probe is
        // O(mask words) regardless of how many classes are open.
        Ok(cached_move(CACHE_KEY_BU, state, || {
            min_signature_informative(state)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_inference, PredicateOracle};
    use crate::paper::example_2_1;
    use crate::sample::Label;
    use crate::universe::Universe;

    #[test]
    fn first_pick_is_the_empty_signature_tuple() {
        // §4.3: on Example 2.1, BU first asks about (t3,t1') with T = ∅.
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let mut bu = BottomUp::new();
        let c = bu.next(&state).unwrap().unwrap();
        assert_eq!(u.representative(c), (2, 0));
        assert!(u.sig(c).is_empty());
    }

    #[test]
    fn second_pick_is_the_size_one_node() {
        // §4.3: after a negative answer on ∅, BU selects (t2,t1') with
        // T = {(A1,B3)}.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut bu = BottomUp::new();
        let c0 = bu.next(&state).unwrap().unwrap();
        state.apply(c0, Label::Negative).unwrap();
        let c1 = bu.next(&state).unwrap().unwrap();
        assert_eq!(u.representative(c1), (1, 0));
        assert_eq!(u.sig(c1).len(), 1);
    }

    #[test]
    fn empty_goal_takes_one_interaction() {
        // §5.3: the goal ∅ is inferred by BU with a single question.
        let u = Universe::build(example_2_1());
        let goal = u.instance().pairs().bottom();
        let mut oracle = PredicateOracle::new(goal.clone());
        let run = run_inference(&u, &mut BottomUp::new(), &mut oracle).unwrap();
        assert_eq!(run.interactions, 1);
        assert_eq!(
            u.instance().equijoin(&run.predicate),
            u.instance().equijoin(&goal)
        );
    }

    #[test]
    fn all_negative_worst_case_visits_every_class() {
        // With goal Ω (nothing selected — no tuple has T = Ω here), the user
        // answers negatively throughout and BU labels all 12 classes.
        let u = Universe::build(example_2_1());
        let goal = u.omega();
        let mut oracle = PredicateOracle::new(goal);
        let run = run_inference(&u, &mut BottomUp::new(), &mut oracle).unwrap();
        assert_eq!(run.interactions, 12);
    }
}
