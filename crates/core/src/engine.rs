//! The general inference algorithm (Algorithm 1) and user oracles.
//!
//! [`run_inference`] drives a [`Strategy`] against an [`Oracle`] until the
//! halt condition Γ holds (no informative tuple remains), verifying
//! consistency after every answer exactly as Algorithm 1 lines 6–7, and
//! returns the most specific consistent predicate `T(S⁺)`.
//!
//! Oracles model the user:
//!
//! * [`PredicateOracle`] labels consistently with a goal predicate θG — the
//!   honest user of the paper (and of its experiments).
//! * [`FnOracle`] wraps a closure, for custom user models.
//! * [`AdversarialOracle`] answers so as to maximize the number of remaining
//!   questions cheaply (it always answers "−" unless "+" is forced to keep
//!   consistency); used to probe worst cases.

use crate::error::{InferenceError, Result};
use crate::sample::{Label, Sample};
use crate::state::InferenceState;
use crate::strategy::Strategy;
use crate::universe::{ClassId, Universe};
use jqi_relation::BitSet;

/// A source of labels: the (possibly simulated) user.
pub trait Oracle {
    /// Labels the representative tuple of class `c`.
    fn label(&mut self, universe: &Universe, c: ClassId) -> Label;
}

/// Labels consistently with a fixed goal predicate θG: positive iff
/// `θG ⊆ T(t)`.
#[derive(Debug, Clone)]
pub struct PredicateOracle {
    goal: BitSet,
}

impl PredicateOracle {
    /// Creates the oracle for goal `θG`.
    pub fn new(goal: BitSet) -> Self {
        PredicateOracle { goal }
    }

    /// The goal predicate.
    pub fn goal(&self) -> &BitSet {
        &self.goal
    }
}

impl Oracle for PredicateOracle {
    fn label(&mut self, universe: &Universe, c: ClassId) -> Label {
        if self.goal.is_subset(universe.sig(c)) {
            Label::Positive
        } else {
            Label::Negative
        }
    }
}

/// Wraps a closure as an oracle.
pub struct FnOracle<F: FnMut(&Universe, ClassId) -> Label>(pub F);

impl<F: FnMut(&Universe, ClassId) -> Label> Oracle for FnOracle<F> {
    fn label(&mut self, universe: &Universe, c: ClassId) -> Label {
        (self.0)(universe, c)
    }
}

/// A lazy adversary: answers "−" whenever some consistent predicate rejects
/// the tuple, i.e. whenever "−" keeps the sample consistent.
///
/// For an informative tuple both answers keep consistency, so this oracle
/// effectively always answers "−" on the tuples a (correct) strategy asks
/// about — the user whose goal turns out to be the instance-equivalent of Ω.
/// It maintains a shadow sample to decide the forced cases when driven with
/// non-informative questions.
#[derive(Debug, Default)]
pub struct AdversarialOracle {
    shadow: Option<Sample>,
}

impl AdversarialOracle {
    /// Creates the adversary.
    pub fn new() -> Self {
        AdversarialOracle { shadow: None }
    }
}

impl Oracle for AdversarialOracle {
    fn label(&mut self, universe: &Universe, c: ClassId) -> Label {
        let shadow = self.shadow.get_or_insert_with(|| Sample::new(universe));
        let mut trial = shadow.clone();
        let label =
            if trial.add(universe, c, Label::Negative).is_ok() && trial.is_consistent(universe) {
                Label::Negative
            } else {
                Label::Positive
            };
        if label == Label::Negative {
            *shadow = trial;
        } else {
            let _ = shadow.add(universe, c, Label::Positive);
        }
        label
    }
}

/// The outcome of one inference run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The inferred predicate `T(S⁺)` — the most specific predicate
    /// consistent with the user's labels (instance-equivalent to the goal).
    pub predicate: BitSet,
    /// Number of questions asked (`|S|`).
    pub interactions: usize,
    /// The questions and answers, in order.
    pub history: Vec<(ClassId, Label)>,
    /// The final sample.
    pub sample: Sample,
}

/// Algorithm 1: repeatedly asks the strategy for a tuple, the oracle for its
/// label, and stops when no informative tuple remains. Errors if the oracle
/// produces an inconsistent labeling (lines 6–7).
///
/// One [`InferenceState`] is threaded through the whole run: each answer is
/// applied incrementally (O(affected classes)), the strategy reads the
/// maintained candidate set, and the halt/consistency checks are O(1) reads
/// — nothing in the loop rescans Ω.
///
/// Note the paper's remark (§4.1): a strategy that asks only *informative*
/// tuples can never trigger the inconsistency error, because a tuple is
/// informative precisely when both labels keep the sample consistent. The
/// check still guards custom strategies that may re-ask certain tuples.
pub fn run_inference(
    universe: &Universe,
    strategy: &mut dyn Strategy,
    oracle: &mut dyn Oracle,
) -> Result<RunResult> {
    let mut state = InferenceState::new(universe);
    while let Some(c) = strategy.next(&state)? {
        let label = oracle.label(universe, c);
        state.apply(c, label)?;
        if !state.is_consistent() {
            return Err(InferenceError::InconsistentSample { class: c });
        }
    }
    Ok(RunResult {
        predicate: state.t_pos().clone(),
        interactions: state.len(),
        history: state.history().to_vec(),
        sample: state.as_sample(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{example_2_1, flight_hotel};
    use crate::strategy::{BottomUp, Lookahead, Random, Strategy, TopDown};
    use crate::universe::Universe;

    /// The introduction's scenario: distinguishing Q1 from Q2 on the
    /// flight & hotel instance.
    #[test]
    fn flight_hotel_q1_vs_q2() {
        let inst = flight_hotel();
        let q1 = crate::predicate_from_names(&inst, &[("To", "City")]).unwrap();
        let q2 =
            crate::predicate_from_names(&inst, &[("To", "City"), ("Airline", "Discount")]).unwrap();
        let u = Universe::build(inst);
        for goal in [q1, q2] {
            for mut strategy in [
                Box::new(BottomUp::new()) as Box<dyn Strategy>,
                Box::new(TopDown::new()),
                Box::new(Lookahead::l1s()),
                Box::new(Lookahead::l2s()),
                Box::new(Random::new(3)),
            ] {
                let mut oracle = PredicateOracle::new(goal.clone());
                let run = run_inference(&u, strategy.as_mut(), &mut oracle).unwrap();
                assert_eq!(
                    u.instance().equijoin(&run.predicate),
                    u.instance().equijoin(&goal),
                    "strategy {} missed the goal",
                    strategy.name()
                );
            }
        }
    }

    /// §3.3: with only negative answers the returned predicate is Ω
    /// (instance-equivalent to the goal).
    #[test]
    fn all_negative_returns_omega() {
        let u = Universe::build(example_2_1());
        let goal = u.omega(); // selects nothing on this instance
        let mut oracle = PredicateOracle::new(goal);
        let run = run_inference(&u, &mut TopDown::new(), &mut oracle).unwrap();
        assert_eq!(run.predicate, u.omega());
        assert!(u.instance().equijoin(&run.predicate).is_empty());
    }

    /// A strategy asking arbitrary (possibly certain) tuples paired with a
    /// dishonest oracle trips the consistency check of lines 6–7.
    #[test]
    fn dishonest_oracle_raises_inconsistency() {
        let u = Universe::build(example_2_1());
        // Script: ask (t2,t2') — answered + → T(S⁺) = {(A1,B1),(A2,B3)};
        // then ask (t4,t1') whose T ⊇ T(S⁺): the dishonest "−" answer
        // makes the sample inconsistent.
        let c_pos = u.class_of(1, 1).unwrap();
        let c_neg = u.class_of(3, 0).unwrap();
        struct Scripted(Vec<ClassId>);
        impl Strategy for Scripted {
            fn name(&self) -> &str {
                "scripted"
            }
            fn next(&mut self, _: &InferenceState<'_>) -> Result<Option<ClassId>> {
                Ok(self.0.pop())
            }
        }
        let mut strategy = Scripted(vec![c_neg, c_pos]); // popped back-first
        let mut oracle = FnOracle(move |_: &Universe, c: usize| {
            if c == c_pos {
                Label::Positive
            } else {
                Label::Negative
            }
        });
        let e = run_inference(&u, &mut strategy, &mut oracle).unwrap_err();
        assert_eq!(e, InferenceError::InconsistentSample { class: c_neg });
    }

    /// With informative-only strategies the inconsistency branch is
    /// unreachable (§4.1): even a maximally erratic oracle yields a
    /// consistent final sample.
    #[test]
    fn informative_only_strategies_never_error() {
        let u = Universe::build(example_2_1());
        let mut flip = 0u32;
        let mut erratic = FnOracle(move |_: &Universe, _| {
            flip += 1;
            if flip.is_multiple_of(2) {
                Label::Positive
            } else {
                Label::Negative
            }
        });
        let run = run_inference(&u, &mut BottomUp::new(), &mut erratic).unwrap();
        assert!(run.sample.is_consistent(&u));
    }

    #[test]
    fn history_and_interactions_agree() {
        let u = Universe::build(example_2_1());
        let goal = crate::predicate_from_names(u.instance(), &[("A1", "B1")]).unwrap();
        let mut oracle = PredicateOracle::new(goal);
        let run = run_inference(&u, &mut Lookahead::l1s(), &mut oracle).unwrap();
        assert_eq!(run.history.len(), run.interactions);
        assert_eq!(run.sample.len(), run.interactions);
        // Labels in the history match the final sample.
        for (c, label) in &run.history {
            assert_eq!(run.sample.label(*c), Some(*label));
        }
    }

    #[test]
    fn adversarial_oracle_is_consistent() {
        let u = Universe::build(example_2_1());
        let mut adversary = AdversarialOracle::new();
        let run = run_inference(&u, &mut TopDown::new(), &mut adversary).unwrap();
        assert!(run.sample.is_consistent(&u));
        // The lazy adversary ends at Ω on this instance.
        assert_eq!(run.predicate, u.omega());
    }
}
