//! The incremental inference core: [`InferenceState`], now mask-compressed.
//!
//! Before this module existed, every strategy re-derived the consequences
//! of the current sample from scratch on each `next` call: consistency, the
//! certain/uninformative classification of every T-equivalence class
//! (Lemmas 3.3–3.4), the uninformative-tuple counts behind entropy (§4.4) —
//! all full scans over Ω. A first rewrite made the state incremental
//! (`O(affected classes)` per label), but it still carried a per-class
//! status vector, a materialized informative list and a per-class entropy
//! cache, and every certainty or gain query walked signatures word by word.
//!
//! This version compresses the whole derived state into **class-index
//! bitmasks** over ≤ `|classes|` bits, backed by the containment closure
//! the shared [`Universe`] precomputes once ([`crate::universe::ClassClosure`]):
//!
//! * the labeled / certain-positive / certain-negative / informative
//!   partition is five masks of `⌈|classes|/64⌉` words each;
//! * applying a label is a handful of word-ORs: the classes a negative
//!   example renders certain are `open ∧ down(c)` (one AND per word), and a
//!   positive's reclassification intersects/unions the closure's per-Ω-bit
//!   member masks over the bits of the shrunken `T(S⁺)`;
//! * the gain pair `(u⁺, u⁻)` of §4.4 is a popcount/weight-fold over
//!   `up(c)/down(c) ∧ open` — no per-candidate walk of the informative set;
//! * lookahead speculation copies a few machine words instead of cloning
//!   vectors, so the branch-and-bound recursion's per-node cost is the
//!   word-OR apply itself.
//!
//! # Why the masks stay exact below Ω
//!
//! The static closure masks describe containment of *full* signatures,
//! which coincides with the lemmas' tests only while `T(S⁺) = Ω`. Once a
//! positive example shrinks the interval, every test involves the projected
//! signature `T(t) ∩ T(S⁺)` — and projections can create containments the
//! static order does not have. The closure therefore also stores, per Ω-bit
//! `b`, the mask `members(b)` of classes whose signature has `b`; the exact
//! projected down-set of any bound `X` is then one union–complement,
//!
//! ```text
//! {t : T(t) ∩ T(S⁺) ⊆ X}  =  ¬ ⋃_{b ∈ T(S⁺) ∖ X} members(b),
//! ```
//!
//! costing `O(|T(S⁺)|)` word-ORs — and `|T(S⁺)|` only shrinks as positives
//! arrive, so the dynamic path gets *cheaper* exactly when the static fast
//! path stops applying. Equivalence with the from-scratch specs in
//! [`crate::certain`] / [`crate::entropy`] after arbitrary label sequences
//! (including multi-word Ω and multi-word class masks) is enforced by
//! `tests/properties.rs`.
//!
//! The incremental update remains sound because certainty is **monotone**
//! for consistent samples: `T(S⁺)` only shrinks, so Lemma 3.3's
//! `T(S⁺) ⊆ T(t)` and Lemma 3.4's existential can only flip from false to
//! true, and a label moves classes *out of* the informative mask but never
//! back in.

use crate::certain::CountMode;
use crate::entropy::Entropy;
use crate::error::{InferenceError, Result};
use crate::sample::{Label, Sample};
use crate::universe::{ClassClosure, ClassId, Universe};
use jqi_relation::bitset::{count_and, nth_set_bit, word_count, WORD_BITS};
use jqi_relation::BitSet;
use std::cell::RefCell;
use std::ops::Deref;
use std::sync::Arc;

/// How a state reaches its universe: borrowed from the caller (the classic
/// single-threaded `Session<'u>` shape) or shared behind an [`Arc`] (the
/// owned shape a multi-session server hands across threads).
///
/// The handle is an implementation detail — everything downstream reasons
/// through `Deref<Target = Universe>` — but it is what lets
/// [`InferenceState<'static>`] exist without any borrow, and hence without
/// `unsafe` self-references.
#[derive(Debug, Clone)]
enum UniverseHandle<'u> {
    /// Borrowed for the state's lifetime.
    Borrowed(&'u Universe),
    /// Jointly owned; the state is free of borrows (`'static`).
    Shared(Arc<Universe>),
}

impl Deref for UniverseHandle<'_> {
    type Target = Universe;

    #[inline]
    fn deref(&self) -> &Universe {
        match self {
            UniverseHandle::Borrowed(u) => u,
            UniverseHandle::Shared(u) => u,
        }
    }
}

/// What the engine knows about one T-equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassState {
    /// Unlabeled and informative: both labels keep the sample consistent.
    Informative,
    /// Unlabeled but certainly selected (Lemma 3.3: `T(S⁺) ⊆ T(t)`).
    CertainPositive,
    /// Unlabeled but certainly rejected (Lemma 3.4:
    /// `∃t′ ∈ S⁻. T(S⁺) ∩ T(t) ⊆ T(t′)`).
    CertainNegative,
    /// Labeled positive by the user.
    LabeledPositive,
    /// Labeled negative by the user.
    LabeledNegative,
}

impl ClassState {
    /// The user label, if the class is labeled.
    #[inline]
    pub fn label(self) -> Option<Label> {
        match self {
            ClassState::LabeledPositive => Some(Label::Positive),
            ClassState::LabeledNegative => Some(Label::Negative),
            _ => None,
        }
    }

    /// The certain label of an *unlabeled* class, if any.
    #[inline]
    pub fn certain_label(self) -> Option<Label> {
        match self {
            ClassState::CertainPositive => Some(Label::Positive),
            ClassState::CertainNegative => Some(Label::Negative),
            _ => None,
        }
    }

    /// The label the class is known to carry — recorded or certain.
    #[inline]
    pub fn known_label(self) -> Option<Label> {
        self.label().or_else(|| self.certain_label())
    }

    /// Whether labeling this class can still shrink `C(S)` (§3.4).
    #[inline]
    pub fn is_informative(self) -> bool {
        matches!(self, ClassState::Informative)
    }
}

/// Reusable word buffers for the mask computations, so the hot paths
/// (gains, per-label reclassification) never allocate. `a`/`b` are
/// class-mask sized, `tp` is Ω-sized. Contents are meaningless between
/// calls.
#[derive(Debug, Clone, Default)]
struct MaskScratch {
    a: Vec<u64>,
    b: Vec<u64>,
    tp: Vec<u64>,
}

/// Below this many informative classes, [`InferenceState::gain_pair`] takes
/// the fused direct scan instead of assembling closure masks: the scan is
/// `O(open · |S⁻|)` single-word tests, which beats `O(|θ|)` member-mask ORs
/// once the open set is small — the tail of every session and most
/// speculated lookahead nodes.
const DIRECT_SCAN_OPEN_CAP: u32 = 24;

/// `f` holds for every word triple of three equal-length slices.
#[inline]
fn zip3_all(a: &[u64], b: &[u64], c: &[u64], f: impl Fn(u64, u64, u64) -> bool) -> bool {
    a.iter().zip(b).zip(c).all(|((&x, &y), &z)| f(x, y, z))
}

/// Calls `f` with every set position of `a ∧ ¬b` (missing `b` words = 0).
#[inline]
fn for_bits_diff(a: &[u64], b: &[u64], mut f: impl FnMut(usize)) {
    for (i, &x) in a.iter().enumerate() {
        let mut w = x & !b.get(i).copied().unwrap_or(0);
        while w != 0 {
            f(i * WORD_BITS + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Sum of `counts` over the set bits of `a ∧ b`.
#[inline]
fn weight_and(a: &[u64], b: &[u64], counts: &[u64]) -> u64 {
    let mut total = 0u64;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut w = x & y;
        while w != 0 {
            total += counts[i * WORD_BITS + w.trailing_zeros() as usize];
            w &= w - 1;
        }
    }
    total
}

/// Moves `take ∧ open` out of the informative mask into `into`, returning
/// the retired `(tuple_weight, class_count)`. A free function so callers
/// can hold closure/scratch borrows across the call (field-level split
/// borrows).
fn retire_words(open: &mut BitSet, into: &mut BitSet, take: &[u64], counts: &[u64]) -> (u64, u64) {
    let (mut dt, mut dc) = (0u64, 0u64);
    for (i, ((o, t), &v)) in open
        .words_mut()
        .iter_mut()
        .zip(into.words_mut())
        .zip(take)
        .enumerate()
    {
        let mut w = *o & v;
        if w == 0 {
            continue;
        }
        *t |= w;
        *o &= !w;
        dc += w.count_ones() as u64;
        while w != 0 {
            dt += counts[i * WORD_BITS + w.trailing_zeros() as usize];
            w &= w - 1;
        }
    }
    (dt, dc)
}

/// How a session's derived state survived a universe migration — see
/// [`InferenceState::rebind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebindReport {
    /// Labels that could not carry over because their class's signature —
    /// and hence all of its tuples — vanished from the new universe.
    pub dropped_labels: usize,
    /// Whether the masks carried over structurally in `O(masks)` (the new
    /// universe has the identical signature sequence — a count-only
    /// delta) rather than via history replay.
    pub carried_masks: bool,
}

/// The incrementally maintained, mask-compressed derived state of one
/// inference session.
///
/// See the module docs for the representation and maintenance invariants.
/// Cloning copies a few machine words per 64 classes (plus the label
/// bookkeeping), which is what the lookahead recursion and the minimax
/// strategy build their speculation on. [`InferenceState::state_bytes`]
/// reports the resident footprint.
#[derive(Debug, Clone)]
pub struct InferenceState<'u> {
    universe: UniverseHandle<'u>,
    /// Unlabeled, not certain — the candidate mask every strategy draws
    /// from. Always the complement of the other four masks.
    open: BitSet,
    labeled_pos: BitSet,
    labeled_neg: BitSet,
    cert_pos: BitSet,
    cert_neg: BitSet,
    /// Positive / negative classes, in labeling order.
    pos: Vec<ClassId>,
    neg: Vec<ClassId>,
    /// Questions and answers, in order.
    history: Vec<(ClassId, Label)>,
    /// `θ_possible = T(S⁺)`: every consistent predicate is ⊆ it.
    theta_possible: BitSet,
    /// Whether `θ_possible` still equals Ω — the static-closure fast path.
    theta_is_omega: bool,
    /// Lazily computed `θ_certain` (stamp, value): pairs contained in every
    /// consistent predicate. Computed on first read per version, so the
    /// speculation-heavy paths (minimax, depth-k lookahead) never pay for
    /// it.
    theta_certain: RefCell<(u64, BitSet)>,
    /// Popcount of `open`, maintained across updates.
    open_count: u32,
    /// Weighted uninformative counts (see
    /// [`crate::certain::uninformative_count`]), one per [`CountMode`].
    uninf_tuples: u64,
    uninf_classes: u64,
    consistent: bool,
    /// Bumped on every applied label; stamps the θ_certain cache.
    version: u64,
    scratch: RefCell<MaskScratch>,
}

impl<'u> InferenceState<'u> {
    /// The state of the empty sample over `universe`.
    ///
    /// Construction performs the one full scan of the session: classes with
    /// `T(t) = Ω` are certain-positive from the start (every predicate
    /// selects them), everything else is informative.
    pub fn new(universe: &'u Universe) -> Self {
        Self::from_handle(UniverseHandle::Borrowed(universe))
    }

    /// Like [`InferenceState::new`], but jointly owning the universe.
    ///
    /// The result is `'static` — it contains no borrow at all — which is
    /// what lets an owned session live in a long-running service's session
    /// table and be moved freely across threads.
    pub fn new_shared(universe: Arc<Universe>) -> InferenceState<'static> {
        InferenceState::from_handle(UniverseHandle::Shared(universe))
    }

    fn from_handle(universe: UniverseHandle<'u>) -> Self {
        let classes = universe.num_classes();
        let omega_len = universe.omega_len();
        let mask_words = word_count(classes);
        let mut open = BitSet::empty(classes);
        let mut cert_pos = BitSet::empty(classes);
        let mut open_count = 0u32;
        let mut uninf_tuples = 0u64;
        let mut uninf_classes = 0u64;
        for c in 0..classes {
            if universe.sig_size(c) == omega_len {
                cert_pos.insert(c);
                uninf_tuples += universe.count(c);
                uninf_classes += 1;
            } else {
                open.insert(c);
                open_count += 1;
            }
        }
        let theta_possible = universe.omega();
        InferenceState {
            theta_certain: RefCell::new((1, BitSet::empty(omega_len))),
            scratch: RefCell::new(MaskScratch {
                a: vec![0; mask_words],
                b: vec![0; mask_words],
                tp: vec![0; word_count(omega_len)],
            }),
            universe,
            open,
            labeled_pos: BitSet::empty(classes),
            labeled_neg: BitSet::empty(classes),
            cert_pos,
            cert_neg: BitSet::empty(classes),
            pos: Vec::new(),
            neg: Vec::new(),
            history: Vec::new(),
            theta_possible,
            theta_is_omega: true,
            open_count,
            uninf_tuples,
            uninf_classes,
            consistent: true,
            version: 1,
        }
    }

    /// The universe the session runs over.
    #[inline]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// When the universe is jointly owned (see [`InferenceState::new_shared`]),
    /// a fresh handle to it; `None` for borrowing states.
    pub fn shared_universe(&self) -> Option<Arc<Universe>> {
        match &self.universe {
            UniverseHandle::Borrowed(_) => None,
            UniverseHandle::Shared(u) => Some(Arc::clone(u)),
        }
    }

    /// Number of T-equivalence classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.open.capacity()
    }

    /// Number of labeled examples (`|S|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no example has been labeled yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The state of class `c`.
    #[inline]
    pub fn class_state(&self, c: ClassId) -> ClassState {
        if self.labeled_pos.contains(c) {
            ClassState::LabeledPositive
        } else if self.labeled_neg.contains(c) {
            ClassState::LabeledNegative
        } else if self.cert_pos.contains(c) {
            ClassState::CertainPositive
        } else if self.cert_neg.contains(c) {
            ClassState::CertainNegative
        } else {
            ClassState::Informative
        }
    }

    /// The recorded label of class `c`, if any.
    #[inline]
    pub fn label(&self, c: ClassId) -> Option<Label> {
        if self.labeled_pos.contains(c) {
            Some(Label::Positive)
        } else if self.labeled_neg.contains(c) {
            Some(Label::Negative)
        } else {
            None
        }
    }

    /// What the engine already knows about class `c` without asking: its
    /// recorded or certain label.
    #[inline]
    pub fn known_label(&self, c: ClassId) -> Option<Label> {
        self.class_state(c).known_label()
    }

    /// Whether class `c` is informative (§3.4).
    #[inline]
    pub fn is_informative(&self, c: ClassId) -> bool {
        self.open.contains(c)
    }

    /// Positive classes, in labeling order.
    #[inline]
    pub fn positives(&self) -> &[ClassId] {
        &self.pos
    }

    /// Negative classes, in labeling order.
    #[inline]
    pub fn negatives(&self) -> &[ClassId] {
        &self.neg
    }

    /// The questions and answers so far, in order.
    #[inline]
    pub fn history(&self) -> &[(ClassId, Label)] {
        &self.history
    }

    /// Decomposes the state into its label history — the replay log a
    /// hibernated session tier keeps while every derived mask is dropped.
    /// Replaying it through [`InferenceState::apply_batch`] rebuilds this
    /// exact state.
    pub fn into_history(self) -> Vec<(ClassId, Label)> {
        self.history
    }

    /// Resident heap bytes of the label history, counted by allocation
    /// **capacity** (what the `Vec` actually holds from the allocator —
    /// up to ~2× the length under doubling growth), not by length. This
    /// is the honest term for footprint comparisons against a hibernated
    /// tier, whose shrunken replay logs have capacity = length.
    pub fn history_heap_bytes(&self) -> usize {
        self.history.capacity() * std::mem::size_of::<(ClassId, Label)>()
    }

    /// `θ_possible = T(S⁺)`, the most specific predicate consistent with
    /// the positives — the upper end of the consistent interval. Equals `Ω`
    /// while `S⁺ = ∅`.
    #[inline]
    pub fn theta_possible(&self) -> &BitSet {
        &self.theta_possible
    }

    /// Alias of [`theta_possible`](Self::theta_possible) matching the
    /// `Sample::t_pos` name.
    #[inline]
    pub fn t_pos(&self) -> &BitSet {
        &self.theta_possible
    }

    /// `θ_certain`: the attribute pairs contained in **every** consistent
    /// predicate — the lower end of the consistent interval.
    ///
    /// `k ∈ θ_certain` iff `T(S⁺) \ {k} ⊆ T(t′)` for some `t′ ∈ S⁻`: the
    /// down-sets `P(T(S⁺) ∩ T(t′))` are the inconsistent predicates, and a
    /// union of down-sets covers `P(X)` iff it contains `X` itself, so
    /// dropping `k` must land the whole remaining interval inside one of
    /// them. Empty while there is no negative example.
    ///
    /// Computed lazily on first read per state version
    /// (`O(|θ_possible| · |S⁻|)` subset tests, bounded by the number of
    /// answers), then served from the cache — the speculation-heavy
    /// recursions that never read it never pay for it.
    pub fn theta_certain(&self) -> BitSet {
        let mut cache = self.theta_certain.borrow_mut();
        if cache.0 != self.version {
            let mut certain = BitSet::empty(self.theta_possible.capacity());
            if !self.neg.is_empty() {
                for k in self.theta_possible.iter() {
                    let forced = self.neg.iter().any(|&g| {
                        self.theta_possible
                            .is_subset_except(self.universe.sig(g), k)
                    });
                    if forced {
                        certain.insert(k);
                    }
                }
            }
            *cache = (self.version, certain);
        }
        cache.1.clone()
    }

    /// The consistent-predicate interval `[θ_certain, θ_possible]`: every
    /// predicate consistent with the sample contains the first and is
    /// contained in the second.
    pub fn interval(&self) -> (BitSet, BitSet) {
        (self.theta_certain(), self.theta_possible.clone())
    }

    /// Whether some equijoin predicate is consistent with the labels so far
    /// (§3.1). Maintained incrementally; `O(1)` to read.
    #[inline]
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The informative classes, ascending — the candidate set every
    /// strategy draws from, iterated straight off the class-index mask.
    #[inline]
    pub fn informative(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.open.iter()
    }

    /// The informative classes as the raw class-index mask.
    #[inline]
    pub fn informative_mask(&self) -> &BitSet {
        &self.open
    }

    /// The negatively labeled classes as the raw class-index mask.
    ///
    /// Together with `T(S⁺)` this mask determines the whole derived state,
    /// which is what makes the pair the key of the universe-level decision
    /// cache ([`Universe::cached_decision`]).
    #[inline]
    pub fn labeled_negative_mask(&self) -> &BitSet {
        &self.labeled_neg
    }

    /// The exact decision-cache mask keys of the current derived state:
    /// `(T(S⁺) words, negative-label mask words)`, with `T(S⁺)` normalized
    /// to the **empty slice** while it still equals Ω — the whole negative
    /// phase then shares one canonical key form regardless of `|Ω|`.
    ///
    /// This pair (plus the caller's strategy fingerprint, including the
    /// "any positive yet?" phase bit) determines every deterministic
    /// strategy's move; see [`Universe::cached_decision`] for the argument.
    #[inline]
    pub fn decision_masks(&self) -> (&[u64], &[u64]) {
        let pos: &[u64] = if self.theta_is_omega {
            &[]
        } else {
            self.theta_possible.words()
        };
        (pos, self.labeled_neg.words())
    }

    /// Number of informative classes. `O(1)`; maintained across updates.
    #[inline]
    pub fn informative_len(&self) -> usize {
        self.open_count as usize
    }

    /// The `i`-th informative class in ascending order (word-skipping
    /// select on the mask), or `None` when `i ≥ informative_len()`.
    #[inline]
    pub fn nth_informative(&self, i: usize) -> Option<ClassId> {
        nth_set_bit(self.open.words(), i)
    }

    /// Whether any informative tuple remains — the negation of Algorithm
    /// 1's halt condition Γ.
    #[inline]
    pub fn any_informative(&self) -> bool {
        self.open_count > 0
    }

    /// The weighted count of uninformative tuples under `mode`, matching
    /// [`crate::certain::uninformative_count`]. `O(1)`.
    #[inline]
    pub fn uninformative_count(&self, mode: CountMode) -> u64 {
        match mode {
            CountMode::Tuples => self.uninf_tuples,
            CountMode::Classes => self.uninf_classes,
        }
    }

    /// Resident heap bytes of the derived session state: the five partition
    /// masks, the interval bounds, the mask scratch, and the positive /
    /// negative class lists. Excludes the shared universe (paid once per
    /// process, not per session) and the label history (the replay log a
    /// snapshot persists, proportional to the number of answers).
    pub fn state_bytes(&self) -> usize {
        let word = std::mem::size_of::<u64>();
        let masks = 5 * std::mem::size_of_val(self.open.words());
        let theta = std::mem::size_of_val(self.theta_possible.words());
        let theta_certain = std::mem::size_of_val(self.theta_certain.borrow().1.words());
        let scratch = self.scratch.borrow();
        let scratch_bytes = (scratch.a.len() + scratch.b.len() + scratch.tp.len()) * word;
        let labels = (self.pos.len() + self.neg.len()) * std::mem::size_of::<ClassId>();
        masks + theta + theta_certain + scratch_bytes + labels
    }

    /// Writes `{t : restrict ∩ T(t) ⊆ allowed}` into `out` — the exact
    /// projected down-set of the module docs, for any restriction
    /// (`θ_possible`, or a hypothetical `θ ∩ T(c)` during gains):
    /// `out = ¬ ⋃ members(b)` over the set bits of `restrict ∧ ¬allowed`.
    #[inline]
    fn down_under_into(closure: &ClassClosure, restrict: &[u64], allowed: &[u64], out: &mut [u64]) {
        out.iter_mut().for_each(|w| *w = 0);
        for_bits_diff(restrict, allowed, |b| {
            let m = closure.members(b);
            out.iter_mut().zip(m).for_each(|(w, &v)| *w |= v);
        });
        out.iter_mut().for_each(|w| *w = !*w);
    }

    /// Writes `{t : require ⊆ T(t)}` into `out`: `⋂ members(b)` over the
    /// set bits of `require` (all-ones for the empty requirement — callers
    /// AND with `open` before consuming).
    #[inline]
    fn supersets_into(closure: &ClassClosure, require: &[u64], out: &mut [u64]) {
        out.iter_mut().for_each(|w| *w = !0);
        for (i, &x) in require.iter().enumerate() {
            let mut w = x;
            while w != 0 {
                let b = i * WORD_BITS + w.trailing_zeros() as usize;
                let m = closure.members(b);
                out.iter_mut().zip(m).for_each(|(o, &v)| *o &= v);
                w &= w - 1;
            }
        }
    }

    /// Applies one label, updating every derived quantity incrementally.
    ///
    /// Mirrors `Sample::add` + the consistency check of Algorithm 1 lines
    /// 5–7: the label is recorded unconditionally (double labeling and
    /// out-of-range classes are rejected), and
    /// [`is_consistent`](Self::is_consistent) turns
    /// false if no predicate explains the labels — in which case the
    /// partition stops being maintained (certainty is only defined for
    /// consistent samples) and the caller is expected to abort, as
    /// [`crate::engine::run_inference`] does.
    ///
    /// Cost: one projected-down-set mask (`O(|θ_possible|)` word-ORs; a
    /// single word-AND per mask word on the `θ = Ω` fast path) for a
    /// negative label, the same per negative example for a positive one —
    /// never a rescan of all of Ω, and no allocation.
    pub fn apply(&mut self, c: ClassId, label: Label) -> Result<()> {
        let classes = self.num_classes();
        if c >= classes {
            return Err(InferenceError::ClassOutOfBounds {
                class: c,
                len: classes,
            });
        }
        if self.labeled_pos.contains(c) || self.labeled_neg.contains(c) {
            return Err(InferenceError::AlreadyLabeled { class: c });
        }
        let was_informative = self.open.contains(c);

        // Counter bookkeeping for the labeled class itself: an informative
        // class starts contributing weight − 1 (its classmates become
        // certain); an already-certain class merely stops counting its
        // representative.
        if was_informative {
            self.open.remove(c);
            self.open_count -= 1;
            self.uninf_tuples += self.universe.count(c).saturating_sub(1);
            // Classes-mode weight is 1, and the labeled representative is
            // excluded, so the class contributes 0.
        } else {
            self.cert_pos.remove(c);
            self.cert_neg.remove(c);
            self.uninf_tuples = self.uninf_tuples.saturating_sub(1);
            self.uninf_classes = self.uninf_classes.saturating_sub(1);
        }
        match label {
            Label::Positive => self.labeled_pos.insert(c),
            Label::Negative => self.labeled_neg.insert(c),
        }
        self.history.push((c, label));
        self.version += 1;

        match label {
            Label::Positive => {
                self.pos.push(c);
                let sig = self.universe.sig(c);
                if !self.theta_possible.is_subset(sig) {
                    // θ_possible shrinks to θ_possible ∩ T(c).
                    self.theta_possible.intersect_with(sig);
                    self.theta_is_omega = false;
                    if self.consistent {
                        // §3.1: consistency must be re-checked against every
                        // negative under the shrunken T(S⁺).
                        let tp = &self.theta_possible;
                        self.consistent = self
                            .neg
                            .iter()
                            .all(|&g| !tp.is_subset(self.universe.sig(g)));
                    }
                    if self.consistent {
                        self.reclassify_open();
                    }
                }
            }
            Label::Negative => {
                self.neg.push(c);
                if self.consistent {
                    self.consistent = !self.theta_possible.is_subset(self.universe.sig(c));
                }
                if self.consistent {
                    // The only new Lemma 3.4 witness is T(c): retire the
                    // projected down-set of T(c) from the informative mask.
                    let mut scratch = self.scratch.borrow_mut();
                    let MaskScratch { a, .. } = &mut *scratch;
                    let closure = self.universe.closure();
                    let take: &[u64] = match closure.down(c).filter(|_| self.theta_is_omega) {
                        Some(down) => down,
                        None => {
                            Self::down_under_into(
                                closure,
                                self.theta_possible.words(),
                                self.universe.sig(c).words(),
                                a,
                            );
                            a
                        }
                    };
                    let (dt, dc) = retire_words(
                        &mut self.open,
                        &mut self.cert_neg,
                        take,
                        self.universe.counts(),
                    );
                    self.open_count -= dc as u32;
                    self.uninf_tuples += dt;
                    self.uninf_classes += dc;
                }
            }
        }

        Ok(())
    }

    /// Re-tests every informative class against the shrunken `θ_possible`:
    /// classes containing the new bound become certain-positive, classes
    /// whose projection lands inside some negative's signature become
    /// certain-negative (in that order — the spec's priority).
    fn reclassify_open(&mut self) {
        let mut scratch = self.scratch.borrow_mut();
        let MaskScratch { a, b, .. } = &mut *scratch;
        let closure = self.universe.closure();
        let counts = self.universe.counts();
        // Certain-positive: {t : θ ⊆ T(t)}.
        Self::supersets_into(closure, self.theta_possible.words(), a);
        let (mut dt, mut dc) = retire_words(&mut self.open, &mut self.cert_pos, a, counts);
        // Certain-negative among the remaining open classes:
        // ⋃_g {t : θ ∩ T(t) ⊆ T(g)}.
        if !self.neg.is_empty() {
            a.iter_mut().for_each(|w| *w = 0);
            for &g in &self.neg {
                Self::down_under_into(
                    closure,
                    self.theta_possible.words(),
                    self.universe.sig(g).words(),
                    b,
                );
                a.iter_mut().zip(b.iter()).for_each(|(x, &y)| *x |= y);
            }
            let (dt2, dc2) = retire_words(&mut self.open, &mut self.cert_neg, a, counts);
            dt += dt2;
            dc += dc2;
        }
        self.open_count -= dc as u32;
        self.uninf_tuples += dt;
        self.uninf_classes += dc;
    }

    /// The per-class weight `mode` assigns.
    #[inline]
    fn weight_of_and(&self, mask: &[u64], mode: CountMode) -> u64 {
        match mode {
            CountMode::Tuples => weight_and(mask, self.open.words(), self.universe.counts()),
            CountMode::Classes => count_and(mask, self.open.words()) as u64,
        }
    }

    /// `u^α_{t,S}`: the weighted number of tuples that would become
    /// uninformative if informative class `c` were labeled `alpha`
    /// (Figure 5 / §4.4), relative to the current sample.
    ///
    /// Computed as a popcount/weight-fold of closure masks against the
    /// informative mask — the `θ = Ω` fast path is a single word-AND per
    /// mask word; below Ω the exact projected masks cost `O(|θ_possible|)`
    /// word-ORs (per negative example for `α = +`). No allocation.
    pub fn gain(&self, c: ClassId, alpha: Label, mode: CountMode) -> u64 {
        debug_assert!(
            self.is_informative(c),
            "gain is defined for informative classes"
        );
        let closure = self.universe.closure();
        let mut scratch = self.scratch.borrow_mut();
        let MaskScratch { a, b, tp } = &mut *scratch;
        let sum = match alpha {
            Label::Negative => {
                // Classes whose projection lands inside T(c).
                if self.theta_is_omega {
                    if let Some(down) = closure.down(c) {
                        return self.weight_of_and(down, mode) - 1;
                    }
                }
                Self::down_under_into(
                    closure,
                    self.theta_possible.words(),
                    self.universe.sig(c).words(),
                    a,
                );
                self.weight_of_and(a, mode)
            }
            Label::Positive => {
                // T(S⁺) would shrink to tp = θ ∩ T(c): certain-positives are
                // the supersets of tp, certain-negatives the classes some
                // negative covers under tp.
                let sig = self.universe.sig(c).words();
                let tp: &[u64] = if self.theta_is_omega {
                    sig
                } else {
                    tp.iter_mut()
                        .zip(self.theta_possible.words().iter().zip(sig))
                        .for_each(|(o, (&x, &y))| *o = x & y);
                    tp
                };
                if self.theta_is_omega && self.neg.is_empty() {
                    if let Some(up) = closure.up(c) {
                        return self.weight_of_and(up, mode) - 1;
                    }
                }
                Self::supersets_into(closure, tp, a);
                for &g in &self.neg {
                    Self::down_under_into(closure, tp, self.universe.sig(g).words(), b);
                    a.iter_mut().zip(b.iter()).for_each(|(x, &y)| *x |= y);
                }
                self.weight_of_and(a, mode)
            }
        };
        // `c` itself is always in the mask (tp ⊆ T(c) on both branches) and
        // contributes weight − 1: the labeled representative joins S, its
        // classmates become certain.
        sum - 1
    }

    /// The `(u⁺, u⁻)` gain pair of informative class `c`.
    /// [`entropy`](Self::entropy) is its normalized view; the lookahead
    /// recursion reads the raw pair to order label branches.
    ///
    /// Adaptive: once the informative mask is small (the tail of every
    /// session, and most speculated lookahead nodes), both gains come from
    /// **one** fused pass over the open classes applying the raw Lemma
    /// 3.3/3.4 word tests — cheaper than two mask assemblies when there are
    /// fewer open classes than `|θ_possible|` bits. Above the threshold the
    /// closure-mask path takes over. Both paths are exact; a unit test
    /// pins them to each other on both sides of the threshold.
    pub fn gain_pair(&self, c: ClassId, mode: CountMode) -> (u64, u64) {
        if self.open_count <= DIRECT_SCAN_OPEN_CAP {
            self.gain_pair_direct(c, mode)
        } else {
            (
                self.gain(c, Label::Positive, mode),
                self.gain(c, Label::Negative, mode),
            )
        }
    }

    /// The fused small-open gain pair: a single pass over the informative
    /// mask, testing each open class once against `c`'s hypothetical labels
    /// with allocation-free word loops.
    fn gain_pair_direct(&self, c: ClassId, mode: CountMode) -> (u64, u64) {
        debug_assert!(
            self.is_informative(c),
            "gain is defined for informative classes"
        );
        let universe: &Universe = &self.universe;
        let theta = self.theta_possible.words();
        let sig_c = universe.sig(c).words();
        let (mut u_pos, mut u_neg) = (0u64, 0u64);
        for x in self.open.iter() {
            let weight = match mode {
                CountMode::Tuples => universe.count(x),
                CountMode::Classes => 1,
            };
            let sig_x = universe.sig(x).words();
            // Negative on c: x retires iff θ ∩ T(x) ⊆ T(c)  (Lemma 3.4
            // with witness T(c)).
            if zip3_all(theta, sig_x, sig_c, |t, x, c| t & x & !c == 0) {
                u_neg += weight;
            }
            // Positive on c: T(S⁺) shrinks to tp = θ ∩ T(c); x retires iff
            // tp ⊆ T(x) (Lemma 3.3) or some negative covers tp ∩ T(x)
            // (Lemma 3.4).
            let pos = zip3_all(theta, sig_c, sig_x, |t, c, x| t & c & !x == 0)
                || self.neg.iter().any(|&g| {
                    let sig_g = universe.sig(g).words();
                    theta
                        .iter()
                        .zip(sig_c)
                        .zip(sig_x)
                        .zip(sig_g)
                        .all(|(((&t, &c), &x), &g)| t & c & x & !g == 0)
                });
            if pos {
                u_pos += weight;
            }
        }
        // `c` itself satisfied both conditions; as the labeled example it
        // contributes weight − 1 on each side.
        (u_pos - 1, u_neg - 1)
    }

    /// The one-step entropy of informative class `c` (§4.4).
    pub fn entropy(&self, c: ClassId, mode: CountMode) -> Entropy {
        let (u_pos, u_neg) = self.gain_pair(c, mode);
        Entropy::of(u_pos, u_neg)
    }

    /// One-step entropies of all informative classes, ascending by class.
    pub fn entropies(&self, mode: CountMode) -> Vec<(ClassId, Entropy)> {
        self.informative()
            .map(|c| (c, self.entropy(c, mode)))
            .collect()
    }

    /// A hypothetical successor state: `self` with `(c, label)` applied.
    ///
    /// This is what the depth-k lookahead recursion and the minimax-optimal
    /// strategy branch on — a copy of a few machine words plus one mask
    /// apply, never a from-scratch re-derivation.
    pub fn speculate(&self, c: ClassId, label: Label) -> InferenceState<'u> {
        let mut next = self.clone();
        next.apply(c, label)
            .expect("speculated class must be unlabeled and in range");
        next
    }

    /// Like [`speculate`](Self::speculate), but rebuilds `out` in place,
    /// reusing its existing allocations (masks, Ω-width bitsets, scratch)
    /// instead of cloning into fresh ones.
    ///
    /// The depth-k lookahead recursion calls this once per visited tree
    /// node through a per-depth scratch pool, turning the per-node
    /// allocation cost into a one-time warm-up. `out` may hold any previous
    /// state (even over a different universe); it is overwritten
    /// wholesale, so the result is indistinguishable from
    /// `*out = self.speculate(c, label)`.
    pub fn speculate_into(&self, c: ClassId, label: Label, out: &mut InferenceState<'u>) {
        out.universe.clone_from(&self.universe);
        out.open.clone_from(&self.open);
        out.labeled_pos.clone_from(&self.labeled_pos);
        out.labeled_neg.clone_from(&self.labeled_neg);
        out.cert_pos.clone_from(&self.cert_pos);
        out.cert_neg.clone_from(&self.cert_neg);
        out.pos.clone_from(&self.pos);
        out.neg.clone_from(&self.neg);
        out.history.clone_from(&self.history);
        out.theta_possible.clone_from(&self.theta_possible);
        out.theta_is_omega = self.theta_is_omega;
        {
            let mut dst = out.theta_certain.borrow_mut();
            let src = self.theta_certain.borrow();
            dst.0 = src.0;
            dst.1.clone_from(&src.1);
        }
        {
            let mut dst = out.scratch.borrow_mut();
            let src = self.scratch.borrow();
            dst.a.resize(src.a.len(), 0);
            dst.b.resize(src.b.len(), 0);
            dst.tp.resize(src.tp.len(), 0);
        }
        out.open_count = self.open_count;
        out.uninf_tuples = self.uninf_tuples;
        out.uninf_classes = self.uninf_classes;
        out.consistent = self.consistent;
        out.version = self.version;
        out.apply(c, label)
            .expect("speculated class must be unlabeled and in range");
    }

    /// Reconstructs the equivalent [`Sample`] (the from-scratch
    /// representation) by replaying the label history.
    pub fn as_sample(&self) -> Sample {
        let mut sample = Sample::new(&self.universe);
        for &(c, label) in &self.history {
            sample
                .add(&self.universe, c, label)
                .expect("state history never double-labels");
        }
        sample
    }

    /// Applies a batch of answers in one call, folding them into the state
    /// without any intervening strategy work — the shape in which
    /// asynchronous answers (a crowdsourcing task queue, a web UI with
    /// several outstanding questions) arrive at a server. This is also the
    /// snapshot-restore fast path: replaying a history is one `apply_batch`
    /// of mask ops, no strategy work and no per-answer allocation.
    ///
    /// Per answer: out-of-range classes error; a duplicate answer carrying
    /// the **same** label as the recorded one is skipped (idempotent — two
    /// crowd workers may label the same tuple); a duplicate carrying the
    /// **opposite** label errors with [`InferenceError::ConflictingLabel`];
    /// an answer that would make the sample inconsistent is **rejected
    /// without being applied** and the batch aborts with
    /// [`InferenceError::InconsistentSample`] naming the offending class
    /// (Algorithm 1 lines 5–7, checked per answer *before* recording it);
    /// everything else is applied incrementally. On a consistent state the
    /// pre-check is an O(1) certainty-mask probe: a negative is
    /// inconsistent iff the class is certain-positive, a positive iff it is
    /// certain-negative.
    ///
    /// Returns the number of answers actually applied. On error the
    /// answers *before* the offending one remain applied, the offending
    /// one is not, and — unlike the raw [`apply`](Self::apply) — the state
    /// is still consistent: the session remains usable and its history
    /// remains replayable (snapshots taken after a rejected batch still
    /// restore).
    pub fn apply_batch(&mut self, answers: &[(ClassId, Label)]) -> Result<usize> {
        let mut applied = 0usize;
        for &(c, label) in answers {
            if c >= self.num_classes() {
                return Err(InferenceError::ClassOutOfBounds {
                    class: c,
                    len: self.num_classes(),
                });
            }
            if let Some(existing) = self.label(c) {
                if existing == label {
                    continue;
                }
                return Err(InferenceError::ConflictingLabel {
                    class: c,
                    existing,
                    conflicting: label,
                });
            }
            // §3.1 consistency, tested speculatively so a bad answer never
            // poisons the recorded history. While the partition is
            // maintained this is one mask probe; otherwise fall back to the
            // direct signature tests.
            let inconsistent = if self.consistent {
                match label {
                    Label::Negative => self.cert_pos.contains(c),
                    Label::Positive => self.cert_neg.contains(c),
                }
            } else {
                match label {
                    Label::Negative => self.theta_possible.is_subset(self.universe.sig(c)),
                    Label::Positive => {
                        let sig = self.universe.sig(c);
                        self.neg.iter().any(|&g| {
                            self.theta_possible
                                .intersection_is_subset(sig, self.universe.sig(g))
                        })
                    }
                }
            };
            if inconsistent {
                return Err(InferenceError::InconsistentSample { class: c });
            }
            self.apply(c, label)?;
            applied += 1;
            debug_assert!(self.consistent, "pre-checked answers stay consistent");
        }
        Ok(applied)
    }

    /// Re-derives this state over `universe` — typically the
    /// [`Universe::apply_delta`](crate::delta) successor of the one it was
    /// built over — carrying labels across by class **signature** (class
    /// ids shift when classes die; signatures are the stable identity).
    ///
    /// Two paths:
    ///
    /// * **Carried** — the new universe has the *identical* signature
    ///   sequence (a count-only delta). Every mask transfers verbatim
    ///   (certainty is a function of signatures alone); only the weighted
    ///   uninformative counters are re-derived from the new class counts.
    ///   `O(masks)` words, no replay.
    /// * **Replayed** — the class structure changed. The label history is
    ///   remapped by signature and folded into a fresh state with
    ///   [`InferenceState::apply_batch`]. Labels whose class signature
    ///   vanished (all of its tuples were deleted) are dropped and
    ///   counted in the report — a label about data that no longer exists
    ///   constrains nothing. Dropping labels can only *widen* the
    ///   consistent interval, so a consistent session stays consistent;
    ///   replay errors (a corrupt history) are propagated, leaving the
    ///   original state untouched.
    pub fn rebind(
        &self,
        universe: Arc<Universe>,
    ) -> Result<(InferenceState<'static>, RebindReport)> {
        if self.consistent && self.universe.sigs() == universe.sigs() {
            let omega_len = universe.omega_len();
            let mask_words = word_count(universe.num_classes());
            let mut next = InferenceState {
                universe: UniverseHandle::Shared(universe),
                open: self.open.clone(),
                labeled_pos: self.labeled_pos.clone(),
                labeled_neg: self.labeled_neg.clone(),
                cert_pos: self.cert_pos.clone(),
                cert_neg: self.cert_neg.clone(),
                pos: self.pos.clone(),
                neg: self.neg.clone(),
                history: self.history.clone(),
                theta_possible: self.theta_possible.clone(),
                theta_is_omega: self.theta_is_omega,
                // Stamp 0 never matches a live version: recomputed on read.
                theta_certain: RefCell::new((0, BitSet::empty(omega_len))),
                open_count: self.open_count,
                uninf_tuples: 0,
                uninf_classes: 0,
                consistent: true,
                version: self.version,
                scratch: RefCell::new(MaskScratch {
                    a: vec![0; mask_words],
                    b: vec![0; mask_words],
                    tp: vec![0; word_count(omega_len)],
                }),
            };
            next.recount_uninformative();
            return Ok((
                next,
                RebindReport {
                    dropped_labels: 0,
                    carried_masks: true,
                },
            ));
        }
        let mut history = Vec::with_capacity(self.history.len());
        let mut dropped = 0usize;
        for &(c, label) in &self.history {
            match universe.class_for_signature(self.universe.sig(c)) {
                Some(nc) => history.push((nc, label)),
                None => dropped += 1,
            }
        }
        let mut next = InferenceState::new_shared(universe);
        next.apply_batch(&history)?;
        Ok((
            next,
            RebindReport {
                dropped_labels: dropped,
                carried_masks: false,
            },
        ))
    }

    /// Re-derives the weighted uninformative counters from the current
    /// masks and the universe's class counts: a certain unlabeled class
    /// contributes its full count, a labeled class its count minus the
    /// labeled representative.
    fn recount_uninformative(&mut self) {
        let counts = self.universe.counts();
        let mut tuples = 0u64;
        let mut classes = 0u64;
        for c in self.cert_pos.iter().chain(self.cert_neg.iter()) {
            tuples += counts[c];
            classes += 1;
        }
        for c in self.labeled_pos.iter().chain(self.labeled_neg.iter()) {
            tuples += counts[c] - 1;
        }
        self.uninf_tuples = tuples;
        self.uninf_classes = classes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certain::{self, informative_classes, uninformative_count, CountMode};
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    fn class_of(u: &Universe, ri: usize, pi: usize) -> ClassId {
        u.class_of(ri, pi).unwrap()
    }

    /// Checks the state against the from-scratch implementations in
    /// `certain.rs` after each of a sequence of labels.
    fn assert_matches_scratch(state: &InferenceState<'_>, sample: &Sample) {
        let u = state.universe();
        assert_eq!(state.is_consistent(), sample.is_consistent(u));
        assert_eq!(state.t_pos(), sample.t_pos());
        if !state.is_consistent() {
            return; // partition is only defined for consistent samples
        }
        assert_eq!(
            state.informative().collect::<Vec<_>>(),
            informative_classes(u, sample),
            "informative sets diverge"
        );
        assert_eq!(
            state.informative_len(),
            informative_classes(u, sample).len()
        );
        for mode in [CountMode::Tuples, CountMode::Classes] {
            assert_eq!(
                state.uninformative_count(mode),
                uninformative_count(u, sample, mode),
                "uninformative count diverges for {mode:?}"
            );
        }
        for c in 0..u.num_classes() {
            assert_eq!(state.label(c), sample.label(c));
            if sample.label(c).is_none() {
                assert_eq!(
                    state.class_state(c).certain_label(),
                    certain::certain_label(u, sample, c),
                    "certain label diverges for class {c}"
                );
            }
        }
    }

    #[test]
    fn tracks_scratch_on_example_2_1_replay() {
        // Example 2.1 driven through a mixed label sequence.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut sample = Sample::new(&u);
        assert_matches_scratch(&state, &sample);
        let script = [
            (class_of(&u, 1, 1), Label::Positive),
            (class_of(&u, 0, 2), Label::Negative),
            (class_of(&u, 2, 1), Label::Negative),
        ];
        for (c, label) in script {
            state.apply(c, label).unwrap();
            sample.add(&u, c, label).unwrap();
            assert_matches_scratch(&state, &sample);
        }
    }

    #[test]
    fn entropy_matches_scratch_entropy() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut sample = Sample::new(&u);
        for mode in [CountMode::Tuples, CountMode::Classes] {
            for c in state.informative() {
                assert_eq!(
                    state.entropy(c, mode),
                    crate::entropy::entropy(&u, &sample, c, mode),
                    "entropy diverges for class {c} under {mode:?}"
                );
            }
        }
        // And again mid-session, where T(S⁺) sits below Ω and the masks
        // must take the exact projected path.
        let c = class_of(&u, 0, 2);
        state.apply(c, Label::Positive).unwrap();
        sample.add(&u, c, Label::Positive).unwrap();
        for t in state.informative().collect::<Vec<_>>() {
            assert_eq!(
                state.entropy(t, CountMode::Tuples),
                crate::entropy::entropy(&u, &sample, t, CountMode::Tuples),
            );
        }
    }

    #[test]
    fn interval_brackets_every_consistent_predicate() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        state.apply(class_of(&u, 0, 2), Label::Negative).unwrap();
        let sample = state.as_sample();
        let (lo, hi) = state.interval();
        let nbits = u.omega_len();
        let mut any = false;
        for mask in 0u64..(1 << nbits) {
            let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
            if sample.admits(&u, &theta) {
                any = true;
                assert!(lo.is_subset(&theta), "θ_certain ⊄ consistent {theta:?}");
                assert!(theta.is_subset(&hi), "consistent {theta:?} ⊄ θ_possible");
            }
        }
        assert!(any, "sample should be consistent");
        // And the bounds are tight: both ends are attained over the brute
        // force (θ_certain is the meet, θ_possible the join, of C(S)).
        let consistent: Vec<BitSet> = (0u64..(1 << nbits))
            .map(|mask| BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1)))
            .filter(|t| sample.admits(&u, t))
            .collect();
        let mut meet = consistent[0].clone();
        let mut join = consistent[0].clone();
        for t in &consistent[1..] {
            meet.intersect_with(t);
            join.union_with(t);
        }
        assert_eq!(meet, lo, "θ_certain must be the meet of C(S)");
        assert_eq!(join, hi, "θ_possible must be the join of C(S)");
    }

    #[test]
    fn speculate_equals_apply() {
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let c = state.nth_informative(3).unwrap();
        for label in Label::BOTH {
            let spec = state.speculate(c, label);
            let mut direct = InferenceState::new(&u);
            direct.apply(c, label).unwrap();
            assert_eq!(
                spec.informative().collect::<Vec<_>>(),
                direct.informative().collect::<Vec<_>>()
            );
            assert_eq!(spec.t_pos(), direct.t_pos());
            assert_eq!(
                spec.uninformative_count(CountMode::Tuples),
                direct.uninformative_count(CountMode::Tuples)
            );
        }
    }

    #[test]
    fn speculate_into_equals_speculate() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 0, 2), Label::Positive).unwrap();
        // Reuse a deliberately unrelated buffer state.
        let mut buffer = InferenceState::new(&u);
        buffer.apply(class_of(&u, 2, 0), Label::Negative).unwrap();
        for c in state.informative().collect::<Vec<_>>() {
            for label in Label::BOTH {
                let fresh = state.speculate(c, label);
                state.speculate_into(c, label, &mut buffer);
                assert_eq!(
                    fresh.informative().collect::<Vec<_>>(),
                    buffer.informative().collect::<Vec<_>>()
                );
                assert_eq!(fresh.t_pos(), buffer.t_pos());
                assert_eq!(fresh.history(), buffer.history());
                assert_eq!(fresh.is_consistent(), buffer.is_consistent());
                for mode in [CountMode::Tuples, CountMode::Classes] {
                    assert_eq!(
                        fresh.uninformative_count(mode),
                        buffer.uninformative_count(mode)
                    );
                }
                assert_eq!(fresh.theta_certain(), buffer.theta_certain());
                for t in fresh.informative().collect::<Vec<_>>() {
                    assert_eq!(
                        fresh.entropy(t, CountMode::Tuples),
                        buffer.entropy(t, CountMode::Tuples),
                        "entropy diverges for class {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn gain_matches_scratch_difference() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 0, 2), Label::Positive).unwrap();
        state.apply(class_of(&u, 2, 0), Label::Negative).unwrap();
        let sample = state.as_sample();
        let base = uninformative_count(&u, &sample, CountMode::Tuples);
        for c in state.informative().collect::<Vec<_>>() {
            for alpha in Label::BOTH {
                let mut s = sample.clone();
                s.add(&u, c, alpha).unwrap();
                let scratch = uninformative_count(&u, &s, CountMode::Tuples).saturating_sub(base);
                assert_eq!(
                    state.gain(c, alpha, CountMode::Tuples),
                    scratch,
                    "gain diverges for class {c} labeled {alpha}"
                );
            }
        }
    }

    #[test]
    fn misuse_is_rejected_like_sample() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        assert!(matches!(
            state.apply(99, Label::Positive),
            Err(InferenceError::ClassOutOfBounds { class: 99, .. })
        ));
        state.apply(3, Label::Positive).unwrap();
        assert!(matches!(
            state.apply(3, Label::Negative),
            Err(InferenceError::AlreadyLabeled { class: 3 })
        ));
    }

    #[test]
    fn apply_batch_folds_skips_and_rejects() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let a = class_of(&u, 1, 1);
        let b = class_of(&u, 0, 2);
        // Mixed batch with an agreeing duplicate: two answers applied.
        let applied = state
            .apply_batch(&[
                (a, Label::Positive),
                (b, Label::Negative),
                (a, Label::Positive),
            ])
            .unwrap();
        assert_eq!(applied, 2);
        assert_eq!(state.len(), 2);
        // A contradicting duplicate errors without touching the state.
        let e = state.apply_batch(&[(b, Label::Positive)]).unwrap_err();
        assert_eq!(
            e,
            InferenceError::ConflictingLabel {
                class: b,
                existing: Label::Negative,
                conflicting: Label::Positive,
            }
        );
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn apply_batch_rejects_inconsistent_answers_without_recording_them() {
        // Positive on (t2,t2') makes (t4,t1') certain-positive; a batch
        // answering it negative is inconsistent. Unlike raw apply(), the
        // batch path rejects the answer *before* recording it, so the
        // session stays consistent and its history stays replayable.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let certain_pos = class_of(&u, 3, 0);
        let batch = [
            (class_of(&u, 1, 1), Label::Positive),
            (certain_pos, Label::Negative),
        ];
        let e = state.apply_batch(&batch).unwrap_err();
        assert_eq!(e, InferenceError::InconsistentSample { class: certain_pos });
        // The prefix before the offending answer is applied; the offending
        // answer is not, and the state is still consistent.
        assert_eq!(state.len(), 1);
        assert!(state.is_consistent());
        assert_eq!(state.label(certain_pos), None);
        assert_eq!(state.class_state(certain_pos), ClassState::CertainPositive);
        // Replaying the surviving history reproduces the state.
        let mut replay = InferenceState::new(&u);
        replay.apply_batch(state.history()).unwrap();
        assert_eq!(replay.t_pos(), state.t_pos());
        assert_eq!(
            replay.informative().collect::<Vec<_>>(),
            state.informative().collect::<Vec<_>>()
        );
        // The certainly-rejected mirror case: negative first, then a batch
        // trying to answer a certain-negative class positive.
        let mut s2 = InferenceState::new(&u);
        s2.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        s2.apply(class_of(&u, 0, 2), Label::Negative).unwrap();
        let certain_neg =
            (0..u.num_classes()).find(|&c| s2.class_state(c) == ClassState::CertainNegative);
        if let Some(cn) = certain_neg {
            let e = s2.apply_batch(&[(cn, Label::Positive)]).unwrap_err();
            assert_eq!(e, InferenceError::InconsistentSample { class: cn });
            assert!(s2.is_consistent());
            assert_eq!(s2.label(cn), None);
        }
    }

    #[test]
    fn inconsistent_labeling_is_detected() {
        // §3.4's certain classes mislabeled: positive on (t2,t2') makes
        // (t4,t1') certain-positive; answering it negative has no
        // consistent explanation.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        let certain_pos = class_of(&u, 3, 0);
        assert_eq!(state.class_state(certain_pos), ClassState::CertainPositive);
        state.apply(certain_pos, Label::Negative).unwrap();
        assert!(!state.is_consistent());
    }

    #[test]
    fn omega_signature_class_is_certain_from_the_start() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(5)]);
        b.row_p(&[Value::int(5)]);
        let u = Universe::build(b.build().unwrap());
        let state = InferenceState::new(&u);
        assert_eq!(state.class_state(0), ClassState::CertainPositive);
        assert!(!state.any_informative());
        assert_eq!(state.uninformative_count(CountMode::Tuples), 1);
    }

    #[test]
    fn as_sample_round_trips_history() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        state.apply(class_of(&u, 2, 1), Label::Negative).unwrap();
        let sample = state.as_sample();
        assert_eq!(sample.len(), 2);
        assert_eq!(sample.t_pos(), state.t_pos());
        assert_eq!(sample.positives(), state.positives());
        assert_eq!(sample.negatives(), state.negatives());
    }

    #[test]
    fn nth_informative_is_select_on_the_mask() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 2, 0), Label::Negative).unwrap();
        let inf: Vec<ClassId> = state.informative().collect();
        assert_eq!(inf.len(), state.informative_len());
        for (i, &c) in inf.iter().enumerate() {
            assert_eq!(state.nth_informative(i), Some(c));
        }
        assert_eq!(state.nth_informative(inf.len()), None);
    }

    #[test]
    fn gain_pair_direct_and_mask_paths_agree() {
        // The adaptive gain_pair must produce identical pairs through the
        // fused direct scan and the closure-mask assembly, empty and
        // mid-session (θ below Ω, negatives present).
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        for step in 0..3 {
            for c in state.informative().collect::<Vec<_>>() {
                for mode in [CountMode::Tuples, CountMode::Classes] {
                    let direct = state.gain_pair_direct(c, mode);
                    let masked = (
                        state.gain(c, Label::Positive, mode),
                        state.gain(c, Label::Negative, mode),
                    );
                    assert_eq!(direct, masked, "paths diverge for {c} at step {step}");
                }
            }
            let c = state.nth_informative(0).unwrap();
            let label = if step == 0 {
                Label::Positive
            } else {
                Label::Negative
            };
            state.apply(c, label).unwrap();
            if !state.is_consistent() {
                break;
            }
        }
    }

    #[test]
    fn state_bytes_is_about_a_hundred_bytes_on_small_universes() {
        // The mask-compressed session state of the paper's instances fits
        // in ~100 bytes + history: five one-word masks, two Ω-word bounds,
        // and the scratch words.
        let u = Universe::build(crate::paper::flight_hotel());
        let mut state = InferenceState::new(&u);
        let empty = state.state_bytes();
        assert!(empty <= 128, "empty-session state is {empty} bytes");
        state
            .apply(state.nth_informative(0).unwrap(), Label::Negative)
            .unwrap();
        assert!(state.state_bytes() <= 160);
    }
}
