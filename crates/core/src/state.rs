//! The incremental inference core: [`InferenceState`].
//!
//! Before this module existed, every strategy re-derived the consequences
//! of the current sample from scratch on each `next` call: consistency, the
//! certain/uninformative classification of every T-equivalence class
//! (Lemmas 3.3–3.4), the uninformative-tuple counts behind entropy (§4.4) —
//! all full scans over Ω. Per interaction step that is `O(|classes| · |S⁻|)`
//! bitset work *per candidate considered*, and the scans were repeated by
//! every strategy, the session halt test, and the engine.
//!
//! `InferenceState` instead owns the derived quantities of a session and
//! updates them in **O(affected classes)** when a label arrives:
//!
//! * the consistent-predicate interval `[θ_certain, θ_possible]`
//!   (see [`InferenceState::theta_possible`] /
//!   [`InferenceState::theta_certain`]) as bitsets,
//! * the partition of classes into labeled / certain-positive /
//!   certain-negative / informative ([`ClassState`]), with the informative
//!   set materialized in ascending class order,
//! * the weighted uninformative counts for both [`CountMode`]s,
//! * a version-stamped per-class entropy cache (the dirty-set: entries
//!   whose stamp lags the state version are stale and recomputed on
//!   demand).
//!
//! The incremental update is sound because certainty is **monotone** for
//! consistent samples: `T(S⁺)` only shrinks as positives arrive (so
//! Lemma 3.3's `T(S⁺) ⊆ T(t)` and Lemma 3.4's
//! `∃t′ ∈ S⁻. T(S⁺) ∩ T(t) ⊆ T(t′)` can only flip from false to true), and
//! negatives only add witnesses to the Lemma 3.4 existential. Hence a label
//! can move classes *out of* the informative set but never back in, and the
//! update only has to rescan the current informative set — which shrinks as
//! the session progresses — rather than all of Ω:
//!
//! * negative label on `c`: `θ_possible` is unchanged, and the only new
//!   certain-negative witness is `T(c)` itself — one subset test per
//!   informative class;
//! * positive label on `c`: `θ_possible` shrinks to `θ_possible ∩ T(c)`,
//!   and each informative class is re-tested against the new interval
//!   (`O(|S⁻|)` witness tests worst case, with `|S⁻|` bounded by the number
//!   of user answers, not by Ω).
//!
//! The from-scratch implementations in [`crate::certain`] and
//! [`crate::entropy`] are kept as executable specifications;
//! `tests/properties.rs` asserts state/spec equivalence after arbitrary
//! label sequences.

use crate::certain::CountMode;
use crate::entropy::Entropy;
use crate::error::{InferenceError, Result};
use crate::sample::{Label, Sample};
use crate::universe::{ClassId, Universe};
use jqi_relation::BitSet;
use std::cell::RefCell;
use std::ops::Deref;
use std::sync::Arc;

/// How a state reaches its universe: borrowed from the caller (the classic
/// single-threaded `Session<'u>` shape) or shared behind an [`Arc`] (the
/// owned shape a multi-session server hands across threads).
///
/// The handle is an implementation detail — everything downstream reasons
/// through `Deref<Target = Universe>` — but it is what lets
/// [`InferenceState<'static>`] exist without any borrow, and hence without
/// `unsafe` self-references.
#[derive(Debug, Clone)]
enum UniverseHandle<'u> {
    /// Borrowed for the state's lifetime.
    Borrowed(&'u Universe),
    /// Jointly owned; the state is free of borrows (`'static`).
    Shared(Arc<Universe>),
}

impl Deref for UniverseHandle<'_> {
    type Target = Universe;

    #[inline]
    fn deref(&self) -> &Universe {
        match self {
            UniverseHandle::Borrowed(u) => u,
            UniverseHandle::Shared(u) => u,
        }
    }
}

/// What the engine knows about one T-equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassState {
    /// Unlabeled and informative: both labels keep the sample consistent.
    Informative,
    /// Unlabeled but certainly selected (Lemma 3.3: `T(S⁺) ⊆ T(t)`).
    CertainPositive,
    /// Unlabeled but certainly rejected (Lemma 3.4:
    /// `∃t′ ∈ S⁻. T(S⁺) ∩ T(t) ⊆ T(t′)`).
    CertainNegative,
    /// Labeled positive by the user.
    LabeledPositive,
    /// Labeled negative by the user.
    LabeledNegative,
}

impl ClassState {
    /// The user label, if the class is labeled.
    #[inline]
    pub fn label(self) -> Option<Label> {
        match self {
            ClassState::LabeledPositive => Some(Label::Positive),
            ClassState::LabeledNegative => Some(Label::Negative),
            _ => None,
        }
    }

    /// The certain label of an *unlabeled* class, if any.
    #[inline]
    pub fn certain_label(self) -> Option<Label> {
        match self {
            ClassState::CertainPositive => Some(Label::Positive),
            ClassState::CertainNegative => Some(Label::Negative),
            _ => None,
        }
    }

    /// The label the class is known to carry — recorded or certain.
    #[inline]
    pub fn known_label(self) -> Option<Label> {
        self.label().or_else(|| self.certain_label())
    }

    /// Whether labeling this class can still shrink `C(S)` (§3.4).
    #[inline]
    pub fn is_informative(self) -> bool {
        matches!(self, ClassState::Informative)
    }
}

/// Version-stamped entropy cache (the dirty-set): `stamps[c] == version`
/// means `values[c]` is current for `mode`. Values are the raw
/// `(u⁺, u⁻)` gain pairs, not the normalized [`Entropy`], so the lookahead
/// recursion can also read the per-label attribution
/// ([`InferenceState::gain_pair`]) without recomputing.
#[derive(Debug, Clone)]
struct EntropyCache {
    mode: CountMode,
    stamps: Vec<u64>,
    values: Vec<(u64, u64)>,
}

impl EntropyCache {
    fn new(classes: usize) -> Self {
        EntropyCache {
            mode: CountMode::Tuples,
            // Version 0 is never a valid stamp: the state starts at 1.
            stamps: vec![0; classes],
            values: vec![(0, 0); classes],
        }
    }
}

/// The incrementally maintained derived state of one inference session.
///
/// See the module docs for the maintenance invariants. Cloning is `O(|N|)`
/// (plus one Ω-width bitset), which is what the lookahead recursion and the
/// minimax strategy use to explore hypothetical labelings without paying
/// for from-scratch re-derivation in each node.
#[derive(Debug, Clone)]
pub struct InferenceState<'u> {
    universe: UniverseHandle<'u>,
    status: Vec<ClassState>,
    /// Positive / negative classes, in labeling order.
    pos: Vec<ClassId>,
    neg: Vec<ClassId>,
    /// Questions and answers, in order.
    history: Vec<(ClassId, Label)>,
    /// `θ_possible = T(S⁺)`: every consistent predicate is ⊆ it.
    theta_possible: BitSet,
    /// Lazily computed `θ_certain` (stamp, value): pairs contained in every
    /// consistent predicate. Computed on first read per version, so the
    /// speculation-heavy paths (minimax, depth-k lookahead) never pay for
    /// it.
    theta_certain: RefCell<(u64, BitSet)>,
    /// Informative classes, ascending. The strategies' candidate set.
    informative: Vec<ClassId>,
    /// Weighted uninformative counts (see
    /// [`crate::certain::uninformative_count`]), one per [`CountMode`].
    uninf_tuples: u64,
    uninf_classes: u64,
    consistent: bool,
    /// Bumped on every applied label; stamps the entropy cache.
    version: u64,
    entropy_cache: RefCell<EntropyCache>,
}

impl<'u> InferenceState<'u> {
    /// The state of the empty sample over `universe`.
    ///
    /// Construction performs the one full scan of the session: classes with
    /// `T(t) = Ω` are certain-positive from the start (every predicate
    /// selects them), everything else is informative.
    pub fn new(universe: &'u Universe) -> Self {
        Self::from_handle(UniverseHandle::Borrowed(universe))
    }

    /// Like [`InferenceState::new`], but jointly owning the universe.
    ///
    /// The result is `'static` — it contains no borrow at all — which is
    /// what lets an owned session live in a long-running service's session
    /// table and be moved freely across threads.
    pub fn new_shared(universe: Arc<Universe>) -> InferenceState<'static> {
        InferenceState::from_handle(UniverseHandle::Shared(universe))
    }

    fn from_handle(universe: UniverseHandle<'u>) -> Self {
        let classes = universe.num_classes();
        let omega_len = universe.omega_len();
        let mut status = Vec::with_capacity(classes);
        let mut informative = Vec::new();
        let mut uninf_tuples = 0u64;
        let mut uninf_classes = 0u64;
        for c in 0..classes {
            if universe.sig_size(c) == omega_len {
                status.push(ClassState::CertainPositive);
                uninf_tuples += universe.count(c);
                uninf_classes += 1;
            } else {
                status.push(ClassState::Informative);
                informative.push(c);
            }
        }
        let theta_possible = universe.omega();
        InferenceState {
            theta_certain: RefCell::new((1, BitSet::empty(universe.omega_len()))),
            universe,
            status,
            pos: Vec::new(),
            neg: Vec::new(),
            history: Vec::new(),
            theta_possible,
            informative,
            uninf_tuples,
            uninf_classes,
            consistent: true,
            version: 1,
            entropy_cache: RefCell::new(EntropyCache::new(classes)),
        }
    }

    /// The universe the session runs over.
    #[inline]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// When the universe is jointly owned (see [`InferenceState::new_shared`]),
    /// a fresh handle to it; `None` for borrowing states.
    pub fn shared_universe(&self) -> Option<Arc<Universe>> {
        match &self.universe {
            UniverseHandle::Borrowed(_) => None,
            UniverseHandle::Shared(u) => Some(Arc::clone(u)),
        }
    }

    /// Number of T-equivalence classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.status.len()
    }

    /// Number of labeled examples (`|S|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no example has been labeled yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The state of class `c`.
    #[inline]
    pub fn class_state(&self, c: ClassId) -> ClassState {
        self.status[c]
    }

    /// The recorded label of class `c`, if any.
    #[inline]
    pub fn label(&self, c: ClassId) -> Option<Label> {
        self.status[c].label()
    }

    /// What the engine already knows about class `c` without asking: its
    /// recorded or certain label.
    #[inline]
    pub fn known_label(&self, c: ClassId) -> Option<Label> {
        self.status[c].known_label()
    }

    /// Whether class `c` is informative (§3.4).
    #[inline]
    pub fn is_informative(&self, c: ClassId) -> bool {
        self.status[c].is_informative()
    }

    /// Positive classes, in labeling order.
    #[inline]
    pub fn positives(&self) -> &[ClassId] {
        &self.pos
    }

    /// Negative classes, in labeling order.
    #[inline]
    pub fn negatives(&self) -> &[ClassId] {
        &self.neg
    }

    /// The questions and answers so far, in order.
    #[inline]
    pub fn history(&self) -> &[(ClassId, Label)] {
        &self.history
    }

    /// `θ_possible = T(S⁺)`, the most specific predicate consistent with
    /// the positives — the upper end of the consistent interval. Equals `Ω`
    /// while `S⁺ = ∅`.
    #[inline]
    pub fn theta_possible(&self) -> &BitSet {
        &self.theta_possible
    }

    /// Alias of [`theta_possible`](Self::theta_possible) matching the
    /// `Sample::t_pos` name.
    #[inline]
    pub fn t_pos(&self) -> &BitSet {
        &self.theta_possible
    }

    /// `θ_certain`: the attribute pairs contained in **every** consistent
    /// predicate — the lower end of the consistent interval.
    ///
    /// `k ∈ θ_certain` iff `T(S⁺) \ {k} ⊆ T(t′)` for some `t′ ∈ S⁻`: the
    /// down-sets `P(T(S⁺) ∩ T(t′))` are the inconsistent predicates, and a
    /// union of down-sets covers `P(X)` iff it contains `X` itself, so
    /// dropping `k` must land the whole remaining interval inside one of
    /// them. Empty while there is no negative example.
    ///
    /// Computed lazily on first read per state version
    /// (`O(|θ_possible| · |S⁻|)` subset tests, bounded by the number of
    /// answers), then served from the cache — the speculation-heavy
    /// recursions that never read it never pay for it.
    pub fn theta_certain(&self) -> BitSet {
        let mut cache = self.theta_certain.borrow_mut();
        if cache.0 != self.version {
            let mut certain = BitSet::empty(self.theta_possible.capacity());
            if !self.neg.is_empty() {
                for k in self.theta_possible.iter() {
                    let forced = self.neg.iter().any(|&g| {
                        self.theta_possible
                            .is_subset_except(self.universe.sig(g), k)
                    });
                    if forced {
                        certain.insert(k);
                    }
                }
            }
            *cache = (self.version, certain);
        }
        cache.1.clone()
    }

    /// The consistent-predicate interval `[θ_certain, θ_possible]`: every
    /// predicate consistent with the sample contains the first and is
    /// contained in the second.
    pub fn interval(&self) -> (BitSet, BitSet) {
        (self.theta_certain(), self.theta_possible.clone())
    }

    /// Whether some equijoin predicate is consistent with the labels so far
    /// (§3.1). Maintained incrementally; `O(1)` to read.
    #[inline]
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The informative classes, ascending — the candidate set every
    /// strategy draws from. `O(1)`; the slice shrinks as labels arrive.
    #[inline]
    pub fn informative(&self) -> &[ClassId] {
        &self.informative
    }

    /// Whether any informative tuple remains — the negation of Algorithm
    /// 1's halt condition Γ.
    #[inline]
    pub fn any_informative(&self) -> bool {
        !self.informative.is_empty()
    }

    /// The weighted count of uninformative tuples under `mode`, matching
    /// [`crate::certain::uninformative_count`]. `O(1)`.
    #[inline]
    pub fn uninformative_count(&self, mode: CountMode) -> u64 {
        match mode {
            CountMode::Tuples => self.uninf_tuples,
            CountMode::Classes => self.uninf_classes,
        }
    }

    /// The per-class weight `mode` assigns.
    #[inline]
    fn weight(&self, c: ClassId, mode: CountMode) -> u64 {
        match mode {
            CountMode::Tuples => self.universe.count(c),
            CountMode::Classes => 1,
        }
    }

    /// Lemma 3.4 existential for a hypothetical `T(S⁺)` of `tpos`: is class
    /// `c` certainly rejected?
    #[inline]
    fn certain_negative_under(&self, tpos: &BitSet, c: ClassId) -> bool {
        let sig = self.universe.sig(c);
        self.neg
            .iter()
            .any(|&g| tpos.intersection_is_subset(sig, self.universe.sig(g)))
    }

    /// Applies one label, updating every derived quantity incrementally.
    ///
    /// Mirrors `Sample::add` + the consistency check of Algorithm 1 lines
    /// 5–7: the label is recorded unconditionally (double labeling and
    /// out-of-range classes are rejected), and
    /// [`is_consistent`](Self::is_consistent) turns
    /// false if no predicate explains the labels — in which case the
    /// partition stops being maintained (certainty is only defined for
    /// consistent samples) and the caller is expected to abort, as
    /// [`crate::engine::run_inference`] does.
    ///
    /// Cost: `O(|informative|)` subset tests for a negative label,
    /// `O(|informative| · |S⁻|)` worst case for a positive one — never a
    /// rescan of all of Ω.
    pub fn apply(&mut self, c: ClassId, label: Label) -> Result<()> {
        if c >= self.status.len() {
            return Err(InferenceError::ClassOutOfBounds {
                class: c,
                len: self.status.len(),
            });
        }
        if self.status[c].label().is_some() {
            return Err(InferenceError::AlreadyLabeled { class: c });
        }
        let was = self.status[c];
        self.status[c] = match label {
            Label::Positive => ClassState::LabeledPositive,
            Label::Negative => ClassState::LabeledNegative,
        };
        self.history.push((c, label));
        self.version += 1;

        // Counter bookkeeping for the labeled class itself: an informative
        // class starts contributing weight − 1 (its classmates become
        // certain); an already-certain class merely stops counting its
        // representative.
        if was.is_informative() {
            self.informative.retain(|&t| t != c);
            self.uninf_tuples += self.universe.count(c).saturating_sub(1);
            // Classes-mode weight is 1, and the labeled representative is
            // excluded, so the class contributes 0.
        } else {
            self.uninf_tuples = self.uninf_tuples.saturating_sub(1);
            self.uninf_classes = self.uninf_classes.saturating_sub(1);
        }

        match label {
            Label::Positive => {
                self.pos.push(c);
                let before = self.theta_possible.clone();
                self.theta_possible.intersect_with(self.universe.sig(c));
                if self.theta_possible != before {
                    // §3.1: consistency must be re-checked against every
                    // negative under the shrunken T(S⁺).
                    if self.consistent {
                        let tp = &self.theta_possible;
                        self.consistent = self
                            .neg
                            .iter()
                            .all(|&g| !tp.is_subset(self.universe.sig(g)));
                    }
                    if self.consistent {
                        self.reclassify_informative();
                    }
                }
            }
            Label::Negative => {
                self.neg.push(c);
                if self.consistent {
                    self.consistent = !self.theta_possible.is_subset(self.universe.sig(c));
                }
                if self.consistent {
                    // The only new Lemma 3.4 witness is T(c): one subset
                    // test per informative class.
                    let tp = self.theta_possible.clone();
                    let universe = self.universe.clone();
                    let neg_sig = universe.sig(c);
                    let (mut dt, mut dc) = (0u64, 0u64);
                    let status = &mut self.status;
                    self.informative.retain(|&t| {
                        if tp.intersection_is_subset(universe.sig(t), neg_sig) {
                            status[t] = ClassState::CertainNegative;
                            dt += universe.count(t);
                            dc += 1;
                            false
                        } else {
                            true
                        }
                    });
                    self.uninf_tuples += dt;
                    self.uninf_classes += dc;
                }
            }
        }

        Ok(())
    }

    /// Re-tests every informative class against the current
    /// `[θ_certain, θ_possible]` after `θ_possible` shrank.
    fn reclassify_informative(&mut self) {
        let universe = self.universe.clone();
        let tp = self.theta_possible.clone();
        let neg = std::mem::take(&mut self.neg);
        let (mut dt, mut dc) = (0u64, 0u64);
        let status = &mut self.status;
        self.informative.retain(|&t| {
            let sig = universe.sig(t);
            let new_state = if tp.is_subset(sig) {
                Some(ClassState::CertainPositive)
            } else if neg
                .iter()
                .any(|&g| tp.intersection_is_subset(sig, universe.sig(g)))
            {
                Some(ClassState::CertainNegative)
            } else {
                None
            };
            match new_state {
                Some(s) => {
                    status[t] = s;
                    dt += universe.count(t);
                    dc += 1;
                    false
                }
                None => true,
            }
        });
        self.neg = neg;
        self.uninf_tuples += dt;
        self.uninf_classes += dc;
    }

    /// `u^α_{t,S}`: the weighted number of tuples that would become
    /// uninformative if informative class `c` were labeled `alpha`
    /// (Figure 5 / §4.4), relative to the current sample.
    ///
    /// Computed by a single pass over the **informative** set — the
    /// speculative analogue of the incremental [`apply`](Self::apply) — so
    /// one-step entropy costs `O(|informative| · |S⁻|)` instead of cloning
    /// the sample and recounting all of Ω.
    pub fn gain(&self, c: ClassId, alpha: Label, mode: CountMode) -> u64 {
        debug_assert!(
            self.is_informative(c),
            "gain is defined for informative classes"
        );
        let universe: &Universe = &self.universe;
        let mut total = self.weight(c, mode).saturating_sub(1);
        match alpha {
            Label::Positive => {
                let tp = self.theta_possible.intersection(universe.sig(c));
                for &t in &self.informative {
                    if t == c {
                        continue;
                    }
                    let sig = universe.sig(t);
                    if tp.is_subset(sig) || self.certain_negative_under(&tp, t) {
                        total += self.weight(t, mode);
                    }
                }
            }
            Label::Negative => {
                let tp = &self.theta_possible;
                let neg_sig = universe.sig(c);
                for &t in &self.informative {
                    if t == c {
                        continue;
                    }
                    if tp.intersection_is_subset(universe.sig(t), neg_sig) {
                        total += self.weight(t, mode);
                    }
                }
            }
        }
        total
    }

    /// The `(u⁺, u⁻)` gain pair of informative class `c`, served from the
    /// version-stamped cache when the state has not changed since the last
    /// computation. [`entropy`](Self::entropy) is its normalized view; the
    /// lookahead recursion reads the raw pair to order label branches
    /// without paying for the gains twice.
    pub fn gain_pair(&self, c: ClassId, mode: CountMode) -> (u64, u64) {
        {
            let cache = self.entropy_cache.borrow();
            if cache.mode == mode && cache.stamps[c] == self.version {
                return cache.values[c];
            }
        }
        let pair = (
            self.gain(c, Label::Positive, mode),
            self.gain(c, Label::Negative, mode),
        );
        let mut cache = self.entropy_cache.borrow_mut();
        if cache.mode != mode {
            // Mode switch invalidates the whole cache.
            cache.mode = mode;
            cache.stamps.iter_mut().for_each(|s| *s = 0);
        }
        cache.stamps[c] = self.version;
        cache.values[c] = pair;
        pair
    }

    /// The one-step entropy of informative class `c` (§4.4), served from
    /// the version-stamped cache when the state has not changed since the
    /// last computation.
    pub fn entropy(&self, c: ClassId, mode: CountMode) -> Entropy {
        let (u_pos, u_neg) = self.gain_pair(c, mode);
        Entropy::of(u_pos, u_neg)
    }

    /// One-step entropies of all informative classes, ascending by class.
    pub fn entropies(&self, mode: CountMode) -> Vec<(ClassId, Entropy)> {
        self.informative
            .iter()
            .map(|&c| (c, self.entropy(c, mode)))
            .collect()
    }

    /// A hypothetical successor state: `self` with `(c, label)` applied.
    ///
    /// This is what the depth-k lookahead recursion and the minimax-optimal
    /// strategy branch on — an `O(|N|)` clone plus one incremental apply,
    /// never a from-scratch re-derivation.
    pub fn speculate(&self, c: ClassId, label: Label) -> InferenceState<'u> {
        let mut next = self.clone();
        next.apply(c, label)
            .expect("speculated class must be unlabeled and in range");
        next
    }

    /// Like [`speculate`](Self::speculate), but rebuilds `out` in place,
    /// reusing its existing allocations (vectors, Ω-width bitsets, the
    /// entropy cache) instead of cloning into fresh ones.
    ///
    /// The depth-k lookahead recursion calls this once per visited tree
    /// node through a per-depth scratch pool, turning the per-node
    /// allocation cost into a one-time warm-up. `out` may hold any previous
    /// state (even over a different universe); it is overwritten
    /// wholesale, so the result is indistinguishable from
    /// `*out = self.speculate(c, label)`.
    pub fn speculate_into(&self, c: ClassId, label: Label, out: &mut InferenceState<'u>) {
        out.universe.clone_from(&self.universe);
        out.status.clone_from(&self.status);
        out.pos.clone_from(&self.pos);
        out.neg.clone_from(&self.neg);
        out.history.clone_from(&self.history);
        out.theta_possible.clone_from(&self.theta_possible);
        {
            let mut dst = out.theta_certain.borrow_mut();
            let src = self.theta_certain.borrow();
            dst.0 = src.0;
            dst.1.clone_from(&src.1);
        }
        out.informative.clone_from(&self.informative);
        out.uninf_tuples = self.uninf_tuples;
        out.uninf_classes = self.uninf_classes;
        out.consistent = self.consistent;
        out.version = self.version;
        {
            // Every cached stamp is ≤ self.version and the apply below
            // bumps the version, so no copied entry could ever be served —
            // invalidate wholesale instead. The zeroed stamps also protect
            // against stale entries from `out`'s previous life whose
            // version numbers could collide with the new version line.
            let mut dst = out.entropy_cache.borrow_mut();
            dst.mode = self.entropy_cache.borrow().mode;
            dst.stamps.clear();
            dst.stamps.resize(self.status.len(), 0);
            dst.values.resize(self.status.len(), (0, 0));
        }
        out.apply(c, label)
            .expect("speculated class must be unlabeled and in range");
    }

    /// Reconstructs the equivalent [`Sample`] (the from-scratch
    /// representation) by replaying the label history.
    pub fn as_sample(&self) -> Sample {
        let mut sample = Sample::new(&self.universe);
        for &(c, label) in &self.history {
            sample
                .add(&self.universe, c, label)
                .expect("state history never double-labels");
        }
        sample
    }

    /// Applies a batch of answers in one call, folding them into the state
    /// without any intervening strategy work — the shape in which
    /// asynchronous answers (a crowdsourcing task queue, a web UI with
    /// several outstanding questions) arrive at a server.
    ///
    /// Per answer: out-of-range classes error; a duplicate answer carrying
    /// the **same** label as the recorded one is skipped (idempotent — two
    /// crowd workers may label the same tuple); a duplicate carrying the
    /// **opposite** label errors with [`InferenceError::ConflictingLabel`];
    /// an answer that would make the sample inconsistent is **rejected
    /// without being applied** and the batch aborts with
    /// [`InferenceError::InconsistentSample`] naming the offending class
    /// (Algorithm 1 lines 5–7, checked per answer *before* recording it);
    /// everything else is applied incrementally.
    ///
    /// Returns the number of answers actually applied. On error the
    /// answers *before* the offending one remain applied, the offending
    /// one is not, and — unlike the raw [`apply`](Self::apply) — the state
    /// is still consistent: the session remains usable and its history
    /// remains replayable (snapshots taken after a rejected batch still
    /// restore).
    pub fn apply_batch(&mut self, answers: &[(ClassId, Label)]) -> Result<usize> {
        let mut applied = 0usize;
        for &(c, label) in answers {
            if c >= self.status.len() {
                return Err(InferenceError::ClassOutOfBounds {
                    class: c,
                    len: self.status.len(),
                });
            }
            if let Some(existing) = self.status[c].label() {
                if existing == label {
                    continue;
                }
                return Err(InferenceError::ConflictingLabel {
                    class: c,
                    existing,
                    conflicting: label,
                });
            }
            // §3.1 consistency, tested speculatively so a bad answer never
            // poisons the recorded history: a negative is inconsistent iff
            // T(S⁺) ⊆ T(c) (c is certain-positive), a positive iff the
            // shrunken T(S⁺) ∩ T(c) lands inside some negative's signature
            // (c is certain-negative).
            let inconsistent = match label {
                Label::Negative => self.theta_possible.is_subset(self.universe.sig(c)),
                Label::Positive => {
                    let sig = self.universe.sig(c);
                    self.neg.iter().any(|&g| {
                        self.theta_possible
                            .intersection_is_subset(sig, self.universe.sig(g))
                    })
                }
            };
            if inconsistent {
                return Err(InferenceError::InconsistentSample { class: c });
            }
            self.apply(c, label)?;
            applied += 1;
            debug_assert!(self.consistent, "pre-checked answers stay consistent");
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certain::{self, informative_classes, uninformative_count, CountMode};
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    fn class_of(u: &Universe, ri: usize, pi: usize) -> ClassId {
        u.class_of(ri, pi).unwrap()
    }

    /// Checks the state against the from-scratch implementations in
    /// `certain.rs` after each of a sequence of labels.
    fn assert_matches_scratch(state: &InferenceState<'_>, sample: &Sample) {
        let u = state.universe();
        assert_eq!(state.is_consistent(), sample.is_consistent(u));
        assert_eq!(state.t_pos(), sample.t_pos());
        if !state.is_consistent() {
            return; // partition is only defined for consistent samples
        }
        assert_eq!(
            state.informative().to_vec(),
            informative_classes(u, sample),
            "informative sets diverge"
        );
        for mode in [CountMode::Tuples, CountMode::Classes] {
            assert_eq!(
                state.uninformative_count(mode),
                uninformative_count(u, sample, mode),
                "uninformative count diverges for {mode:?}"
            );
        }
        for c in 0..u.num_classes() {
            assert_eq!(state.label(c), sample.label(c));
            if sample.label(c).is_none() {
                assert_eq!(
                    state.class_state(c).certain_label(),
                    certain::certain_label(u, sample, c),
                    "certain label diverges for class {c}"
                );
            }
        }
    }

    #[test]
    fn tracks_scratch_on_example_2_1_replay() {
        // Example 2.1 driven through a mixed label sequence.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut sample = Sample::new(&u);
        assert_matches_scratch(&state, &sample);
        let script = [
            (class_of(&u, 1, 1), Label::Positive),
            (class_of(&u, 0, 2), Label::Negative),
            (class_of(&u, 2, 1), Label::Negative),
        ];
        for (c, label) in script {
            state.apply(c, label).unwrap();
            sample.add(&u, c, label).unwrap();
            assert_matches_scratch(&state, &sample);
        }
    }

    #[test]
    fn entropy_matches_scratch_entropy() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let mut sample = Sample::new(&u);
        for mode in [CountMode::Tuples, CountMode::Classes] {
            for &c in state.informative() {
                assert_eq!(
                    state.entropy(c, mode),
                    crate::entropy::entropy(&u, &sample, c, mode),
                    "entropy diverges for class {c} under {mode:?}"
                );
            }
        }
        // And again mid-session.
        let c = class_of(&u, 0, 2);
        state.apply(c, Label::Positive).unwrap();
        sample.add(&u, c, Label::Positive).unwrap();
        for &t in state.informative() {
            assert_eq!(
                state.entropy(t, CountMode::Tuples),
                crate::entropy::entropy(&u, &sample, t, CountMode::Tuples),
            );
        }
    }

    #[test]
    fn entropy_cache_serves_stable_values() {
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let c = state.informative()[0];
        let first = state.entropy(c, CountMode::Tuples);
        assert_eq!(state.entropy(c, CountMode::Tuples), first);
        // A mode switch flushes and recomputes rather than serving the
        // stale mode's value.
        let classes_mode = state.entropy(c, CountMode::Classes);
        assert_eq!(
            classes_mode,
            crate::entropy::entropy(&u, &state.as_sample(), c, CountMode::Classes)
        );
    }

    #[test]
    fn interval_brackets_every_consistent_predicate() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        state.apply(class_of(&u, 0, 2), Label::Negative).unwrap();
        let sample = state.as_sample();
        let (lo, hi) = state.interval();
        let nbits = u.omega_len();
        let mut any = false;
        for mask in 0u64..(1 << nbits) {
            let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
            if sample.admits(&u, &theta) {
                any = true;
                assert!(lo.is_subset(&theta), "θ_certain ⊄ consistent {theta:?}");
                assert!(theta.is_subset(&hi), "consistent {theta:?} ⊄ θ_possible");
            }
        }
        assert!(any, "sample should be consistent");
        // And the bounds are tight: both ends are attained over the brute
        // force (θ_certain is the meet, θ_possible the join, of C(S)).
        let consistent: Vec<BitSet> = (0u64..(1 << nbits))
            .map(|mask| BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1)))
            .filter(|t| sample.admits(&u, t))
            .collect();
        let mut meet = consistent[0].clone();
        let mut join = consistent[0].clone();
        for t in &consistent[1..] {
            meet.intersect_with(t);
            join.union_with(t);
        }
        assert_eq!(meet, lo, "θ_certain must be the meet of C(S)");
        assert_eq!(join, hi, "θ_possible must be the join of C(S)");
    }

    #[test]
    fn speculate_equals_apply() {
        let u = Universe::build(example_2_1());
        let state = InferenceState::new(&u);
        let c = state.informative()[3];
        for label in Label::BOTH {
            let spec = state.speculate(c, label);
            let mut direct = InferenceState::new(&u);
            direct.apply(c, label).unwrap();
            assert_eq!(spec.informative(), direct.informative());
            assert_eq!(spec.t_pos(), direct.t_pos());
            assert_eq!(
                spec.uninformative_count(CountMode::Tuples),
                direct.uninformative_count(CountMode::Tuples)
            );
        }
    }

    #[test]
    fn speculate_into_equals_speculate() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 0, 2), Label::Positive).unwrap();
        // Reuse a deliberately unrelated buffer state.
        let mut buffer = InferenceState::new(&u);
        buffer.apply(class_of(&u, 2, 0), Label::Negative).unwrap();
        for &c in state.informative() {
            for label in Label::BOTH {
                let fresh = state.speculate(c, label);
                state.speculate_into(c, label, &mut buffer);
                assert_eq!(fresh.informative(), buffer.informative());
                assert_eq!(fresh.t_pos(), buffer.t_pos());
                assert_eq!(fresh.history(), buffer.history());
                assert_eq!(fresh.is_consistent(), buffer.is_consistent());
                for mode in [CountMode::Tuples, CountMode::Classes] {
                    assert_eq!(
                        fresh.uninformative_count(mode),
                        buffer.uninformative_count(mode)
                    );
                }
                assert_eq!(fresh.theta_certain(), buffer.theta_certain());
                for &t in fresh.informative() {
                    assert_eq!(
                        fresh.entropy(t, CountMode::Tuples),
                        buffer.entropy(t, CountMode::Tuples),
                        "entropy diverges for class {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn gain_matches_scratch_difference() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 0, 2), Label::Positive).unwrap();
        state.apply(class_of(&u, 2, 0), Label::Negative).unwrap();
        let sample = state.as_sample();
        let base = uninformative_count(&u, &sample, CountMode::Tuples);
        for &c in state.informative() {
            for alpha in Label::BOTH {
                let mut s = sample.clone();
                s.add(&u, c, alpha).unwrap();
                let scratch = uninformative_count(&u, &s, CountMode::Tuples).saturating_sub(base);
                assert_eq!(
                    state.gain(c, alpha, CountMode::Tuples),
                    scratch,
                    "gain diverges for class {c} labeled {alpha}"
                );
            }
        }
    }

    #[test]
    fn misuse_is_rejected_like_sample() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        assert!(matches!(
            state.apply(99, Label::Positive),
            Err(InferenceError::ClassOutOfBounds { class: 99, .. })
        ));
        state.apply(3, Label::Positive).unwrap();
        assert!(matches!(
            state.apply(3, Label::Negative),
            Err(InferenceError::AlreadyLabeled { class: 3 })
        ));
    }

    #[test]
    fn apply_batch_folds_skips_and_rejects() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let a = class_of(&u, 1, 1);
        let b = class_of(&u, 0, 2);
        // Mixed batch with an agreeing duplicate: two answers applied.
        let applied = state
            .apply_batch(&[
                (a, Label::Positive),
                (b, Label::Negative),
                (a, Label::Positive),
            ])
            .unwrap();
        assert_eq!(applied, 2);
        assert_eq!(state.len(), 2);
        // A contradicting duplicate errors without touching the state.
        let e = state.apply_batch(&[(b, Label::Positive)]).unwrap_err();
        assert_eq!(
            e,
            InferenceError::ConflictingLabel {
                class: b,
                existing: Label::Negative,
                conflicting: Label::Positive,
            }
        );
        assert_eq!(state.len(), 2);
    }

    #[test]
    fn apply_batch_rejects_inconsistent_answers_without_recording_them() {
        // Positive on (t2,t2') makes (t4,t1') certain-positive; a batch
        // answering it negative is inconsistent. Unlike raw apply(), the
        // batch path rejects the answer *before* recording it, so the
        // session stays consistent and its history stays replayable.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        let certain_pos = class_of(&u, 3, 0);
        let batch = [
            (class_of(&u, 1, 1), Label::Positive),
            (certain_pos, Label::Negative),
        ];
        let e = state.apply_batch(&batch).unwrap_err();
        assert_eq!(e, InferenceError::InconsistentSample { class: certain_pos });
        // The prefix before the offending answer is applied; the offending
        // answer is not, and the state is still consistent.
        assert_eq!(state.len(), 1);
        assert!(state.is_consistent());
        assert_eq!(state.label(certain_pos), None);
        assert_eq!(state.class_state(certain_pos), ClassState::CertainPositive);
        // Replaying the surviving history reproduces the state.
        let mut replay = InferenceState::new(&u);
        replay.apply_batch(state.history()).unwrap();
        assert_eq!(replay.t_pos(), state.t_pos());
        assert_eq!(replay.informative(), state.informative());
        // The certainly-rejected mirror case: negative first, then a batch
        // trying to answer a certain-negative class positive.
        let mut s2 = InferenceState::new(&u);
        s2.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        s2.apply(class_of(&u, 0, 2), Label::Negative).unwrap();
        let certain_neg =
            (0..u.num_classes()).find(|&c| s2.class_state(c) == ClassState::CertainNegative);
        if let Some(cn) = certain_neg {
            let e = s2.apply_batch(&[(cn, Label::Positive)]).unwrap_err();
            assert_eq!(e, InferenceError::InconsistentSample { class: cn });
            assert!(s2.is_consistent());
            assert_eq!(s2.label(cn), None);
        }
    }

    #[test]
    fn inconsistent_labeling_is_detected() {
        // §3.4's certain classes mislabeled: positive on (t2,t2') makes
        // (t4,t1') certain-positive; answering it negative has no
        // consistent explanation.
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        let certain_pos = class_of(&u, 3, 0);
        assert_eq!(state.class_state(certain_pos), ClassState::CertainPositive);
        state.apply(certain_pos, Label::Negative).unwrap();
        assert!(!state.is_consistent());
    }

    #[test]
    fn omega_signature_class_is_certain_from_the_start() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(5)]);
        b.row_p(&[Value::int(5)]);
        let u = Universe::build(b.build().unwrap());
        let state = InferenceState::new(&u);
        assert_eq!(state.class_state(0), ClassState::CertainPositive);
        assert!(!state.any_informative());
        assert_eq!(state.uninformative_count(CountMode::Tuples), 1);
    }

    #[test]
    fn as_sample_round_trips_history() {
        let u = Universe::build(example_2_1());
        let mut state = InferenceState::new(&u);
        state.apply(class_of(&u, 1, 1), Label::Positive).unwrap();
        state.apply(class_of(&u, 2, 1), Label::Negative).unwrap();
        let sample = state.as_sample();
        assert_eq!(sample.len(), 2);
        assert_eq!(sample.t_pos(), state.t_pos());
        assert_eq!(sample.positives(), state.positives());
        assert_eq!(sample.negatives(), state.negatives());
    }
}
