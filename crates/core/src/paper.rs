//! The running examples of the paper, as ready-made instances.
//!
//! These are used pervasively in unit tests, doc tests, integration tests
//! and examples, so they live in the library rather than test support code.

use jqi_relation::{Instance, InstanceBuilder, Value};

/// The flight & hotel instance of Figure 1.
///
/// `Flight(From, To, Airline)` with four rows and `Hotel(City, Discount)`
/// with three rows; the Cartesian product is Figure 2's twelve tuples.
pub fn flight_hotel() -> Instance {
    let mut b = InstanceBuilder::new();
    b.relation_r("Flight", &["From", "To", "Airline"]);
    b.relation_p("Hotel", &["City", "Discount"]);
    b.row_r(&[Value::str("Paris"), Value::str("Lille"), Value::str("AF")]);
    b.row_r(&[Value::str("Lille"), Value::str("NYC"), Value::str("AA")]);
    b.row_r(&[Value::str("NYC"), Value::str("Paris"), Value::str("AA")]);
    b.row_r(&[Value::str("Paris"), Value::str("NYC"), Value::str("AF")]);
    b.row_p(&[Value::str("NYC"), Value::str("AA")]);
    b.row_p(&[Value::str("Paris"), Value::str("None")]);
    b.row_p(&[Value::str("Lille"), Value::str("AF")]);
    b.build().expect("flight & hotel instance is well-formed")
}

/// The instance of Example 2.1: `R0(A1, A2)` with rows
/// `t1..t4 = (0,1),(0,2),(2,2),(1,0)` and `P0(B1, B2, B3)` with rows
/// `t1'..t3' = (1,1,0),(0,1,2),(2,0,0)`.
pub fn example_2_1() -> Instance {
    let mut b = InstanceBuilder::new();
    b.relation_r("R0", &["A1", "A2"]);
    b.relation_p("P0", &["B1", "B2", "B3"]);
    b.row_r_ints(&[0, 1]); // t1
    b.row_r_ints(&[0, 2]); // t2
    b.row_r_ints(&[2, 2]); // t3
    b.row_r_ints(&[1, 0]); // t4
    b.row_p_ints(&[1, 1, 0]); // t1'
    b.row_p_ints(&[0, 1, 2]); // t2'
    b.row_p_ints(&[2, 0, 0]); // t3'
    b.build().expect("example 2.1 instance is well-formed")
}

/// The single-tuple instance of §3.3 (`R1(A1, A2) = {(1,1)}`,
/// `P1(B1) = {(1)}`) used to illustrate instance-equivalent predicates.
pub fn example_3_3() -> Instance {
    let mut b = InstanceBuilder::new();
    b.relation_r("R1", &["A1", "A2"]);
    b.relation_p("P1", &["B1"]);
    b.row_r_ints(&[1, 1]);
    b.row_p_ints(&[1]);
    b.build().expect("example 3.3 instance is well-formed")
}

/// Indexes of the rows of [`example_2_1`]'s Cartesian product in the
/// `(tᵢ, tⱼ′)` notation of Figure 3: `pair(i, j)` with 1-based `i ∈ 1..=4`,
/// `j ∈ 1..=3` gives the `(ri, pi)` row indexes.
pub fn pair(i: usize, j: usize) -> (usize, usize) {
    assert!((1..=4).contains(&i) && (1..=3).contains(&j));
    (i - 1, j - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_hotel_shapes() {
        let inst = flight_hotel();
        assert_eq!(inst.r().len(), 4);
        assert_eq!(inst.p().len(), 3);
        assert_eq!(inst.product_size(), 12);
        assert_eq!(inst.pairs().len(), 6);
    }

    #[test]
    fn flight_hotel_queries_q1_q2() {
        // Q1 = To=City selects 4 tuples (3),(4),(8),(10) of Figure 2;
        // Q2 = Q1 ∧ Airline=Discount selects (3),(4).
        let inst = flight_hotel();
        let q1 = crate::predicate_from_names(&inst, &[("To", "City")]).unwrap();
        let q2 =
            crate::predicate_from_names(&inst, &[("To", "City"), ("Airline", "Discount")]).unwrap();
        let j1 = inst.equijoin(&q1);
        let j2 = inst.equijoin(&q2);
        assert_eq!(j1.len(), 4);
        assert_eq!(j2.len(), 2);
        // Containment Q2 ⊆ Q1, the reason negative examples are necessary.
        assert!(j2.iter().all(|t| j1.contains(t)));
        // Tuple (3) = (Paris,Lille,AF, Lille,AF) is row (0, 2).
        assert!(j2.contains(&(0, 2)));
        // Tuple (8) = (NYC,Paris,AA, Paris,None) distinguishes Q1 from Q2.
        assert!(j1.contains(&(2, 1)) && !j2.contains(&(2, 1)));
    }

    #[test]
    fn example_3_3_product_is_one_tuple() {
        let inst = example_3_3();
        assert_eq!(inst.product_size(), 1);
        let sig = inst.signature(0, 0);
        assert_eq!(sig.len(), 2, "T = {{(A1,B1),(A2,B1)}}");
    }

    #[test]
    fn pair_maps_figure_3_notation() {
        assert_eq!(pair(1, 1), (0, 0));
        assert_eq!(pair(4, 3), (3, 2));
    }

    #[test]
    #[should_panic]
    fn pair_rejects_out_of_range() {
        pair(5, 1);
    }
}
