//! Incremental universe maintenance: O(delta) live-data updates.
//!
//! [`Universe::build`] canonicalizes a *frozen* `R × P` product. Production
//! data churns, and a full rebuild on every churn abandons the
//! deduplicated work the weighted-profile representation already paid for.
//! This module closes that gap with Z-set-style incremental view
//! maintenance (DBSP / differential-dataflow shaped): a row insert or
//! delete is a ±1 weight delta on one join profile, and its effect on the
//! class partition touches `O(opposite-side distinct profiles)` signatures
//! — not the full product.
//!
//! # The pieces
//!
//! * [`UniverseDelta`] — an edit script of row inserts/deletes on either
//!   side, validated against the schema arities and the shared interner.
//! * `LiveTables` (private) — the maintained state: per side, the weighted
//!   *distinct full rows* (a Z-set: multiplicities, never duplicates) and
//!   the *distinct join profiles* grouping them, plus per-symbol
//!   occurrence units used to detect symbols becoming shared.
//! * [`Universe::apply_delta`] — produces the post-edit universe by
//!   adjusting profile weights, retiring/creating profiles, patching class
//!   counts/representatives/buckets, and patching the `ClassClosure` only
//!   for affected classes. The result's [`Universe::epoch`] is bumped and
//!   its decision cache starts empty.
//!
//! # Why profile-level deltas are sound: the superset grouping
//!
//! Signatures are computed from **full rows** (raw symbol equality), so
//! profile grouping is purely a dedup device. The build groups rows by
//! their *join profile* — the row with every symbol outside the shared set
//! holed out — which is valid because a single-sided symbol can never
//! witness an equality. Under edits the true shared set moves in both
//! directions, but this module maintains grouping under a **grow-only
//! superset** `ever_shared` of it:
//!
//! * A superset only *refines* the grouping (exposing more symbols can
//!   only split groups), and any refinement of the true-shared grouping
//!   keeps the invariant that matters: two rows in one group have equal
//!   signatures against every opposite row. Hence signatures computed on a
//!   group's representative stand for the whole group.
//! * When a symbol *becomes* shared (its first occurrence lands on the
//!   side that lacked it), the groups on the other side containing it are
//!   split **before** any pair involving the triggering row is scored.
//! * When a symbol *stops* being shared, nothing needs merging — the
//!   grouping just stays finer than necessary. The cost is a slightly
//!   higher distinct-profile count, never a wrong signature.
//!
//! It also makes representative repair trivial in the common case:
//! replacing a profile's representative row by any surviving row of the
//! same group provably preserves every signature computed against it, so
//! instance rows are overwritten in place and class representatives stay
//! valid without rescoring.
//!
//! # Batch scoring
//!
//! Edits are folded into the live tables one at a time, but their effect
//! on class counts is *settled* per batch: with `Δw` the per-profile
//! weight changes over a window,
//!
//! ```text
//! Δ(w_r · w_p) = Δw_r · w_p^old  +  w_r^new · Δw_p
//! ```
//!
//! summed per signature — one opposite-side profile sweep per *changed
//! profile*, not per edited row. Count deltas accumulate in signed space
//! (so transient negatives during a window are harmless) and are applied
//! once: class births append, classes whose count reaches zero are
//! compacted away (ids above them shift down — which is why sessions must
//! be migrated, see `SessionManager::migrate`).
//!
//! The one thing that forces an early settle is a symbol becoming shared
//! mid-batch: the split changes grouping attribution, so the window is
//! scored under the pre-split grouping first. Both orderings describe the
//! same product; the settle points just keep the bookkeeping exact.

use crate::universe::{ClassClosure, Universe};
use jqi_relation::bitset::{hash_words, BitSet};
use jqi_relation::stream::Side;
use jqi_relation::{Instance, Tuple};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Sentinel marking "no profile / no row" in the live-table link arrays.
const NONE_U32: u32 = u32::MAX;

/// The hole marker in profile keys (symbols outside `ever_shared`).
const HOLE: u32 = Instance::PROFILE_HOLE;

/// An edit operation on one relation side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Add one occurrence of the row (multiset insert).
    Insert,
    /// Remove one occurrence of the row; an error if none is present.
    Delete,
}

/// One row edit of a [`UniverseDelta`].
#[derive(Debug, Clone)]
pub struct RowEdit {
    /// Which relation the row belongs to.
    pub side: Side,
    /// Insert or delete.
    pub op: EditOp,
    /// The full row, interned through the universe's interner.
    pub row: Tuple,
}

/// An ordered edit script over a universe's instance: row inserts and
/// deletes on either side, in multiset semantics (each insert adds one
/// occurrence, each delete removes one).
///
/// Rows must be interned through the *same* interner as the universe's
/// instance (new symbols are fine — the interner is shared and
/// append-only). Validation happens in [`Universe::apply_delta`]: arity
/// and symbol range up front, row existence for deletes as the script is
/// folded (so an insert-then-delete of a fresh row is legal).
#[derive(Debug, Clone, Default)]
pub struct UniverseDelta {
    edits: Vec<RowEdit>,
}

impl UniverseDelta {
    /// An empty edit script. Applying it still bumps the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert of `row` on `side`.
    pub fn insert(&mut self, side: Side, row: Tuple) -> &mut Self {
        self.edits.push(RowEdit {
            side,
            op: EditOp::Insert,
            row,
        });
        self
    }

    /// Appends a delete of `row` on `side`.
    pub fn delete(&mut self, side: Side, row: Tuple) -> &mut Self {
        self.edits.push(RowEdit {
            side,
            op: EditOp::Delete,
            row,
        });
        self
    }

    /// Number of edits in the script.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// The edits, in application order.
    pub fn edits(&self) -> &[RowEdit] {
        &self.edits
    }
}

/// Errors raised by [`Universe::apply_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The universe carries no live row tables and its instance holds only
    /// profile representatives, so the full row multiset is unknown. Build
    /// with `Universe::build` (materialized rows) or
    /// `Universe::build_streaming_live` to get a delta-capable universe.
    NotLive,
    /// An edit row's arity does not match its side's schema.
    ArityMismatch {
        /// Side the row was addressed to.
        side: Side,
        /// Index of the offending edit within the script.
        index: usize,
        /// The schema's arity.
        expected: usize,
        /// The row's arity.
        got: usize,
    },
    /// An edit row contains a symbol id outside the shared interner.
    UnknownSymbol {
        /// Side the row was addressed to.
        side: Side,
        /// Index of the offending edit within the script.
        index: usize,
        /// The out-of-range symbol id.
        symbol: u32,
    },
    /// A delete addressed a row with no remaining occurrences.
    MissingRow {
        /// Side the row was addressed to.
        side: Side,
        /// Index of the offending edit within the script.
        index: usize,
        /// Display form of the missing row.
        row: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NotLive => write!(
                f,
                "universe holds no live row tables (streaming build without \
                 `build_streaming_live`); deltas need the full row multiset"
            ),
            DeltaError::ArityMismatch {
                side,
                index,
                expected,
                got,
            } => write!(
                f,
                "edit #{index}: {} row has {got} values but the schema has {expected}",
                side.name()
            ),
            DeltaError::UnknownSymbol {
                side,
                index,
                symbol,
            } => write!(
                f,
                "edit #{index}: {} row carries symbol {symbol} outside the universe's interner",
                side.name()
            ),
            DeltaError::MissingRow { side, index, row } => write!(
                f,
                "edit #{index}: delete of {} row {row} which has no remaining occurrences",
                side.name()
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A growable symbol set (plain bit words; the interner can grow past any
/// capacity fixed at build time, so [`BitSet`] does not fit here).
#[derive(Debug, Clone, Default)]
struct SymSet {
    words: Vec<u64>,
}

impl SymSet {
    fn from_bitset(b: &BitSet) -> SymSet {
        SymSet {
            words: b.words().to_vec(),
        }
    }

    #[inline]
    fn contains(&self, s: u32) -> bool {
        let w = s as usize / 64;
        w < self.words.len() && self.words[w] >> (s % 64) & 1 == 1
    }

    fn insert(&mut self, s: u32) {
        let w = s as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (s % 64);
    }
}

/// Content hash of a raw symbol row (FNV-style with a finishing shift; the
/// arity is fixed per side, so length need not be mixed in).
fn hash_syms(syms: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &s in syms {
        h ^= s as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= h >> 33;
    }
    h
}

/// One side's live state: the weighted distinct full rows and the distinct
/// join profiles grouping them.
///
/// Both tables are append-only arenas with tombstones (weight 0): row and
/// profile ids stay stable across edits, deleted content is retained so
/// signatures of retired profiles remain computable while a batch settles,
/// and a re-inserted row or re-materialized profile key revives its slot.
#[derive(Debug, Clone)]
pub(crate) struct SideTable {
    arity: usize,
    /// Distinct full rows, flat with stride `arity`.
    rows: Vec<u32>,
    /// Multiplicity of each distinct row (0 = tombstone).
    weight: Vec<u64>,
    /// Row → owning profile id.
    prof_of: Vec<u32>,
    /// Row hash-chain links (`row_index` heads, [`NONE_U32`] ends).
    row_next: Vec<u32>,
    /// Row content hash → chain head.
    row_index: HashMap<u64, u32>,
    /// Distinct profile keys (holed under `ever_shared`), stride `arity`.
    prof_keys: Vec<u32>,
    /// Total weight of each profile's rows (0 = retired).
    prof_weight: Vec<u64>,
    /// Profile → current representative row id.
    prof_rep: Vec<u32>,
    /// Profile → the instance row materializing its representative.
    pub(crate) prof_instance: Vec<u32>,
    /// Profile hash-chain links.
    prof_next: Vec<u32>,
    /// Profile key hash → chain head.
    prof_index: HashMap<u64, u32>,
    /// Instance row → live row id currently materialized there.
    pub(crate) inst_rows: Vec<u32>,
    /// Symbol → Σ over live rows of `weight × occurrences`. Drives the
    /// newly-shared transition detection and `live_shared_symbols`.
    sym_units: HashMap<u32, u64>,
}

impl SideTable {
    fn new(arity: usize) -> SideTable {
        SideTable {
            arity,
            rows: Vec::new(),
            weight: Vec::new(),
            prof_of: Vec::new(),
            row_next: Vec::new(),
            row_index: HashMap::new(),
            prof_keys: Vec::new(),
            prof_weight: Vec::new(),
            prof_rep: Vec::new(),
            prof_instance: Vec::new(),
            prof_next: Vec::new(),
            prof_index: HashMap::new(),
            inst_rows: Vec::new(),
            sym_units: HashMap::new(),
        }
    }

    #[inline]
    fn row_count(&self) -> usize {
        self.weight.len()
    }

    #[inline]
    pub(crate) fn prof_count(&self) -> usize {
        self.prof_weight.len()
    }

    #[inline]
    pub(crate) fn row_syms(&self, row: u32) -> &[u32] {
        let base = row as usize * self.arity;
        &self.rows[base..base + self.arity]
    }

    #[inline]
    fn prof_key(&self, p: u32) -> &[u32] {
        let base = p as usize * self.arity;
        &self.prof_keys[base..base + self.arity]
    }

    #[inline]
    pub(crate) fn rep_syms(&self, p: u32) -> &[u32] {
        self.row_syms(self.prof_rep[p as usize])
    }

    #[inline]
    pub(crate) fn prof_weight(&self, p: u32) -> u64 {
        self.prof_weight[p as usize]
    }

    /// Live (weight > 0) profile count.
    pub(crate) fn alive_profiles(&self) -> usize {
        self.prof_weight.iter().filter(|&&w| w > 0).count()
    }

    /// Total row multiplicity (|R| of the current data).
    pub(crate) fn total_weight(&self) -> u64 {
        self.weight.iter().sum()
    }

    #[inline]
    fn units(&self, s: u32) -> u64 {
        self.sym_units.get(&s).copied().unwrap_or(0)
    }

    fn bump_units(&mut self, syms: &[u32], delta: i64) {
        for &s in syms {
            let e = self.sym_units.entry(s).or_insert(0);
            *e = e
                .checked_add_signed(delta)
                .expect("symbol unit counter underflow");
        }
    }

    fn find_row(&self, syms: &[u32]) -> Option<u32> {
        let mut cur = *self.row_index.get(&hash_syms(syms))?;
        while cur != NONE_U32 {
            if self.row_syms(cur) == syms {
                return Some(cur);
            }
            cur = self.row_next[cur as usize];
        }
        None
    }

    /// Appends a tombstoned row (weight 0, no profile) and links it into
    /// the hash index.
    fn add_row(&mut self, syms: &[u32]) -> u32 {
        debug_assert_eq!(syms.len(), self.arity);
        let id = self.row_count() as u32;
        self.rows.extend_from_slice(syms);
        self.weight.push(0);
        self.prof_of.push(NONE_U32);
        let head = self.row_index.entry(hash_syms(syms)).or_insert(NONE_U32);
        self.row_next.push(*head);
        *head = id;
        id
    }

    fn find_prof(&self, key: &[u32]) -> Option<u32> {
        let mut cur = *self.prof_index.get(&hash_syms(key))?;
        while cur != NONE_U32 {
            if self.prof_key(cur) == key {
                return Some(cur);
            }
            cur = self.prof_next[cur as usize];
        }
        None
    }

    /// Appends a profile with weight 0 (the caller adds weight) whose
    /// representative is `rep_row`, materialized at `instance_row`.
    fn add_prof(&mut self, key: &[u32], rep_row: u32, instance_row: u32) -> u32 {
        debug_assert_eq!(key.len(), self.arity);
        let id = self.prof_count() as u32;
        self.prof_keys.extend_from_slice(key);
        self.prof_weight.push(0);
        self.prof_rep.push(rep_row);
        self.prof_instance.push(instance_row);
        let head = self.prof_index.entry(hash_syms(key)).or_insert(NONE_U32);
        self.prof_next.push(*head);
        *head = id;
        id
    }

    /// Scans for a surviving row of profile `p` to become its
    /// representative. O(rows) — only runs when a representative dies.
    fn any_live_row_of(&self, p: u32) -> Option<u32> {
        (0..self.row_count() as u32)
            .find(|&row| self.weight[row as usize] > 0 && self.prof_of[row as usize] == p)
    }

    /// Approximate resident heap bytes (arenas + indexes).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.rows.len() * 4
            + self.weight.len() * 8
            + self.prof_of.len() * 4
            + self.row_next.len() * 4
            + self.row_index.len() * 16
            + self.prof_keys.len() * 4
            + self.prof_weight.len() * 8
            + self.prof_rep.len() * 4
            + self.prof_instance.len() * 4
            + self.prof_next.len() * 4
            + self.prof_index.len() * 16
            + self.inst_rows.len() * 4
            + self.sym_units.len() * 16
    }
}

/// The live row/profile state of a delta-capable universe — see the
/// [module docs](self) for the invariants.
#[derive(Debug, Clone)]
pub(crate) struct LiveTables {
    pub(crate) r: SideTable,
    pub(crate) p: SideTable,
    /// Grow-only superset of the truly-shared symbol set; the profile
    /// grouping's holing mask.
    ever_shared: SymSet,
}

impl LiveTables {
    /// Empty tables for a streaming build whose shared set is already
    /// known (pass 1 of the two-pass ingest).
    pub(crate) fn new(arity_r: usize, arity_p: usize, shared: &BitSet) -> LiveTables {
        LiveTables {
            r: SideTable::new(arity_r),
            p: SideTable::new(arity_p),
            ever_shared: SymSet::from_bitset(shared),
        }
    }

    /// Rebuilds live tables from a complete instance (the
    /// [`Universe::build`] path, where the instance holds the full row
    /// multiset and instance rows double as the live rows).
    pub(crate) fn from_instance(instance: &Instance) -> LiveTables {
        let shared = instance.shared_symbols();
        let mut lt = LiveTables::new(
            instance.pairs().arity_r(),
            instance.pairs().arity_p(),
            &shared,
        );
        let mut syms: Vec<u32> = Vec::new();
        for side in [Side::R, Side::P] {
            let rel = match side {
                Side::R => instance.r(),
                Side::P => instance.p(),
            };
            for row in rel.rows() {
                syms.clear();
                syms.extend(row.symbols().iter().map(|s| s.0));
                lt.ingest(side, &syms, true);
            }
        }
        lt
    }

    /// Folds one data row in (+1 multiplicity). `instance_backed` records
    /// the row as the next instance row of its side (the
    /// `from_instance` path); the streaming path passes `false` and lets
    /// [`LiveTables::finalize_ingest`] wire instance rows to profiles.
    ///
    /// Ingest assumes `ever_shared` already covers every symbol that is
    /// (or will become) shared — true for both construction paths — so no
    /// transition handling happens here.
    pub(crate) fn ingest(&mut self, side: Side, syms: &[u32], instance_backed: bool) {
        let st = match side {
            Side::R => &mut self.r,
            Side::P => &mut self.p,
        };
        let row = match st.find_row(syms) {
            Some(row) => row,
            None => st.add_row(syms),
        };
        if instance_backed {
            st.inst_rows.push(row);
        }
        st.weight[row as usize] += 1;
        st.bump_units(syms, 1);
        if st.weight[row as usize] == 1 {
            // First occurrence: group under the holing mask.
            let key: Vec<u32> = syms
                .iter()
                .map(|&s| {
                    if self.ever_shared.contains(s) {
                        s
                    } else {
                        HOLE
                    }
                })
                .collect();
            let p = match st.find_prof(&key) {
                Some(p) => p,
                None => {
                    let instance_row = if instance_backed {
                        (st.inst_rows.len() - 1) as u32
                    } else {
                        st.prof_count() as u32
                    };
                    st.add_prof(&key, row, instance_row)
                }
            };
            st.prof_of[row as usize] = p;
        }
        let p = st.prof_of[row as usize];
        st.prof_weight[p as usize] += 1;
    }

    /// Completes a streaming (`instance_backed = false`) ingest: instance
    /// row `i` of each side is profile `i`'s representative.
    pub(crate) fn finalize_ingest(&mut self) {
        self.r.inst_rows = self.r.prof_rep.clone();
        self.p.inst_rows = self.p.prof_rep.clone();
    }

    /// The currently-shared symbols (both sides hold live occurrences), as
    /// a bitset of capacity `cap`. This is the *exact* shared set — not
    /// the grow-only grouping superset.
    pub(crate) fn shared_symbols(&self, cap: usize) -> BitSet {
        let mut out = BitSet::empty(cap);
        for (&s, &u) in &self.r.sym_units {
            if u > 0 && self.p.units(s) > 0 {
                out.insert(s as usize);
            }
        }
        out
    }

    /// Approximate resident heap bytes of both sides.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.r.resident_bytes() + self.p.resident_bytes() + self.ever_shared.words.len() * 8
    }
}

/// One pending class birth discovered while settling a batch.
struct Birth {
    sig: BitSet,
    delta: i64,
    rep: (u32, u32),
}

/// The signed per-class count accumulator of one `apply_delta` call.
struct PairAcc {
    /// Changed profiles of the current settle window → weight at window
    /// start.
    changed_r: HashMap<u32, u64>,
    changed_p: HashMap<u32, u64>,
    /// Signed count deltas for pre-existing classes.
    cdelta: Vec<i64>,
    /// Signatures not present in the universe, with accumulated deltas.
    births: Vec<Birth>,
    birth_buckets: HashMap<u64, Vec<u32>>,
    scratch: BitSet,
}

impl PairAcc {
    fn new(classes: usize, nbits: usize) -> PairAcc {
        PairAcc {
            changed_r: HashMap::new(),
            changed_p: HashMap::new(),
            cdelta: vec![0; classes],
            births: Vec::new(),
            birth_buckets: HashMap::new(),
            scratch: BitSet::empty(nbits),
        }
    }

    fn touch(&mut self, side: Side, p: u32, weight_before: u64) {
        match side {
            Side::R => self.changed_r.entry(p).or_insert(weight_before),
            Side::P => self.changed_p.entry(p).or_insert(weight_before),
        };
    }

    /// Adds `v` product tuples to the class carrying the signature in
    /// `self.scratch` (probing the universe's buckets, then the pending
    /// births, then recording a new birth).
    fn bump(&mut self, u: &Universe, v: i64, rep: (u32, u32)) {
        let words = self.scratch.words();
        let h = hash_words(words);
        if let Some(bucket) = u.buckets.get(&h) {
            for &c in bucket {
                if u.sigs[c as usize].words() == words {
                    self.cdelta[c as usize] += v;
                    return;
                }
            }
        }
        let bucket = self.birth_buckets.entry(h).or_default();
        for &bi in bucket.iter() {
            if self.births[bi as usize].sig.words() == words {
                self.births[bi as usize].delta += v;
                return;
            }
        }
        bucket.push(self.births.len() as u32);
        self.births.push(Birth {
            sig: self.scratch.clone(),
            delta: v,
            rep,
        });
    }

    /// Scores the current window: every changed profile sweeps the
    /// opposite side once (`Δw_r · w_p^old + w_r^new · Δw_p` per pair,
    /// accumulated per signature), then the window resets. Profile order
    /// is sorted so class-birth order — and hence the resulting
    /// fingerprint — is deterministic.
    fn settle(&mut self, u: &Universe, lt: &LiveTables) {
        let pairs = u.instance.pairs();
        let changed_r = std::mem::take(&mut self.changed_r);
        let changed_p = std::mem::take(&mut self.changed_p);
        let mut changed: Vec<(u32, u64)> = changed_r.into_iter().collect();
        changed.sort_unstable();
        for (pr, old) in changed {
            let dr = lt.r.prof_weight(pr) as i64 - old as i64;
            if dr == 0 {
                continue;
            }
            let r_syms = lt.r.rep_syms(pr);
            for pp in 0..lt.p.prof_count() as u32 {
                let wp_old = changed_p.get(&pp).copied().unwrap_or(lt.p.prof_weight(pp));
                if wp_old == 0 {
                    continue;
                }
                pairs.signature_of_into(r_syms, lt.p.rep_syms(pp), &mut self.scratch);
                let rep = (
                    lt.r.prof_instance[pr as usize],
                    lt.p.prof_instance[pp as usize],
                );
                self.bump(u, dr * wp_old as i64, rep);
            }
        }
        let mut changed: Vec<(u32, u64)> = changed_p.into_iter().collect();
        changed.sort_unstable();
        for (pp, old) in changed {
            let dp = lt.p.prof_weight(pp) as i64 - old as i64;
            if dp == 0 {
                continue;
            }
            let p_syms = lt.p.rep_syms(pp);
            for pr in 0..lt.r.prof_count() as u32 {
                let wr_new = lt.r.prof_weight(pr);
                if wr_new == 0 {
                    continue;
                }
                pairs.signature_of_into(lt.r.rep_syms(pr), p_syms, &mut self.scratch);
                let rep = (
                    lt.r.prof_instance[pr as usize],
                    lt.p.prof_instance[pp as usize],
                );
                self.bump(u, wr_new as i64 * dp, rep);
            }
        }
    }
}

impl Universe {
    /// Whether this universe can apply deltas: it either carries live row
    /// tables already or its instance holds the complete row multiset from
    /// which they can be materialized on first use.
    pub fn is_live(&self) -> bool {
        self.live.is_some() || self.rows_complete
    }

    /// Total row multiplicities `(|R|, |P|)` tracked by the live tables,
    /// when present — the true data sizes behind a representative-only
    /// instance.
    pub fn live_row_counts(&self) -> Option<(u64, u64)> {
        self.live
            .as_ref()
            .map(|lt| (lt.r.total_weight(), lt.p.total_weight()))
    }

    /// The exact currently-shared symbol set maintained by the live
    /// tables, when present — what `instance().shared_symbols()` would
    /// return on the full edited data (the post-delta instance itself
    /// holds only representatives). Exposed for the equivalence property
    /// tests.
    pub fn live_shared_symbols(&self) -> Option<BitSet> {
        self.live
            .as_ref()
            .map(|lt| lt.shared_symbols(self.instance.interner().len()))
    }

    /// Produces the universe of the edited instance by incremental
    /// maintenance — `O(|delta| · opposite-side distinct profiles)`
    /// signature work instead of re-walking the product.
    ///
    /// The receiver is untouched (open sessions keep serving it); the
    /// result is a fresh universe with:
    ///
    /// * class counts adjusted, classes born for never-seen signatures and
    ///   compacted away when their count reaches zero (class ids are only
    ///   stable when no class dies — migration maps ids by signature);
    /// * representatives repaired to surviving rows;
    /// * the [`crate::universe::ClassClosure`] patched in place per birth
    ///   (full rebuild only on deaths or a 64-class mask-stride crossing);
    /// * [`Universe::epoch`] bumped by one (so [`Universe::fingerprint`]
    ///   changes even if the class structure does not) and an **empty**
    ///   decision cache with the same budget.
    ///
    /// Errors: [`DeltaError::NotLive`] for universes without row
    /// knowledge, [`DeltaError::ArityMismatch`] /
    /// [`DeltaError::UnknownSymbol`] for malformed rows (checked up
    /// front — the universe is never partially edited), and
    /// [`DeltaError::MissingRow`] when a delete addresses an absent row.
    ///
    /// Worst cases, documented: a delete that retires a *profile* whose
    /// instance row backs a surviving class representative triggers a
    /// signature search over live profile pairs (early-exit; full
    /// `O(profiles²)` only when the class is nearly gone), and a symbol
    /// newly occurring on both sides splits the opposite side's groups
    /// (`O(rows)` scan, no count changes).
    pub fn apply_delta(&self, delta: &UniverseDelta) -> Result<Universe, DeltaError> {
        // Validate the whole script before touching anything.
        let interner_len = self.instance.interner().len() as u32;
        for (index, e) in delta.edits().iter().enumerate() {
            let expected = match e.side {
                Side::R => self.instance.pairs().arity_r(),
                Side::P => self.instance.pairs().arity_p(),
            };
            if e.row.arity() != expected {
                return Err(DeltaError::ArityMismatch {
                    side: e.side,
                    index,
                    expected,
                    got: e.row.arity(),
                });
            }
            if let Some(sym) = e
                .row
                .symbols()
                .iter()
                .map(|s| s.0)
                .find(|&s| s >= interner_len)
            {
                return Err(DeltaError::UnknownSymbol {
                    side: e.side,
                    index,
                    symbol: sym,
                });
            }
        }

        let mut lt: LiveTables = match &self.live {
            Some(lt) => LiveTables::clone(lt),
            None if self.rows_complete => LiveTables::from_instance(&self.instance),
            None => return Err(DeltaError::NotLive),
        };

        let mut u = self.clone(); // decision cache clones to empty-same-budget
        u.epoch = self.epoch + 1;
        u.live = None;

        let nbits = u.instance.pairs().len();
        let mut acc = PairAcc::new(u.sigs.len(), nbits);
        let mut syms: Vec<u32> = Vec::new();
        let mut key: Vec<u32> = Vec::new();

        for (index, e) in delta.edits().iter().enumerate() {
            syms.clear();
            syms.extend(e.row.symbols().iter().map(|s| s.0));
            match e.op {
                EditOp::Insert => {
                    // Newly-shared transitions: settle the window under the
                    // old grouping, then split before the row is scored.
                    for &s in &syms {
                        if lt.ever_shared.contains(s) {
                            continue;
                        }
                        let opp = match e.side {
                            Side::R => &lt.p,
                            Side::P => &lt.r,
                        };
                        if opp.units(s) == 0 {
                            continue;
                        }
                        acc.settle(&u, &lt);
                        lt.ever_shared.insert(s);
                        split_on_shared(&mut lt, e.side.opposite(), s, &mut u.instance);
                    }
                    apply_insert(&mut lt, e.side, &syms, &mut u.instance, &mut acc, &mut key);
                }
                EditOp::Delete => {
                    apply_delete(&mut lt, e.side, &syms, &mut u.instance, &mut acc).map_err(
                        |()| DeltaError::MissingRow {
                            side: e.side,
                            index,
                            row: e.row.display(self.instance.interner()).to_string(),
                        },
                    )?;
                }
            }
        }
        acc.settle(&u, &lt);
        finalize(&mut u, lt, acc);
        Ok(u)
    }
}

/// Splits `side`'s profile groups after `s` entered `ever_shared`: every
/// live row containing `s` re-keys (exposing `s`) and moves to its new
/// group. No class count changes — the moved rows' signatures against all
/// *existing* opposite rows are unchanged (no opposite row contains `s`
/// yet, or `s` would already have been shared).
fn split_on_shared(lt: &mut LiveTables, side: Side, s: u32, instance: &mut Instance) {
    let LiveTables {
        r, p, ever_shared, ..
    } = lt;
    let st = match side {
        Side::R => r,
        Side::P => p,
    };
    let mut key: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    for row in 0..st.row_count() as u32 {
        if st.weight[row as usize] == 0 || !st.row_syms(row).contains(&s) {
            continue;
        }
        let old_p = st.prof_of[row as usize];
        key.clear();
        key.extend(
            st.row_syms(row)
                .iter()
                .map(|&v| if ever_shared.contains(v) { v } else { HOLE }),
        );
        if st.prof_key(old_p) == key.as_slice() {
            continue;
        }
        let w = st.weight[row as usize];
        st.prof_weight[old_p as usize] -= w;
        touched.push(old_p);
        let new_p = match st.find_prof(&key) {
            Some(np) => {
                if st.prof_weight[np as usize] == 0 {
                    // Revive a retired key: repoint its representative.
                    set_rep(st, side, np, row, instance);
                }
                np
            }
            None => {
                let inst = instance
                    .push_symbol_row(side, st.row_syms(row).to_vec().as_slice())
                    .expect("profile representative row matches its schema arity");
                st.inst_rows.push(row);
                st.add_prof(&key, row, inst as u32)
            }
        };
        st.prof_weight[new_p as usize] += w;
        st.prof_of[row as usize] = new_p;
    }
    // Groups whose representative moved away need a surviving one.
    touched.sort_unstable();
    touched.dedup();
    for old_p in touched {
        if st.prof_weight[old_p as usize] == 0 {
            continue; // retired; repair happens class-side at finalize
        }
        let rep = st.prof_rep[old_p as usize];
        if st.prof_of[rep as usize] != old_p || st.weight[rep as usize] == 0 {
            let new_rep = st
                .any_live_row_of(old_p)
                .expect("profile with weight has a live row");
            set_rep(st, side, old_p, new_rep, instance);
        }
    }
}

/// Repoints profile `p`'s representative at `row`, overwriting its
/// instance row in place (signature-preserving: `row` belongs to the same
/// group, see the module docs).
fn set_rep(st: &mut SideTable, side: Side, p: u32, row: u32, instance: &mut Instance) {
    st.prof_rep[p as usize] = row;
    let inst = st.prof_instance[p as usize] as usize;
    instance
        .overwrite_symbol_row(side, inst, st.row_syms(row).to_vec().as_slice())
        .expect("representative rows match their schema arity");
    st.inst_rows[inst] = row;
}

/// Structural insert: +1 multiplicity, profile assignment/revival, window
/// bookkeeping.
fn apply_insert(
    lt: &mut LiveTables,
    side: Side,
    syms: &[u32],
    instance: &mut Instance,
    acc: &mut PairAcc,
    key: &mut Vec<u32>,
) {
    let LiveTables {
        r, p, ever_shared, ..
    } = lt;
    let st = match side {
        Side::R => r,
        Side::P => p,
    };
    let row = match st.find_row(syms) {
        Some(row) => row,
        None => st.add_row(syms),
    };
    st.weight[row as usize] += 1;
    st.bump_units(syms, 1);
    if st.weight[row as usize] == 1 {
        // Fresh or resurrected: (re)compute the group under the *current*
        // holing mask (a tombstoned row's stored profile may predate
        // `ever_shared` growth).
        key.clear();
        key.extend(
            syms.iter()
                .map(|&v| if ever_shared.contains(v) { v } else { HOLE }),
        );
        let prof = match st.find_prof(key) {
            Some(pr) => {
                if st.prof_weight[pr as usize] == 0 {
                    set_rep(st, side, pr, row, instance);
                }
                pr
            }
            None => {
                let inst = instance
                    .push_symbol_row(side, syms)
                    .expect("validated arity");
                st.inst_rows.push(row);
                st.add_prof(key, row, inst as u32)
            }
        };
        st.prof_of[row as usize] = prof;
    }
    let prof = st.prof_of[row as usize];
    acc.touch(side, prof, st.prof_weight[prof as usize]);
    st.prof_weight[prof as usize] += 1;
}

/// Structural delete: −1 multiplicity, representative replacement when the
/// representative row dies but its group survives. `Err(())` when the row
/// has no occurrences.
fn apply_delete(
    lt: &mut LiveTables,
    side: Side,
    syms: &[u32],
    instance: &mut Instance,
    acc: &mut PairAcc,
) -> Result<(), ()> {
    let st = match side {
        Side::R => &mut lt.r,
        Side::P => &mut lt.p,
    };
    let row = st
        .find_row(syms)
        .filter(|&row| st.weight[row as usize] > 0)
        .ok_or(())?;
    st.weight[row as usize] -= 1;
    st.bump_units(syms, -1);
    let prof = st.prof_of[row as usize];
    acc.touch(side, prof, st.prof_weight[prof as usize]);
    st.prof_weight[prof as usize] -= 1;
    if st.weight[row as usize] == 0
        && st.prof_rep[prof as usize] == row
        && st.prof_weight[prof as usize] > 0
    {
        let new_rep = st
            .any_live_row_of(prof)
            .expect("profile with weight has a live row");
        set_rep(st, side, prof, new_rep, instance);
    }
    Ok(())
}

/// Applies the settled count deltas: births append, zero-count classes
/// compact away, the closure is patched or rebuilt, representatives are
/// repaired, and the live tables are attached to the result.
fn finalize(u: &mut Universe, lt: LiveTables, acc: PairAcc) {
    let nbits = u.instance.pairs().len();
    let old_n = u.sigs.len();

    let mut deaths = false;
    for (c, &d) in acc.cdelta.iter().enumerate() {
        let next = (u.counts[c] as i64)
            .checked_add(d)
            .expect("class count overflow");
        assert!(next >= 0, "delta maintenance drove class {c} negative");
        u.counts[c] = next as u64;
        deaths |= next == 0;
    }
    for birth in acc.births {
        if birth.delta == 0 {
            continue;
        }
        assert!(
            birth.delta > 0,
            "delta maintenance removed tuples from a class that never existed"
        );
        let cid = u.sigs.len() as u32;
        u.buckets
            .entry(hash_words(birth.sig.words()))
            .or_default()
            .push(cid);
        u.sig_sizes.push(birth.sig.len() as u32);
        u.sigs.push(birth.sig);
        u.counts.push(birth.delta as u64);
        u.reps.push(birth.rep);
        if !deaths {
            u.closure.push_class(&u.sigs, nbits);
        }
    }

    if deaths {
        // Compact: surviving classes keep their relative order (stable
        // remap), buckets and closure are rebuilt over the survivors.
        let mut keep: Vec<u32> = Vec::with_capacity(u.sigs.len());
        let mut w = 0usize;
        for c in 0..u.sigs.len() {
            if u.counts[c] > 0 {
                u.sigs.swap(w, c);
                u.counts.swap(w, c);
                u.sig_sizes.swap(w, c);
                u.reps.swap(w, c);
                keep.push(c as u32);
                w += 1;
            }
        }
        u.sigs.truncate(w);
        u.counts.truncate(w);
        u.sig_sizes.truncate(w);
        u.reps.truncate(w);
        u.buckets.clear();
        for (c, sig) in u.sigs.iter().enumerate() {
            u.buckets
                .entry(hash_words(sig.words()))
                .or_default()
                .push(c as u32);
        }
        u.closure = ClassClosure::build(&u.sigs, nbits, 1);
        let _ = (old_n, keep);
    }

    // Representative repair: every class must point at instance rows whose
    // content is live. Cheap path: the dead row's *profile* survives, so
    // its (already-live) representative instance row substitutes —
    // signature-preserving. Slow path (profile retired): signature search
    // over live profile pairs with early exit.
    let mut need: Vec<usize> = Vec::new();
    for c in 0..u.sigs.len() {
        let (ri, pi) = u.reps[c];
        let rrow = lt.r.inst_rows[ri as usize];
        let prow = lt.p.inst_rows[pi as usize];
        if lt.r.weight[rrow as usize] > 0 && lt.p.weight[prow as usize] > 0 {
            continue;
        }
        let pr = lt.r.prof_of[rrow as usize];
        let pp = lt.p.prof_of[prow as usize];
        if lt.r.prof_weight(pr) > 0 && lt.p.prof_weight(pp) > 0 {
            u.reps[c] = (
                lt.r.prof_instance[pr as usize],
                lt.p.prof_instance[pp as usize],
            );
        } else {
            need.push(c);
        }
    }
    if !need.is_empty() {
        let pairs = u.instance.pairs();
        let mut scratch = BitSet::empty(nbits);
        'scan: for pr in 0..lt.r.prof_count() as u32 {
            if lt.r.prof_weight(pr) == 0 {
                continue;
            }
            let r_syms = lt.r.rep_syms(pr);
            for pp in 0..lt.p.prof_count() as u32 {
                if lt.p.prof_weight(pp) == 0 {
                    continue;
                }
                pairs.signature_of_into(r_syms, lt.p.rep_syms(pp), &mut scratch);
                if let Some(c) = u.class_for_signature(&scratch) {
                    if let Some(k) = need.iter().position(|&n| n == c) {
                        u.reps[c] = (
                            lt.r.prof_instance[pr as usize],
                            lt.p.prof_instance[pp as usize],
                        );
                        need.swap_remove(k);
                        if need.is_empty() {
                            break 'scan;
                        }
                    }
                }
            }
        }
        assert!(
            need.is_empty(),
            "delta maintenance left classes without live representatives"
        );
    }

    u.distinct_r = lt.r.alive_profiles();
    u.distinct_p = lt.p.alive_profiles();
    u.rows_complete = false;
    u.live = Some(Arc::new(lt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_relation::{Interner, Relation, Schema, Value};
    use std::collections::{BTreeMap, BTreeSet};

    /// A mutable row-list model of an instance, for rebuilding edited data
    /// from scratch next to the incremental path.
    struct Model {
        interner: Arc<Interner>,
        r: Vec<Tuple>,
        p: Vec<Tuple>,
    }

    impl Model {
        fn new(r_rows: &[&[i64]], p_rows: &[&[i64]]) -> Model {
            let interner = Arc::new(Interner::new());
            let tup = |vals: &[i64], it: &Interner| {
                let values: Vec<Value> = vals.iter().map(|&v| Value::int(v)).collect();
                Tuple::intern(it, &values)
            };
            Model {
                r: r_rows.iter().map(|v| tup(v, &interner)).collect(),
                p: p_rows.iter().map(|v| tup(v, &interner)).collect(),
                interner,
            }
        }

        fn tuple(&self, vals: &[i64]) -> Tuple {
            let values: Vec<Value> = vals.iter().map(|&v| Value::int(v)).collect();
            Tuple::intern(&self.interner, &values)
        }

        fn arity(&self, side: Side) -> usize {
            match side {
                Side::R => self.r.first().map_or(2, Tuple::arity),
                Side::P => self.p.first().map_or(2, Tuple::arity),
            }
        }

        fn apply(&mut self, delta: &UniverseDelta) {
            for e in delta.edits() {
                let rows = match e.side {
                    Side::R => &mut self.r,
                    Side::P => &mut self.p,
                };
                match e.op {
                    EditOp::Insert => rows.push(e.row.clone()),
                    EditOp::Delete => {
                        let i = rows
                            .iter()
                            .position(|t| t.symbols() == e.row.symbols())
                            .expect("model delete of present row");
                        rows.remove(i);
                    }
                }
            }
        }

        fn build(&self) -> Universe {
            let names_r: Vec<String> = (0..self.arity(Side::R)).map(|i| format!("A{i}")).collect();
            let names_p: Vec<String> = (0..self.arity(Side::P)).map(|i| format!("B{i}")).collect();
            let refs_r: Vec<&str> = names_r.iter().map(String::as_str).collect();
            let refs_p: Vec<&str> = names_p.iter().map(String::as_str).collect();
            let mut rr = Relation::new(Schema::new("R", &refs_r).unwrap());
            let mut pp = Relation::new(Schema::new("P", &refs_p).unwrap());
            for t in &self.r {
                rr.push_tuple(t.clone()).unwrap();
            }
            for t in &self.p {
                pp.push_tuple(t.clone()).unwrap();
            }
            let inst = Instance::new(Arc::clone(&self.interner), rr, pp).unwrap();
            Universe::build(inst)
        }
    }

    fn mask_classes(mask: &[u64], classes: usize) -> Vec<usize> {
        (0..classes)
            .filter(|&t| mask[t / 64] >> (t % 64) & 1 == 1)
            .collect()
    }

    /// Class structure keyed by signature words: count, and the up/down
    /// closure sets expressed as signature sets (class-id independent).
    #[allow(clippy::type_complexity)]
    fn canon(u: &Universe) -> BTreeMap<Vec<u64>, (u64, BTreeSet<Vec<u64>>, BTreeSet<Vec<u64>>)> {
        let n = u.num_classes();
        let sig_words = |c: usize| u.sig(c as ClassId).words().to_vec();
        (0..n)
            .map(|c| {
                let up = u
                    .closure()
                    .up(c as ClassId)
                    .map(|m| mask_classes(m, n).into_iter().map(sig_words).collect())
                    .unwrap_or_default();
                let down = u
                    .closure()
                    .down(c as ClassId)
                    .map(|m| mask_classes(m, n).into_iter().map(sig_words).collect())
                    .unwrap_or_default();
                (sig_words(c), (u.count(c as ClassId), up, down))
            })
            .collect()
    }

    use crate::universe::ClassId;

    /// Asserts the delta-maintained universe is equivalent (up to class
    /// relabeling) to a from-scratch build of the edited data.
    fn assert_equiv(inc: &Universe, rebuilt: &Universe) {
        assert_eq!(inc.omega_len(), rebuilt.omega_len());
        assert_eq!(inc.total_tuples(), rebuilt.total_tuples());
        assert_eq!(inc.num_classes(), rebuilt.num_classes());
        assert_eq!(canon(inc), canon(rebuilt), "class structure diverged");
        // Every representative must live in the class it represents.
        for c in 0..inc.num_classes() {
            let (ri, pi) = inc.representative(c as ClassId);
            assert_eq!(
                inc.class_of(ri, pi),
                Some(c as ClassId),
                "stale representative for class {c}"
            );
        }
        // The live tables track the exact shared-symbol set.
        let shared = inc
            .live_shared_symbols()
            .expect("delta result carries live tables");
        let cap = rebuilt.instance().interner().len();
        let expect = rebuilt.instance().shared_symbols();
        for s in 0..cap {
            assert_eq!(
                shared.contains(s),
                expect.contains(s),
                "shared-symbol divergence at {s}"
            );
        }
    }

    /// Applies `delta` incrementally and via rebuild and checks equivalence;
    /// returns the incremental result for follow-on checks.
    fn check(model: &mut Model, base: &Universe, delta: &UniverseDelta) -> Universe {
        let inc = base.apply_delta(delta).expect("delta applies");
        model.apply(delta);
        let rebuilt = model.build();
        assert_equiv(&inc, &rebuilt);
        assert_eq!(inc.epoch(), base.epoch() + 1);
        assert_ne!(inc.fingerprint(), base.fingerprint());
        inc
    }

    #[test]
    fn single_insert_matches_rebuild() {
        let mut m = Model::new(&[&[0, 1], &[0, 2], &[2, 2]], &[&[1, 1], &[0, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[1, 0]));
        check(&mut m, &base, &d);
    }

    #[test]
    fn duplicate_insert_only_bumps_counts() {
        let mut m = Model::new(&[&[0, 1], &[0, 2]], &[&[1, 1], &[0, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[0, 1]));
        let inc = check(&mut m, &base, &d);
        assert_eq!(inc.num_classes(), base.num_classes());
    }

    #[test]
    fn delete_matches_rebuild_and_repairs_reps() {
        let mut m = Model::new(
            &[&[0, 1], &[0, 2], &[2, 2], &[1, 0]],
            &[&[1, 1], &[0, 2], &[2, 0]],
        );
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.delete(Side::R, m.tuple(&[0, 1]));
        d.delete(Side::P, m.tuple(&[2, 0]));
        check(&mut m, &base, &d);
    }

    #[test]
    fn class_death_compacts() {
        // Row (5, 6) is the only witness of its signatures; deleting it
        // retires classes.
        let mut m = Model::new(&[&[0, 1], &[5, 6]], &[&[1, 1], &[0, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.delete(Side::R, m.tuple(&[5, 6]));
        let inc = check(&mut m, &base, &d);
        assert!(inc.num_classes() < base.num_classes());
    }

    #[test]
    fn newly_shared_symbol_splits_profiles() {
        // Symbol 7 lives only in P at build time; profiles on P hole it
        // out. Inserting an R row containing 7 makes it shared and must
        // split P's profiles before scoring.
        let mut m = Model::new(&[&[0, 1], &[0, 2]], &[&[7, 1], &[7, 2], &[1, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[7, 0]));
        check(&mut m, &base, &d);
    }

    #[test]
    fn unshared_symbol_keeps_fine_grouping_but_right_classes() {
        // Delete the only R occurrence of a shared symbol: grouping stays
        // finer than necessary but classes must match a rebuild.
        let mut m = Model::new(&[&[0, 1], &[2, 1]], &[&[0, 3], &[2, 4]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.delete(Side::R, m.tuple(&[0, 1]));
        check(&mut m, &base, &d);
    }

    #[test]
    fn insert_then_delete_of_fresh_row_roundtrips() {
        let mut m = Model::new(&[&[0, 1]], &[&[1, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[3, 4]));
        d.delete(Side::R, m.tuple(&[3, 4]));
        let inc = check(&mut m, &base, &d);
        assert_eq!(inc.content_fingerprint(), base.content_fingerprint());
    }

    #[test]
    fn all_rows_of_one_side_deleted() {
        let mut m = Model::new(&[&[0, 1], &[2, 3]], &[&[1, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.delete(Side::P, m.tuple(&[1, 2]));
        let inc = check(&mut m, &base, &d);
        assert_eq!(inc.total_tuples(), 0);
        assert_eq!(inc.num_classes(), 0);
        // And the side can repopulate afterwards.
        let mut d2 = UniverseDelta::new();
        d2.insert(Side::P, m.tuple(&[1, 2]));
        d2.insert(Side::P, m.tuple(&[0, 3]));
        check(&mut m, &inc, &d2);
    }

    #[test]
    fn chained_deltas_accumulate() {
        let mut m = Model::new(&[&[0, 1], &[0, 2]], &[&[1, 1], &[0, 2]]);
        let base = m.build();
        let mut d1 = UniverseDelta::new();
        d1.insert(Side::R, m.tuple(&[2, 2]));
        let u1 = check(&mut m, &base, &d1);
        let mut d2 = UniverseDelta::new();
        d2.delete(Side::R, m.tuple(&[0, 1]));
        d2.insert(Side::P, m.tuple(&[2, 0]));
        let u2 = check(&mut m, &u1, &d2);
        assert_eq!(u2.epoch(), 2);
    }

    #[test]
    fn empty_delta_bumps_epoch_only() {
        let m = Model::new(&[&[0, 1]], &[&[1, 2]]);
        let base = m.build();
        let inc = base.apply_delta(&UniverseDelta::new()).unwrap();
        assert_eq!(inc.epoch(), 1);
        assert_eq!(inc.content_fingerprint(), base.content_fingerprint());
        assert_ne!(inc.fingerprint(), base.fingerprint());
    }

    #[test]
    fn apply_delta_is_deterministic() {
        let mut m = Model::new(&[&[0, 1], &[0, 2]], &[&[1, 1], &[0, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[4, 5]));
        d.insert(Side::P, m.tuple(&[5, 4]));
        d.delete(Side::R, m.tuple(&[0, 1]));
        let a = base.apply_delta(&d).unwrap();
        let b = base.apply_delta(&d).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.counts(), b.counts());
        m.apply(&d);
        assert_equiv(&a, &m.build());
    }

    #[test]
    fn base_universe_is_untouched() {
        let mut m = Model::new(&[&[0, 1]], &[&[1, 2]]);
        let before = m.build();
        let fp = before.fingerprint();
        let counts: Vec<u64> = before.counts().to_vec();
        let mut d = UniverseDelta::new();
        d.insert(Side::R, m.tuple(&[9, 9]));
        let _ = check(&mut m, &before, &d);
        assert_eq!(before.fingerprint(), fp);
        assert_eq!(before.counts(), counts.as_slice());
    }

    #[test]
    fn validation_errors() {
        let m = Model::new(&[&[0, 1]], &[&[1, 2]]);
        let base = m.build();
        let mut d = UniverseDelta::new();
        let bad = Tuple::new(vec![jqi_relation::Symbol(0)]);
        d.insert(Side::R, bad);
        assert!(matches!(
            base.apply_delta(&d),
            Err(DeltaError::ArityMismatch {
                side: Side::R,
                index: 0,
                expected: 2,
                got: 1,
            })
        ));

        let mut d = UniverseDelta::new();
        d.insert(
            Side::P,
            Tuple::new(vec![jqi_relation::Symbol(999), jqi_relation::Symbol(0)]),
        );
        assert!(matches!(
            base.apply_delta(&d),
            Err(DeltaError::UnknownSymbol { symbol: 999, .. })
        ));

        let mut d = UniverseDelta::new();
        d.delete(Side::R, m.tuple(&[0, 2]));
        let err = base.apply_delta(&d).unwrap_err();
        assert!(matches!(err, DeltaError::MissingRow { index: 0, .. }));
        assert!(err.to_string().contains("no remaining occurrences"));
    }

    #[test]
    fn delta_result_supports_further_deltas() {
        let mut m = Model::new(&[&[0, 1], &[2, 3]], &[&[1, 2], &[3, 0]]);
        let base = m.build();
        let mut u = base;
        for step in 0..6i64 {
            let mut d = UniverseDelta::new();
            d.insert(Side::R, m.tuple(&[step + 4, step]));
            if step % 2 == 0 {
                d.insert(Side::P, m.tuple(&[step, step + 4]));
            }
            u = check(&mut m, &u, &d);
        }
        assert_eq!(u.epoch(), 6);
    }
}
