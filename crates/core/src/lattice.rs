//! The lattice of join predicates (§4.2) and the join ratio (§5.3).
//!
//! The lattice is `(P(Ω), ⊆)` with `∅` at the bottom (most general) and `Ω`
//! at the top (most specific). A predicate `θ` is *non-nullable* iff it
//! selects at least one tuple, i.e. iff `θ ⊆ T(t)` for some product tuple
//! `t` — equivalently, iff `θ` is a subset of some class signature. The
//! strategies navigate this sub-lattice; this module provides its structure:
//! maximal nodes, enumeration of non-nullable predicates, and the *join
//! ratio*, the paper's instance-complexity measure.

use crate::error::{InferenceError, Result};
use crate::universe::{ClassId, Universe};
use jqi_relation::BitSet;
use std::collections::HashSet;

/// Classes whose signature is `⊆`-maximal among all class signatures.
///
/// These correspond to the `⊆`-maximal non-nullable join predicates the
/// top-down strategy (Algorithm 3, line 2) asks the user to label first.
pub fn maximal_classes(universe: &Universe) -> Vec<ClassId> {
    let all: Vec<ClassId> = (0..universe.num_classes()).collect();
    maximal_among(universe, &all)
}

/// The `⊆`-maximal classes among `classes`, returned in ascending class-id
/// order.
///
/// Size-bucketed scan instead of the former full-pairwise one: a proper
/// subset is strictly smaller, so a candidate only needs testing against
/// strictly larger signatures — and among those, only against the ones
/// already known maximal (domination is transitive: if `T(c) ⊊ T(o)` and
/// `o` is itself dominated, some maximal class dominates `c` too). Buckets
/// are processed in descending size; the largest bucket is maximal outright
/// since distinct equal-size signatures cannot contain one another.
pub fn maximal_among(universe: &Universe, classes: &[ClassId]) -> Vec<ClassId> {
    let mut by_size: Vec<ClassId> = classes.to_vec();
    by_size.sort_by_key(|&c| (std::cmp::Reverse(universe.sig_size(c)), c));
    let mut maximal: Vec<ClassId> = Vec::new();
    let mut i = 0usize;
    while i < by_size.len() {
        let size = universe.sig_size(by_size[i]);
        // Everything currently in `maximal` has strictly larger signature.
        let larger = maximal.len();
        let mut j = i;
        while j < by_size.len() && universe.sig_size(by_size[j]) == size {
            let c = by_size[j];
            let dominated = maximal[..larger]
                .iter()
                // Sizes differ, so plain subset ⇔ proper subset here.
                .any(|&m| universe.sig(c).is_subset(universe.sig(m)));
            if !dominated {
                maximal.push(c);
            }
            j += 1;
        }
        i = j;
    }
    maximal.sort_unstable();
    maximal
}

/// Classes whose signature is `⊆`-minimal among *informative* signatures is
/// what the bottom-up strategy wants; this helper returns classes sorted by
/// signature size then class id, the deterministic visit order used by BU.
pub fn classes_by_signature_size(universe: &Universe) -> Vec<ClassId> {
    let mut out: Vec<ClassId> = (0..universe.num_classes()).collect();
    out.sort_by_key(|&c| (universe.sig(c).len(), c));
    out
}

/// The join ratio of an instance (§5.3): the average size of the distinct
/// most-specific predicates `N = {θ | ∃t ∈ D. T(t) = θ}`.
///
/// Example 2.1 has twelve distinct signatures of sizes
/// `0,1,2×7,3×3`, hence join ratio `(0 + 1 + 7·2 + 3·3)/12 = 2`.
/// Returns `0.0` for an empty product.
pub fn join_ratio(universe: &Universe) -> f64 {
    let n = universe.num_classes();
    if n == 0 {
        return 0.0;
    }
    let total: usize = universe.sigs().iter().map(BitSet::len).sum();
    total as f64 / n as f64
}

/// Summary statistics of the non-nullable part of the lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeStats {
    /// Number of distinct signatures `|N|` (T-equivalence classes).
    pub num_classes: usize,
    /// Total number of product tuples `|D|`.
    pub product_size: u64,
    /// The join ratio (§5.3).
    pub join_ratio: f64,
    /// Histogram of signature sizes: `size_histogram[s]` = number of
    /// distinct signatures with exactly `s` pairs.
    pub size_histogram: Vec<usize>,
    /// Number of `⊆`-maximal signatures.
    pub num_maximal: usize,
}

impl LatticeStats {
    /// Computes the statistics of `universe`.
    pub fn of(universe: &Universe) -> Self {
        let max_size = universe.sigs().iter().map(BitSet::len).max().unwrap_or(0);
        let mut size_histogram = vec![0usize; max_size + 1];
        for sig in universe.sigs() {
            size_histogram[sig.len()] += 1;
        }
        LatticeStats {
            num_classes: universe.num_classes(),
            product_size: universe.total_tuples(),
            join_ratio: join_ratio(universe),
            size_histogram,
            num_maximal: maximal_classes(universe).len(),
        }
    }
}

/// Enumerates all non-nullable join predicates — every `θ ⊆ T(t)` for some
/// tuple `t` — deduplicated.
///
/// The count can be exponential in the largest signature size (the paper
/// notes all of `P(Ω)` is non-nullable when two fully-equal rows exist), so
/// the enumeration aborts with [`InferenceError::UniverseTooLarge`] once more
/// than `limit` distinct predicates have been produced.
pub fn non_nullable_predicates(universe: &Universe, limit: usize) -> Result<Vec<BitSet>> {
    let mut seen: HashSet<BitSet> = HashSet::new();
    let mut out: Vec<BitSet> = Vec::new();
    let nbits = universe.omega_len();
    for sig in universe.sigs() {
        let pairs: Vec<usize> = sig.iter().collect();
        let k = pairs.len();
        assert!(k < 64, "signature too wide to enumerate subsets");
        for mask in 0u64..(1u64 << k) {
            let theta = BitSet::from_iter(
                nbits,
                pairs
                    .iter()
                    .enumerate()
                    .filter(|(b, _)| mask >> *b & 1 == 1)
                    .map(|(_, &p)| p),
            );
            if seen.insert(theta.clone()) {
                out.push(theta);
                if out.len() > limit {
                    return Err(InferenceError::UniverseTooLarge {
                        classes: out.len(),
                        limit,
                    });
                }
            }
        }
    }
    // Deterministic order: by size, then lexicographic on words.
    out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    Ok(out)
}

/// Non-nullable predicates grouped by size, as the synthetic experiments
/// (§5.2) use them: `groups[s]` holds all goal predicates with `|θG| = s`.
pub fn goals_by_size(universe: &Universe, limit: usize) -> Result<Vec<Vec<BitSet>>> {
    let all = non_nullable_predicates(universe, limit)?;
    let max = all.iter().map(BitSet::len).max().unwrap_or(0);
    let mut groups: Vec<Vec<BitSet>> = vec![Vec::new(); max + 1];
    for theta in all {
        let s = theta.len();
        groups[s].push(theta);
    }
    Ok(groups)
}

/// Renders the non-nullable lattice (plus Ω) as a Graphviz DOT graph —
/// Figure 4 of the paper for Example 2.1.
///
/// Nodes are non-nullable predicates; nodes with a corresponding tuple
/// (some `t` with `T(t) = θ`) are drawn boxed, as in the figure. Edges are
/// the Hasse covers of the `⊆` order restricted to the drawn nodes, with Ω
/// added on top. Aborts like [`non_nullable_predicates`] if the lattice
/// exceeds `limit` nodes.
pub fn hasse_dot(universe: &Universe, limit: usize) -> Result<String> {
    let mut nodes = non_nullable_predicates(universe, limit)?;
    let omega = universe.omega();
    if !nodes.contains(&omega) {
        nodes.push(omega);
    }
    let instance = universe.instance();
    let sig_set: HashSet<&BitSet> = universe.sigs().iter().collect();
    let label = |theta: &BitSet| -> String {
        if theta.is_empty() {
            "∅".to_string()
        } else if theta == &universe.omega() && !sig_set.contains(theta) {
            "Ω".to_string()
        } else {
            theta
                .iter()
                .map(|k| {
                    let (i, j) = instance.pairs().decode(k);
                    format!(
                        "({},{})",
                        instance.r().schema().attr_name(i),
                        instance.p().schema().attr_name(j)
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        }
    };
    let mut out = String::from("digraph lattice {\n  rankdir=BT;\n");
    for (id, theta) in nodes.iter().enumerate() {
        let shape = if sig_set.contains(theta) {
            "box"
        } else {
            "ellipse"
        };
        out.push_str(&format!(
            "  n{id} [shape={shape}, label=\"{}\"];\n",
            label(theta)
        ));
    }
    // Hasse covers: θa → θb iff θa ⊊ θb with nothing strictly between.
    for (a, ta) in nodes.iter().enumerate() {
        for (b, tb) in nodes.iter().enumerate() {
            if !ta.is_proper_subset(tb) {
                continue;
            }
            let covered = nodes
                .iter()
                .any(|tc| ta.is_proper_subset(tc) && tc.is_proper_subset(tb));
            if !covered {
                out.push_str(&format!("  n{a} -> n{b};\n"));
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    #[test]
    fn example_2_1_join_ratio_is_two() {
        let u = Universe::build(example_2_1());
        assert_eq!(join_ratio(&u), 2.0);
    }

    #[test]
    fn example_2_1_maximal_nodes_match_figure_4() {
        // Figure 4's top boxed row: the three size-3 signatures are maximal,
        // and every other signature is below one of them... in fact the three
        // size-3 ones plus any size-2 signature not contained in them.
        let u = Universe::build(example_2_1());
        let maxc = maximal_classes(&u);
        let mut sizes: Vec<usize> = maxc.iter().map(|&c| u.sig(c).len()).collect();
        sizes.sort();
        // Figure 4: maximal nodes are the three of size 3 and the size-2
        // nodes {(A1,B1),(A2,B1)}, {(A1,B1),(A2,B2)}, {(A1,B3),(A2,B3)},
        // {(A2,B2),(A2,B3)} (each not contained in any size-3 signature).
        assert_eq!(sizes, vec![2, 2, 2, 2, 3, 3, 3]);
        // Every non-maximal signature is a proper subset of some maximal one.
        for c in 0..u.num_classes() {
            if !maxc.contains(&c) {
                assert!(
                    maxc.iter().any(|&mc| u.sig(c).is_proper_subset(u.sig(mc))),
                    "class {c} should be dominated"
                );
            }
        }
    }

    #[test]
    fn maximal_among_matches_full_pairwise_scan() {
        // The size-bucketed scan must agree with the naive definition on
        // arbitrary subsets, including ones whose maxima sit in middle
        // buckets.
        let u = Universe::build(example_2_1());
        let subsets: Vec<Vec<ClassId>> = vec![
            (0..u.num_classes()).collect(),
            (0..u.num_classes()).step_by(2).collect(),
            vec![0],
            vec![],
            (0..u.num_classes())
                .filter(|&c| u.sig_size(c) <= 2)
                .collect(),
        ];
        for subset in subsets {
            let naive: Vec<ClassId> = subset
                .iter()
                .copied()
                .filter(|&c| !subset.iter().any(|&o| u.sig(c).is_proper_subset(u.sig(o))))
                .collect();
            assert_eq!(maximal_among(&u, &subset), naive, "subset {subset:?}");
        }
    }

    #[test]
    fn non_nullable_enumeration_matches_brute_force() {
        let u = Universe::build(example_2_1());
        let got = non_nullable_predicates(&u, 10_000).unwrap();
        // Brute force: θ over all P(Ω) with Ω of 6 bits, keep those with a
        // selecting tuple.
        let nbits = u.omega_len();
        let mut expect = 0usize;
        for mask in 0u64..(1 << nbits) {
            let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
            if u.sigs().iter().any(|sig| theta.is_subset(sig)) {
                expect += 1;
            }
        }
        assert_eq!(got.len(), expect);
        // Sorted by size and deduplicated.
        assert!(got.windows(2).all(|w| w[0].len() <= w[1].len()));
        let set: HashSet<&BitSet> = got.iter().collect();
        assert_eq!(set.len(), got.len());
    }

    #[test]
    fn enumeration_respects_limit() {
        let u = Universe::build(example_2_1());
        let e = non_nullable_predicates(&u, 3).unwrap_err();
        assert!(matches!(e, InferenceError::UniverseTooLarge { .. }));
    }

    #[test]
    fn goals_by_size_partitions() {
        let u = Universe::build(example_2_1());
        let groups = goals_by_size(&u, 10_000).unwrap();
        // The empty predicate is the only size-0 goal.
        assert_eq!(groups[0].len(), 1);
        assert!(groups[0][0].is_empty());
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, non_nullable_predicates(&u, 10_000).unwrap().len());
        for (s, group) in groups.iter().enumerate() {
            assert!(group.iter().all(|t| t.len() == s));
        }
    }

    #[test]
    fn stats_are_consistent() {
        let u = Universe::build(example_2_1());
        let st = LatticeStats::of(&u);
        assert_eq!(st.num_classes, 12);
        assert_eq!(st.product_size, 12);
        assert_eq!(st.join_ratio, 2.0);
        // 1 of size 0, 1 of size 1, 7 of size 2, 3 of size 3 (§5.3).
        assert_eq!(st.size_histogram, vec![1, 1, 7, 3]);
        assert_eq!(st.num_maximal, 7);
    }

    #[test]
    fn classes_by_signature_size_is_sorted() {
        let u = Universe::build(example_2_1());
        let order = classes_by_signature_size(&u);
        assert_eq!(order.len(), 12);
        assert!(order
            .windows(2)
            .all(|w| u.sig(w[0]).len() <= u.sig(w[1]).len()));
    }

    #[test]
    fn figure_4_dot_rendering() {
        let u = Universe::build(example_2_1());
        let dot = hasse_dot(&u, 10_000).unwrap();
        // The full non-nullable lattice: ∅, six size-1 nodes, twelve
        // size-2, three size-3, plus Ω — 23 nodes, of which the twelve
        // signatures are boxed. (Figure 4 draws a subset of the size-2
        // layer — only the boxed ones — for readability; the node/box
        // distinction is the same.)
        let node_count = dot.matches("shape=").count();
        let boxed = dot.matches("shape=box").count();
        assert_eq!(node_count, 23);
        assert_eq!(boxed, 12, "one boxed node per T-equivalence class");
        assert!(dot.contains("label=\"∅\""));
        assert!(dot.contains("label=\"Ω\""));
        assert!(dot.contains("rankdir=BT"));
        // Hasse property spot check: ∅ (n0, smallest in sorted order) has
        // outgoing edges only to size-1 nodes — never directly to size ≥ 2.
        let preds = non_nullable_predicates(&u, 10_000).unwrap();
        assert!(preds[0].is_empty());
        for line in dot.lines().filter(|l| l.contains("n0 ->")) {
            let target: usize = line
                .trim()
                .trim_start_matches("n0 -> n")
                .trim_end_matches(';')
                .parse()
                .unwrap();
            assert_eq!(preds[target].len(), 1, "non-cover edge from ∅: {line}");
        }
    }

    #[test]
    fn empty_universe_stats() {
        use jqi_relation::InstanceBuilder;
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(join_ratio(&u), 0.0);
        let st = LatticeStats::of(&u);
        assert_eq!(st.num_classes, 0);
        assert_eq!(st.size_histogram, vec![0]);
    }
}
