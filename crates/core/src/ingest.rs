//! Streaming universe construction: folding row chunks into weighted join
//! profiles with peak memory `O(distinct profiles)`, not `O(rows)`.
//!
//! [`Universe::build`] requires the full instance in RAM before the first
//! profile is extracted. But the universe itself only depends on the
//! *weighted distinct join profiles* of each side — a Z-set-shaped
//! representation where every row is a `+1` weight delta on one profile
//! key. This module ingests a stream of [`RowChunk`]s, folds each chunk
//! into per-thread `profile key → (weight, first row, representative)`
//! maps, merges the maps deterministically, and hands the resulting
//! weighted profiles to the same pair-loop kernel the materialized build
//! uses. Rows are dropped the moment their chunk is folded; what stays
//! resident is one representative [`Tuple`] and one counter per *distinct*
//! profile.
//!
//! # Two passes, one bounded memory footprint
//!
//! Canonicalizing a row to its profile key requires knowing which symbols
//! occur on **both** sides — information only complete once the whole
//! stream has been seen. A single-pass fold would have to keep full rows
//! until the shared set stabilizes, which is exactly the `O(rows)` cost
//! streaming exists to avoid. [`Universe::build_streaming`] therefore takes
//! a *restartable* chunk source and makes two passes:
//!
//! 1. **Shared scan** — fold per-side symbol-occurrence sets (memory
//!    `O(distinct symbols)`), intersect them into the shared set.
//! 2. **Profile fold** — re-stream the chunks, canonicalize each row with
//!    the now-exact shared set, and fold weighted profile maps in
//!    parallel workers fed through a bounded channel.
//!
//! Seeded generators (e.g. `jqi_datagen::stream`) replay for free, so the
//! second pass costs one more generation sweep, never a materialization.
//! Callers that know the shared set up front (or accept a superset — see
//! [`Universe::build_streaming_with_shared`]) can skip pass 1 and stay
//! strictly single-pass.
//!
//! # Determinism
//!
//! Each side's chunks arrive in a fixed order, so every row has a global
//! index (chunk base + offset). Workers record the *minimum* index at
//! which each profile key was seen; the merge orders profiles by that
//! index. The result — profile order, representatives, class ids, counts —
//! is identical to [`Universe::build`] on the materialized equivalent,
//! for every thread count and chunk size (property-tested in
//! `tests/properties.rs`).

use crate::delta::LiveTables;
use crate::universe::{Profile, Universe};
use jqi_relation::bitset::WORD_BITS;
use jqi_relation::{BitSet, RowChunk, Side, StreamSchema, Tuple};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;

/// Options for a streaming ingestion run.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Ingestion worker threads folding chunks into profile maps. `1`
    /// folds inline on the calling thread (no channel, no spawn).
    pub threads: usize,
    /// Bounded-channel capacity, in chunks, between the chunk source and
    /// the ingestion workers. Caps in-flight row memory at
    /// `capacity × chunk bytes` while letting generation overlap folding.
    pub channel_chunks: usize,
    /// Hard ceiling on tracked accumulator bytes: ingestion panics when
    /// the profile maps outgrow it. A memory blow-up (a stream whose
    /// profiles do *not* collapse) then fails fast — in CI, the bench
    /// smoke job dies with a message instead of OOMing the runner.
    pub byte_ceiling: Option<usize>,
}

impl IngestOptions {
    /// Options with the given worker count and defaults otherwise.
    pub fn with_threads(threads: usize) -> Self {
        IngestOptions {
            threads: threads.max(1),
            channel_chunks: 2 * threads.max(1),
            byte_ceiling: None,
        }
    }

    /// Sets the tracked-byte ceiling (see [`IngestOptions::byte_ceiling`]).
    pub fn with_byte_ceiling(mut self, bytes: usize) -> Self {
        self.byte_ceiling = Some(bytes);
        self
    }
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions::with_threads(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

/// What a streaming build measured about itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Rows streamed into side `R`.
    pub rows_r: u64,
    /// Rows streamed into side `P`.
    pub rows_p: u64,
    /// Chunks consumed (second pass).
    pub chunks: u64,
    /// Distinct R-side join profiles after the fold.
    pub distinct_r: usize,
    /// Distinct P-side join profiles after the fold.
    pub distinct_p: usize,
    /// Peak tracked bytes of the profile accumulators across all workers —
    /// the streaming build's resident ingestion state. Excludes the
    /// bounded channel (`channel_chunks × chunk bytes`, a configured
    /// constant) and the final universe itself.
    pub peak_tracked_bytes: usize,
    /// What the rows would occupy if materialized as interned tuples —
    /// the memory the streaming path avoids holding.
    pub materialized_row_bytes: u64,
    /// Worker threads the fold ran with.
    pub threads: usize,
}

/// Estimated per-entry overhead of a profile accumulator beyond its key
/// and representative symbols: the hash-map slot, the counter/index
/// fields, and allocator slack.
const ACC_ENTRY_OVERHEAD: usize =
    std::mem::size_of::<ProfileAcc>() + 2 * std::mem::size_of::<Tuple>() + 48;

/// Heap bytes a materialized interned row would cost (symbols + the
/// `Tuple` fat pointer inside a `Vec<Tuple>`).
fn materialized_bytes(arity: usize) -> u64 {
    (std::mem::size_of::<Tuple>() + arity * std::mem::size_of::<u32>()) as u64
}

/// One folded profile: weight, first global row index, representative row.
#[derive(Debug, Clone)]
struct ProfileAcc {
    count: u64,
    first: u64,
    rep: Tuple,
}

/// A per-worker (or merged) profile map for one side.
#[derive(Debug, Default)]
struct SideAcc {
    map: HashMap<Box<[u32]>, ProfileAcc>,
    /// Tracked resident bytes of `map` (keys, reps, entry overhead).
    bytes: usize,
}

impl SideAcc {
    /// Folds one row (at global index `row`) into the map. Returns the
    /// tracked-byte delta (0 for a duplicate profile).
    fn fold(&mut self, key: Box<[u32]>, row: u64, tuple: &Tuple) -> usize {
        match self.map.entry(key) {
            Entry::Occupied(mut e) => {
                let acc = e.get_mut();
                acc.count += 1;
                // Chunks may fold out of order across workers: keep the
                // earliest row as the representative.
                if row < acc.first {
                    acc.first = row;
                    acc.rep = tuple.clone();
                }
                0
            }
            Entry::Vacant(e) => {
                let added = e.key().len() * std::mem::size_of::<u32>()
                    + tuple.arity() * std::mem::size_of::<u32>()
                    + ACC_ENTRY_OVERHEAD;
                e.insert(ProfileAcc {
                    count: 1,
                    first: row,
                    rep: tuple.clone(),
                });
                self.bytes += added;
                added
            }
        }
    }

    /// Merges another worker's map into this one (weights add, earliest
    /// first-occurrence wins the representative).
    fn absorb(&mut self, other: SideAcc) {
        for (key, acc) in other.map {
            match self.map.entry(key) {
                Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.count += acc.count;
                    if acc.first < mine.first {
                        mine.first = acc.first;
                        mine.rep = acc.rep;
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(acc);
                }
            }
        }
    }

    /// Drains into `(representatives, weights)` ordered by first
    /// occurrence — the same order the materialized build's
    /// `distinct_profiles` produces.
    fn into_ordered(self) -> (Vec<Tuple>, Vec<u64>) {
        let mut entries: Vec<ProfileAcc> = self.map.into_values().collect();
        entries.sort_unstable_by_key(|a| a.first);
        let counts = entries.iter().map(|a| a.count).collect();
        let reps = entries.into_iter().map(|a| a.rep).collect();
        (reps, counts)
    }
}

/// A growable symbol-occurrence set (plain word vector; `BitSet` has a
/// fixed capacity but the interner grows while the stream is consumed).
#[derive(Debug, Default)]
struct SymbolSet {
    words: Vec<u64>,
}

impl SymbolSet {
    fn insert(&mut self, index: usize) {
        let w = index / WORD_BITS;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (index % WORD_BITS);
    }

    /// Intersection as a `BitSet` of capacity `cap`.
    fn intersect(&self, other: &SymbolSet, cap: usize) -> BitSet {
        let mut out = BitSet::empty(cap);
        for w in 0..self.words.len().min(other.words.len()) {
            let mut bits = self.words[w] & other.words[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let index = w * WORD_BITS + b;
                if index < cap {
                    out.insert(index);
                }
                bits &= bits - 1;
            }
        }
        out
    }
}

/// The first streaming pass: per-side symbol-occurrence sets, intersected
/// into the exact shared-symbol set (the streaming analogue of
/// [`jqi_relation::Instance::shared_symbols`]).
///
/// Memory is `O(distinct symbols)`; rows are inspected and dropped.
pub fn scan_shared_symbols(
    schema: &StreamSchema,
    chunks: impl Iterator<Item = RowChunk>,
) -> BitSet {
    let mut r_syms = SymbolSet::default();
    let mut p_syms = SymbolSet::default();
    for chunk in chunks {
        let set = match chunk.side {
            Side::R => &mut r_syms,
            Side::P => &mut p_syms,
        };
        for row in &chunk.rows {
            for sym in row.symbols() {
                set.insert(sym.index());
            }
        }
    }
    r_syms.intersect(&p_syms, schema.interner().len())
}

/// Folds a whole chunk into a worker's side accumulators, returning the
/// tracked-byte delta.
fn fold_chunk(
    chunk: &RowChunk,
    base: u64,
    shared: &BitSet,
    r_acc: &mut SideAcc,
    p_acc: &mut SideAcc,
) -> usize {
    let acc = match chunk.side {
        Side::R => r_acc,
        Side::P => p_acc,
    };
    let mut added = 0usize;
    for (offset, row) in chunk.rows.iter().enumerate() {
        let key = jqi_relation::stream::profile_key(row, shared);
        added += acc.fold(key, base + offset as u64, row);
    }
    added
}

/// Tracks global accumulator residency across workers and enforces the
/// byte ceiling.
struct ByteTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
    ceiling: Option<usize>,
}

impl ByteTracker {
    fn new(ceiling: Option<usize>) -> Self {
        ByteTracker {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            ceiling,
        }
    }

    /// Adds a worker's post-chunk byte delta; panics past the ceiling.
    fn add(&self, delta: usize) {
        if delta == 0 {
            return;
        }
        let now = self.current.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(now, Ordering::Relaxed);
        if let Some(ceiling) = self.ceiling {
            assert!(
                now <= ceiling,
                "streaming ingestion exceeded its byte ceiling: \
                 {now} tracked accumulator bytes > {ceiling} — the stream's \
                 profiles are not collapsing (distinct profiles ≈ rows?)"
            );
        }
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Runs the profile fold (pass 2) over `chunks`, returning per-side
/// ordered `(reps, counts)` plus statistics.
#[allow(clippy::type_complexity)]
fn fold_stream(
    shared: &BitSet,
    chunks: impl Iterator<Item = RowChunk>,
    options: &IngestOptions,
) -> ((Vec<Tuple>, Vec<u64>), (Vec<Tuple>, Vec<u64>), IngestStats) {
    let threads = options.threads.max(1);
    let tracker = ByteTracker::new(options.byte_ceiling);
    let mut stats = IngestStats {
        threads,
        ..IngestStats::default()
    };

    // Assign each chunk its side's global row base on the coordinator, so
    // row numbering is defined by arrival order regardless of which worker
    // folds the chunk.
    let mut next_base: [u64; 2] = [0, 0];
    let mut arity: [u64; 2] = [0, 0];
    let mut sequence = chunks.map(|chunk| {
        let side = match chunk.side {
            Side::R => 0usize,
            Side::P => 1usize,
        };
        let base = next_base[side];
        next_base[side] += chunk.rows.len() as u64;
        if let Some(row) = chunk.rows.first() {
            arity[side] = row.arity() as u64;
        }
        (base, chunk)
    });

    let (mut r_acc, mut p_acc) = if threads <= 1 {
        let mut r_acc = SideAcc::default();
        let mut p_acc = SideAcc::default();
        for (base, chunk) in &mut sequence {
            stats.chunks += 1;
            let delta = fold_chunk(&chunk, base, shared, &mut r_acc, &mut p_acc);
            tracker.add(delta);
        }
        (r_acc, p_acc)
    } else {
        let (tx, rx) = sync_channel::<(u64, RowChunk)>(options.channel_chunks.max(1));
        // Workers co-own the receiver: if every worker dies (e.g. the
        // byte ceiling trips and the panic unwinds them), the channel
        // disconnects and the blocked feeder's `send` errors out instead
        // of waiting forever on a full buffer.
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let (locals, chunks_seen) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rx = std::sync::Arc::clone(&rx);
                    let tracker = &tracker;
                    s.spawn(move || {
                        let mut r_acc = SideAcc::default();
                        let mut p_acc = SideAcc::default();
                        let mut folded = 0u64;
                        loop {
                            // Hold the receiver lock only to pull one
                            // chunk. A poisoned lock means a sibling
                            // panicked mid-recv — exit quietly and let the
                            // coordinator re-raise the sibling's panic.
                            let Ok(guard) = rx.lock() else { break };
                            let next = guard.recv();
                            drop(guard);
                            let Ok((base, chunk)) = next else { break };
                            folded += 1;
                            let delta = fold_chunk(&chunk, base, shared, &mut r_acc, &mut p_acc);
                            tracker.add(delta);
                        }
                        (r_acc, p_acc, folded)
                    })
                })
                .collect();
            drop(rx);
            for pair in &mut sequence {
                if tx.send(pair).is_err() {
                    // Every worker is gone; stop feeding. The join loop
                    // below re-raises whatever killed them.
                    break;
                }
            }
            drop(tx);
            let mut locals = Vec::with_capacity(threads);
            let mut seen = 0u64;
            for h in handles {
                match h.join() {
                    Ok((r, p, folded)) => {
                        seen += folded;
                        locals.push((r, p));
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (locals, seen)
        });
        stats.chunks = chunks_seen;
        let mut r_acc = SideAcc::default();
        let mut p_acc = SideAcc::default();
        for (r, p) in locals {
            r_acc.absorb(r);
            p_acc.absorb(p);
        }
        (r_acc, p_acc)
    };

    stats.rows_r = next_base[0];
    stats.rows_p = next_base[1];
    stats.peak_tracked_bytes = tracker.peak();
    stats.materialized_row_bytes = next_base[0] * materialized_bytes(arity[0] as usize)
        + next_base[1] * materialized_bytes(arity[1] as usize);
    r_acc.bytes = 0; // merged views are not re-tracked
    p_acc.bytes = 0;
    let r = r_acc.into_ordered();
    let p = p_acc.into_ordered();
    stats.distinct_r = r.0.len();
    stats.distinct_p = p.0.len();
    (r, p, stats)
}

impl Universe {
    /// Builds the universe from a **restartable** stream of row chunks,
    /// with peak ingestion memory `O(distinct profiles)` instead of
    /// `O(rows)`.
    ///
    /// `source` is called twice: once for the shared-symbol scan, once for
    /// the profile fold (see the module docs for why two passes are the
    /// memory-honest design). Both passes stream; nothing row-shaped
    /// outlives its chunk. The finished universe is **equivalent to**
    /// [`Universe::build`] on the materialized instance — identical class
    /// signatures, ids, counts, and representative tuples — except that
    /// its embedded instance holds one representative row per distinct
    /// profile rather than every row (so `instance().product_size()` is
    /// the *profile* product; [`Universe::total_tuples`] still reports the
    /// true row product).
    pub fn build_streaming<I>(
        schema: StreamSchema,
        source: impl Fn() -> I,
        threads: usize,
    ) -> (Universe, IngestStats)
    where
        I: Iterator<Item = RowChunk>,
    {
        let shared = scan_shared_symbols(&schema, source());
        Self::build_streaming_with_shared(
            schema,
            shared,
            source(),
            &IngestOptions::with_threads(threads),
        )
    }

    /// [`Universe::build_streaming`] with explicit [`IngestOptions`]
    /// (worker count, channel depth, byte ceiling).
    pub fn build_streaming_with_options<I>(
        schema: StreamSchema,
        source: impl Fn() -> I,
        options: &IngestOptions,
    ) -> (Universe, IngestStats)
    where
        I: Iterator<Item = RowChunk>,
    {
        let shared = scan_shared_symbols(&schema, source());
        Self::build_streaming_with_shared(schema, shared, source(), options)
    }

    /// The single-pass streaming primitive: folds `chunks` into weighted
    /// profiles against a caller-provided `shared` symbol set and
    /// assembles the universe.
    ///
    /// `shared` must contain every symbol occurring on both sides.
    /// Providing exactly the true shared set (what
    /// [`scan_shared_symbols`] computes) reproduces [`Universe::build`]
    /// bit for bit; a strict **superset** still yields correct signatures
    /// and counts but may split profiles finer (more resident
    /// representatives, and class ids follow the finer enumeration).
    /// A set *missing* a genuinely shared symbol is unsound — its
    /// equality bits would be lost.
    pub fn build_streaming_with_shared(
        schema: StreamSchema,
        shared: BitSet,
        chunks: impl Iterator<Item = RowChunk>,
        options: &IngestOptions,
    ) -> (Universe, IngestStats) {
        let ((r_reps, r_counts), (p_reps, p_counts), stats) = fold_stream(&shared, chunks, options);
        let r_profiles: Vec<Profile> = r_counts
            .iter()
            .enumerate()
            .map(|(i, &count)| Profile {
                rep: i as u32,
                count,
            })
            .collect();
        let p_profiles: Vec<Profile> = p_counts
            .iter()
            .enumerate()
            .map(|(i, &count)| Profile {
                rep: i as u32,
                count,
            })
            .collect();
        let instance = schema
            .into_instance(r_reps, p_reps)
            .expect("streamed rows match their declared schemas");
        let universe = Universe::assemble(
            instance,
            shared,
            r_profiles,
            p_profiles,
            options.threads.max(1),
        );
        (universe, stats)
    }

    /// [`Universe::build_streaming`], but the result is **delta-capable**:
    /// it carries live row tables and accepts
    /// [`Universe::apply_delta`](crate::delta) without ever materializing
    /// the instance.
    ///
    /// The memory trade is explicit: where the plain streaming build keeps
    /// `O(distinct profiles)`, the live build keeps `O(distinct rows)` —
    /// every distinct full row with its multiplicity (a Z-set), which is
    /// exactly the state incremental maintenance needs. That is still far
    /// below `O(rows)` materialization for data with duplicate rows, and
    /// the embedded instance still holds representatives only.
    ///
    /// The row fold is single-threaded (the live tables are one sequential
    /// arena; `threads` parallelizes the pair-loop assembly). Profile
    /// enumeration order is first-occurrence, so class ids, signatures,
    /// counts, and representatives are identical to
    /// [`Universe::build_streaming`] on the same stream.
    pub fn build_streaming_live<I>(
        schema: StreamSchema,
        source: impl Fn() -> I,
        threads: usize,
    ) -> (Universe, IngestStats)
    where
        I: Iterator<Item = RowChunk>,
    {
        Self::build_streaming_live_with_options(
            schema,
            source,
            &IngestOptions::with_threads(threads),
        )
    }

    /// [`Universe::build_streaming_live`] with explicit [`IngestOptions`]
    /// (`byte_ceiling` is enforced against the live tables' resident
    /// bytes; `channel_chunks` is unused — the fold is sequential).
    pub fn build_streaming_live_with_options<I>(
        schema: StreamSchema,
        source: impl Fn() -> I,
        options: &IngestOptions,
    ) -> (Universe, IngestStats)
    where
        I: Iterator<Item = RowChunk>,
    {
        let shared = scan_shared_symbols(&schema, source());
        let mut stats = IngestStats {
            threads: options.threads.max(1),
            ..IngestStats::default()
        };
        let mut lt = LiveTables::new(
            schema.side(Side::R).arity(),
            schema.side(Side::P).arity(),
            &shared,
        );
        let mut syms: Vec<u32> = Vec::new();
        let mut arity: [u64; 2] = [
            schema.side(Side::R).arity() as u64,
            schema.side(Side::P).arity() as u64,
        ];
        for chunk in source() {
            stats.chunks += 1;
            let side_slot = match chunk.side {
                Side::R => 0usize,
                Side::P => 1usize,
            };
            for row in &chunk.rows {
                arity[side_slot] = row.arity() as u64;
                syms.clear();
                syms.extend(row.symbols().iter().map(|s| s.0));
                lt.ingest(chunk.side, &syms, false);
            }
            match chunk.side {
                Side::R => stats.rows_r += chunk.rows.len() as u64,
                Side::P => stats.rows_p += chunk.rows.len() as u64,
            }
            let resident = lt.resident_bytes();
            stats.peak_tracked_bytes = stats.peak_tracked_bytes.max(resident);
            if let Some(ceiling) = options.byte_ceiling {
                assert!(
                    resident <= ceiling,
                    "live streaming ingestion exceeded its byte ceiling: \
                     {resident} resident live-table bytes > {ceiling} — the \
                     stream's distinct rows are not collapsing"
                );
            }
        }
        lt.finalize_ingest();
        stats.materialized_row_bytes = stats.rows_r * materialized_bytes(arity[0] as usize)
            + stats.rows_p * materialized_bytes(arity[1] as usize);

        let side_profiles = |st: &crate::delta::SideTable| -> (Vec<Tuple>, Vec<Profile>) {
            let mut reps = Vec::with_capacity(st.prof_count());
            let mut profiles = Vec::with_capacity(st.prof_count());
            for p in 0..st.prof_count() as u32 {
                reps.push(Tuple::new(
                    st.rep_syms(p)
                        .iter()
                        .map(|&s| jqi_relation::Symbol(s))
                        .collect::<Vec<_>>(),
                ));
                profiles.push(Profile {
                    rep: p,
                    count: st.prof_weight(p),
                });
            }
            (reps, profiles)
        };
        let (r_reps, r_profiles) = side_profiles(&lt.r);
        let (p_reps, p_profiles) = side_profiles(&lt.p);
        stats.distinct_r = r_profiles.len();
        stats.distinct_p = p_profiles.len();
        let instance = schema
            .into_instance(r_reps, p_reps)
            .expect("streamed rows match their declared schemas");
        let mut universe = Universe::assemble(
            instance,
            shared,
            r_profiles,
            p_profiles,
            options.threads.max(1),
        );
        universe.live = Some(std::sync::Arc::new(lt));
        (universe, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_relation::Value;

    fn schema() -> StreamSchema {
        StreamSchema::from_names("R", &["A1", "A2"], "P", &["B1"]).unwrap()
    }

    /// 6 R rows collapsing to 2 profiles, 4 P rows collapsing to 3.
    fn chunks(schema: &StreamSchema, chunk_rows: usize) -> Vec<RowChunk> {
        let r_rows: Vec<[i64; 2]> = vec![
            [1, 100],
            [1, 101], // 100/101 occur only in R → same profile as above
            [2, 100],
            [1, 102],
            [2, 103],
            [2, 104],
        ];
        let p_rows: Vec<[i64; 1]> = vec![[1], [2], [1], [3]];
        let mut out = Vec::new();
        for rows in r_rows.chunks(chunk_rows) {
            out.push(RowChunk {
                side: Side::R,
                rows: rows
                    .iter()
                    .map(|r| {
                        schema
                            .intern_row(Side::R, &[Value::int(r[0]), Value::int(r[1])])
                            .unwrap()
                    })
                    .collect(),
            });
        }
        for rows in p_rows.chunks(chunk_rows) {
            out.push(RowChunk {
                side: Side::P,
                rows: rows
                    .iter()
                    .map(|r| schema.intern_row(Side::P, &[Value::int(r[0])]).unwrap())
                    .collect(),
            });
        }
        out
    }

    #[test]
    fn streaming_build_collapses_profiles() {
        let schema = schema();
        let all = chunks(&schema, 2);
        let (u, stats) = Universe::build_streaming(schema, || all.clone().into_iter(), 1);
        assert_eq!(stats.rows_r, 6);
        assert_eq!(stats.rows_p, 4);
        assert_eq!(stats.distinct_r, 2);
        assert_eq!(stats.distinct_p, 3);
        assert_eq!(u.distinct_r_profiles(), 2);
        assert_eq!(u.distinct_p_profiles(), 3);
        // The compact instance holds reps only, but weights are preserved.
        assert_eq!(u.instance().r().len(), 2);
        assert_eq!(u.total_tuples(), 24);
        assert!(stats.peak_tracked_bytes > 0);
        assert!(stats.materialized_row_bytes > stats.peak_tracked_bytes as u64 / 10);
    }

    #[test]
    fn streaming_matches_thread_counts_and_chunk_sizes() {
        let schema0 = schema();
        let base_chunks = chunks(&schema0, 2);
        let (reference, _) =
            Universe::build_streaming(schema0, || base_chunks.clone().into_iter(), 1);
        for threads in [2, 4] {
            for chunk_rows in [1, 3, 100] {
                let s = schema();
                let all = chunks(&s, chunk_rows);
                let (u, _) = Universe::build_streaming(s, || all.clone().into_iter(), threads);
                assert_eq!(u.num_classes(), reference.num_classes());
                assert_eq!(u.counts(), reference.counts());
                assert_eq!(
                    u.sigs(),
                    reference.sigs(),
                    "threads={threads} chunk_rows={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn byte_ceiling_fails_fast() {
        let s = schema();
        let all = chunks(&s, 2);
        let shared = scan_shared_symbols(&s, all.clone().into_iter());
        let options = IngestOptions::with_threads(1).with_byte_ceiling(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Universe::build_streaming_with_shared(s, shared, all.into_iter(), &options)
        }));
        assert!(result.is_err(), "ceiling of 8 bytes must trip");
    }

    #[test]
    fn empty_stream_builds_empty_universe() {
        let s = schema();
        let (u, stats) = Universe::build_streaming(s, std::iter::empty::<RowChunk>, 2);
        assert_eq!(u.num_classes(), 0);
        assert_eq!(u.total_tuples(), 0);
        assert_eq!(stats.rows_r + stats.rows_p, 0);
    }

    #[test]
    fn live_streaming_matches_plain_streaming_and_accepts_deltas() {
        let s0 = schema();
        let all = chunks(&s0, 2);
        let (plain, _) = Universe::build_streaming(s0, || all.clone().into_iter(), 1);
        let s1 = schema();
        let all1 = chunks(&s1, 3);
        let tuple = s1
            .intern_row(Side::R, &[Value::int(3), Value::int(100)])
            .unwrap();
        let (live, stats) = Universe::build_streaming_live(s1, || all1.clone().into_iter(), 2);
        assert_eq!(live.sigs(), plain.sigs());
        assert_eq!(live.counts(), plain.counts());
        assert_eq!(live.fingerprint(), plain.fingerprint());
        assert_eq!(stats.distinct_r, 2);
        assert_eq!(stats.distinct_p, 3);
        assert!(stats.peak_tracked_bytes > 0);
        assert!(live.is_live());
        assert!(!plain.is_live(), "plain streaming build has no row tables");
        assert!(matches!(
            plain.apply_delta(&crate::delta::UniverseDelta::new()),
            Err(crate::delta::DeltaError::NotLive)
        ));
        // The live build takes deltas without ever materializing rows.
        let mut d = crate::delta::UniverseDelta::new();
        d.insert(Side::R, tuple);
        let next = live.apply_delta(&d).unwrap();
        assert_eq!(next.total_tuples(), live.total_tuples() + 4);
        assert_eq!(next.epoch(), 1);
    }

    #[test]
    fn live_byte_ceiling_fails_fast() {
        let s = schema();
        let all = chunks(&s, 2);
        let options = IngestOptions::with_threads(1).with_byte_ceiling(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Universe::build_streaming_live_with_options(s, || all.clone().into_iter(), &options)
        }));
        assert!(result.is_err(), "ceiling of 8 bytes must trip");
    }

    #[test]
    fn shared_superset_keeps_signatures_and_counts() {
        // A superset of the true shared set may split profiles finer but
        // must not change the signature/count multiset.
        let s = schema();
        let all = chunks(&s, 2);
        let exact = scan_shared_symbols(&s, all.clone().into_iter());
        let superset = BitSet::full(s.interner().len());
        let (u_exact, _) = Universe::build_streaming_with_shared(
            s.clone(),
            exact,
            all.clone().into_iter(),
            &IngestOptions::with_threads(1),
        );
        let (u_super, _) = Universe::build_streaming_with_shared(
            s,
            superset,
            all.into_iter(),
            &IngestOptions::with_threads(1),
        );
        assert!(u_super.distinct_r_profiles() >= u_exact.distinct_r_profiles());
        let mut a: Vec<(Vec<usize>, u64)> = u_exact
            .iter()
            .map(|(_, sig, n)| (sig.iter().collect(), n))
            .collect();
        let mut b: Vec<(Vec<usize>, u64)> = u_super
            .iter()
            .map(|(_, sig, n)| (sig.iter().collect(), n))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
