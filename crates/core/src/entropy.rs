//! Tuple entropy, dominance and skylines (§4.4).
//!
//! The *entropy* of an informative tuple `t` w.r.t. a sample `S` is the pair
//! `(min(u⁺,u⁻), max(u⁺,u⁻))` where `u^α` is the number of tuples that
//! become uninformative if `t` is labeled `α`. Lookahead strategies pick the
//! tuple whose entropy sits on the skyline with the best worst case.
//!
//! `entropy2` (Algorithm 5) extends the measure one step further: the
//! quantity of information obtained by labeling `t` *and then any other
//! tuple*, with all counts taken relative to the original sample. The
//! `(∞,∞)` value encodes "labeling `t` with this label ends the inference".
//! [`entropy_k`] generalizes the construction to arbitrary depth.

use crate::certain::{informative_classes, uninformative_count, CountMode};
use crate::sample::{Label, Sample};
use crate::universe::{ClassId, Universe};

/// The entropy pair `(min(u⁺,u⁻), max(u⁺,u⁻))`. `u64::MAX` encodes ∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Entropy {
    /// `min(u⁺, u⁻)` — the guaranteed information gain.
    pub lo: u64,
    /// `max(u⁺, u⁻)` — the optimistic information gain.
    pub hi: u64,
}

/// The `(∞, ∞)` entropy of Algorithm 5 line 4: labeling the tuple with this
/// label leaves no informative tuple, finishing the inference.
pub const ENTROPY_INF: Entropy = Entropy {
    lo: u64::MAX,
    hi: u64::MAX,
};

impl Entropy {
    /// Normalizes `(u⁺, u⁻)` into a `(min, max)` pair.
    pub fn of(u_pos: u64, u_neg: u64) -> Entropy {
        Entropy {
            lo: u_pos.min(u_neg),
            hi: u_pos.max(u_neg),
        }
    }

    /// §4.4 dominance: `e` dominates `e′` iff `e.lo ≥ e′.lo ∧ e.hi ≥ e′.hi`.
    pub fn dominates(&self, other: &Entropy) -> bool {
        self.lo >= other.lo && self.hi >= other.hi
    }
}

impl std::fmt::Display for Entropy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = |v: u64| {
            if v == u64::MAX {
                "∞".to_string()
            } else {
                v.to_string()
            }
        };
        write!(f, "({},{})", d(self.lo), d(self.hi))
    }
}

/// The skyline of a set of entropies: those not dominated by any *other*
/// entropy value in the set (duplicates collapse to one).
pub fn skyline(entropies: &[Entropy]) -> Vec<Entropy> {
    let mut out: Vec<Entropy> = Vec::new();
    for &e in entropies {
        if out.contains(&e) {
            continue;
        }
        if entropies.iter().any(|o| *o != e && o.dominates(&e)) {
            continue;
        }
        out.push(e);
    }
    out
}

/// Selects per Algorithm 4 lines 2–4: let `m = max{min(e)}`; return the
/// skyline entropy with `min(e) = m`. Among entries with `lo = m` the one
/// with maximal `hi` is never dominated, so it is the skyline witness.
pub fn select_best(entropies: &[(ClassId, Entropy)]) -> Option<(ClassId, Entropy)> {
    let m = entropies.iter().map(|(_, e)| e.lo).max()?;
    entropies
        .iter()
        .filter(|(_, e)| e.lo == m)
        .max_by(|(ca, ea), (cb, eb)| ea.hi.cmp(&eb.hi).then(cb.cmp(ca)))
        .copied()
}

/// `u^α_{t,S}`: how many tuples become uninformative if class `c` is labeled
/// `α` (relative to a precomputed `base = uninformative_count(S)`).
fn gain(
    universe: &Universe,
    sample: &Sample,
    base: u64,
    c: ClassId,
    alpha: Label,
    mode: CountMode,
) -> u64 {
    let mut s = sample.clone();
    s.add(universe, c, alpha).expect("class must be unlabeled");
    uninformative_count(universe, &s, mode).saturating_sub(base)
}

/// The one-step entropy of informative class `c` w.r.t. `sample`.
pub fn entropy(universe: &Universe, sample: &Sample, c: ClassId, mode: CountMode) -> Entropy {
    let base = uninformative_count(universe, sample, mode);
    entropy_with_base(universe, sample, base, c, mode)
}

/// Like [`entropy`] with the base count supplied by the caller (so that
/// computing all entropies shares one base computation).
pub fn entropy_with_base(
    universe: &Universe,
    sample: &Sample,
    base: u64,
    c: ClassId,
    mode: CountMode,
) -> Entropy {
    let u_pos = gain(universe, sample, base, c, Label::Positive, mode);
    let u_neg = gain(universe, sample, base, c, Label::Negative, mode);
    Entropy::of(u_pos, u_neg)
}

/// Entropies of all informative classes.
pub fn all_entropies(
    universe: &Universe,
    sample: &Sample,
    mode: CountMode,
) -> Vec<(ClassId, Entropy)> {
    let base = uninformative_count(universe, sample, mode);
    informative_classes(universe, sample)
        .into_iter()
        .map(|c| (c, entropy_with_base(universe, sample, base, c, mode)))
        .collect()
}

/// Algorithm 5: the two-step entropy of informative class `c`.
pub fn entropy2(universe: &Universe, sample: &Sample, c: ClassId, mode: CountMode) -> Entropy {
    entropy_k(universe, sample, c, 2, mode)
}

/// The k-step generalization of Algorithm 5 (`entropyᵏ`); `k = 1` is the
/// plain [`entropy`], `k = 2` is Algorithm 5 verbatim. All uninformative
/// counts are relative to the original sample, per lines 8–9.
///
/// Complexity is `O(|classes|^(k−1))` entropy evaluations; the paper uses
/// `k = 2` as "a good trade-off between keeping a relatively low computation
/// time and minimizing the number of interactions".
pub fn entropy_k(
    universe: &Universe,
    sample: &Sample,
    c: ClassId,
    k: usize,
    mode: CountMode,
) -> Entropy {
    assert!(k >= 1, "lookahead depth must be at least 1");
    let base = uninformative_count(universe, sample, mode);
    entropy_rel(universe, sample, base, c, k, mode)
}

/// Recursive worker: depth-`k` entropy of `c` w.r.t. the *current* sample,
/// with uninformative counts measured against `base` (the original sample's
/// count, per Algorithm 5 lines 8–9).
fn entropy_rel(
    universe: &Universe,
    current: &Sample,
    base: u64,
    c: ClassId,
    k: usize,
    mode: CountMode,
) -> Entropy {
    if k == 1 {
        let u_pos = gain(universe, current, base, c, Label::Positive, mode);
        let u_neg = gain(universe, current, base, c, Label::Negative, mode);
        return Entropy::of(u_pos, u_neg);
    }
    let mut per_label: [Entropy; 2] = [ENTROPY_INF; 2];
    for (idx, alpha) in Label::BOTH.into_iter().enumerate() {
        let mut s1 = current.clone();
        s1.add(universe, c, alpha).expect("class must be unlabeled");
        let informative = informative_classes(universe, &s1);
        if informative.is_empty() {
            // Line 4: e_α = (∞, ∞) — labeling ends the inference.
            per_label[idx] = ENTROPY_INF;
            continue;
        }
        let entries: Vec<(ClassId, Entropy)> = informative
            .into_iter()
            .map(|t2| (t2, entropy_rel(universe, &s1, base, t2, k - 1, mode)))
            .collect();
        // Lines 11–12: skyline element with min(e) = max of mins.
        per_label[idx] = select_best(&entries).expect("entries nonempty").1;
    }
    // Lines 13–14: return e_α with the smaller min (worst case over labels).
    if per_label[0].lo <= per_label[1].lo {
        per_label[0]
    } else {
        per_label[1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::universe::Universe;

    fn class_of(u: &Universe, ri: usize, pi: usize) -> ClassId {
        u.class_of(ri, pi).unwrap()
    }

    #[test]
    fn dominance_examples_from_the_paper() {
        // "(1,2) dominates (1,1) and (0,2), but not (2,2) nor (0,3)."
        let e12 = Entropy { lo: 1, hi: 2 };
        assert!(e12.dominates(&Entropy { lo: 1, hi: 1 }));
        assert!(e12.dominates(&Entropy { lo: 0, hi: 2 }));
        assert!(!e12.dominates(&Entropy { lo: 2, hi: 2 }));
        assert!(!e12.dominates(&Entropy { lo: 0, hi: 3 }));
    }

    /// Figure 5: entropies of all 12 tuples of Example 2.1 for the empty
    /// sample.
    ///
    /// One deviation: for (t2,t1') with T = {(A1,B3)} the paper prints
    /// u⁺ = 2, but Lemma 3.3 gives exactly four supersets of {(A1,B3)}
    /// among the signatures of Figure 3 — (t1,t1'), (t1,t3'), (t2,t3') and
    /// (t3,t2') — so u⁺ = 4 and the entropy is (1,4). The paper's own
    /// Algorithm 5 worked example (§4.4) is consistent with our counting
    /// (see `algorithm_5_worked_example`), so we treat the printed 2 as a
    /// typo.
    #[test]
    fn figure_5_entropies() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        let expected: Vec<((usize, usize), (u64, u64))> = vec![
            ((0, 0), (0, 2)),
            ((0, 1), (0, 1)),
            ((0, 2), (1, 2)),
            ((1, 0), (1, 4)), // paper prints (1,2); see doc comment
            ((1, 1), (1, 1)),
            ((1, 2), (0, 4)),
            ((2, 0), (0, 11)),
            ((2, 1), (0, 2)),
            ((2, 2), (0, 1)),
            ((3, 0), (0, 2)),
            ((3, 1), (1, 1)),
            ((3, 2), (0, 1)),
        ];
        for ((ri, pi), (lo, hi)) in expected {
            let c = class_of(&u, ri, pi);
            let e = entropy(&u, &s, c, CountMode::Tuples);
            assert_eq!(
                (e.lo, e.hi),
                (lo, hi),
                "entropy mismatch for tuple (t{},t{}')",
                ri + 1,
                pi + 1
            );
        }
    }

    /// The paper states the Figure 5 skyline is {(1,2),(0,11)}; with the
    /// corrected (t2,t1') entropy (1,4) — see `figure_5_entropies` — the
    /// skyline is {(1,4),(0,11)}, since (1,4) dominates (1,2).
    #[test]
    fn figure_5_skyline() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        let es: Vec<Entropy> = all_entropies(&u, &s, CountMode::Tuples)
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        let mut sky = skyline(&es);
        sky.sort_by_key(|e| (e.lo, e.hi));
        assert_eq!(
            sky,
            vec![Entropy { lo: 0, hi: 11 }, Entropy { lo: 1, hi: 4 }]
        );
    }

    /// §4.4: L1S on the empty sample picks a tuple with maximal min-entropy.
    /// The paper names (t1,t3') and (t2,t1') as the candidates; with the
    /// corrected counting, (t2,t1') with entropy (1,4) wins the skyline
    /// tie-break over (t1,t3') with (1,2).
    #[test]
    fn l1s_choice_on_empty_sample() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        let entries = all_entropies(&u, &s, CountMode::Tuples);
        let (c, e) = select_best(&entries).unwrap();
        assert_eq!(e, Entropy { lo: 1, hi: 4 });
        let (ri, pi) = u.representative(c);
        assert_eq!(
            (ri, pi),
            (1, 0),
            "expected (t2,t1'), got (t{},t{}')",
            ri + 1,
            pi + 1
        );
    }

    /// The worked entropy² example of §4.4: with
    /// S = {((t1,t3'),+), ((t3,t1'),−)}, entropy²((t2,t1')) = (3,3).
    #[test]
    fn algorithm_5_worked_example() {
        let u = Universe::build(example_2_1());
        let mut s = crate::Sample::new(&u);
        s.add(&u, class_of(&u, 0, 2), crate::Label::Positive)
            .unwrap();
        s.add(&u, class_of(&u, 2, 0), crate::Label::Negative)
            .unwrap();
        // Five informative tuples remain: (t1,t1'),(t2,t1'),(t3,t2'),(t4,t1'),(t4,t2').
        let inf = informative_classes(&u, &s);
        let reps: Vec<(usize, usize)> = inf.iter().map(|&c| u.representative(c)).collect();
        let expected = vec![(0, 0), (1, 0), (2, 1), (3, 0), (3, 1)];
        assert_eq!(
            {
                let mut r = reps.clone();
                r.sort();
                r
            },
            expected
        );
        let e2 = entropy2(&u, &s, class_of(&u, 1, 0), CountMode::Tuples);
        assert_eq!(e2, Entropy { lo: 3, hi: 3 });
    }

    #[test]
    fn entropy_k1_equals_entropy() {
        let u = Universe::build(example_2_1());
        let s = crate::Sample::new(&u);
        for c in 0..u.num_classes() {
            assert_eq!(
                entropy(&u, &s, c, CountMode::Tuples),
                entropy_k(&u, &s, c, 1, CountMode::Tuples)
            );
        }
    }

    #[test]
    fn skyline_of_equal_entropies_is_singleton() {
        let es = vec![Entropy { lo: 1, hi: 2 }, Entropy { lo: 1, hi: 2 }];
        assert_eq!(skyline(&es), vec![Entropy { lo: 1, hi: 2 }]);
    }

    #[test]
    fn select_best_is_deterministic_lowest_class_wins_ties() {
        let entries = vec![
            (4, Entropy { lo: 1, hi: 3 }),
            (2, Entropy { lo: 1, hi: 3 }),
            (7, Entropy { lo: 0, hi: 9 }),
        ];
        let (c, e) = select_best(&entries).unwrap();
        assert_eq!(e, Entropy { lo: 1, hi: 3 });
        assert_eq!(c, 2, "ties broken toward the smallest class id");
    }

    #[test]
    fn infinite_entropy_display() {
        assert_eq!(ENTROPY_INF.to_string(), "(∞,∞)");
        assert_eq!(Entropy::of(2, 1).to_string(), "(1,2)");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn entropies() -> impl Strategy<Value = Vec<Entropy>> {
            prop::collection::vec(
                (0u64..30, 0u64..30).prop_map(|(a, b)| Entropy::of(a, b)),
                1..25,
            )
        }

        proptest! {
            /// The skyline is an antichain…
            #[test]
            fn skyline_is_an_antichain(es in entropies()) {
                let sky = skyline(&es);
                for (i, a) in sky.iter().enumerate() {
                    for (j, b) in sky.iter().enumerate() {
                        if i != j {
                            prop_assert!(!a.dominates(b) || a == b);
                        }
                    }
                }
            }

            /// …that covers the whole set: every entropy is dominated by
            /// (or equal to) some skyline element.
            #[test]
            fn skyline_covers_everything(es in entropies()) {
                let sky = skyline(&es);
                prop_assert!(!sky.is_empty());
                for e in &es {
                    prop_assert!(
                        sky.iter().any(|s| s.dominates(e)),
                        "{e} not covered"
                    );
                }
            }

            /// select_best returns a skyline element maximizing the min
            /// component.
            #[test]
            fn select_best_is_on_the_skyline(es in entropies()) {
                let entries: Vec<(usize, Entropy)> =
                    es.iter().copied().enumerate().collect();
                let (_, best) = select_best(&entries).expect("nonempty");
                let sky = skyline(&es);
                prop_assert!(sky.contains(&best));
                let max_min = es.iter().map(|e| e.lo).max().expect("nonempty");
                prop_assert_eq!(best.lo, max_min);
            }

            /// Dominance is reflexive and transitive on arbitrary triples.
            #[test]
            fn dominance_is_a_preorder(
                a in (0u64..30, 0u64..30),
                b in (0u64..30, 0u64..30),
                c in (0u64..30, 0u64..30),
            ) {
                let (ea, eb, ec) = (
                    Entropy::of(a.0, a.1),
                    Entropy::of(b.0, b.1),
                    Entropy::of(c.0, c.1),
                );
                prop_assert!(ea.dominates(&ea));
                if ea.dominates(&eb) && eb.dominates(&ec) {
                    prop_assert!(ea.dominates(&ec));
                }
            }
        }
    }
}
