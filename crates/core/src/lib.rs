//! Interactive inference of equijoin predicates from labeled tuples.
//!
//! This crate implements the core contribution of *Interactive Inference of
//! Join Queries* (Bonifati, Ciucanu, Staworko — EDBT 2014): a user who
//! cannot write queries labels tuples of the Cartesian product `R × P` as
//! positive or negative examples, and the system infers the equijoin
//! predicate `θ ⊆ attrs(R) × attrs(P)` the user has in mind while asking for
//! as few labels as possible.
//!
//! The building blocks map one-to-one onto the paper:
//!
//! * [`universe`] — the Cartesian product partitioned into *T-equivalence
//!   classes* (tuples sharing the most specific predicate `T(t)`), which is
//!   the granularity at which every other component reasons.
//! * [`sample`] — labeled examples, `T(S⁺)`, and PTIME consistency checking
//!   (§3.1).
//! * [`certain`] — certain / uninformative tuples (Lemmas 3.2–3.4,
//!   Theorem 3.5).
//! * [`lattice`] — the lattice of join predicates, maximal nodes, and the
//!   *join ratio* instance-complexity measure (§4.2, §5.3).
//! * [`entropy`] — tuple entropy, dominance, skylines, and the k-step
//!   lookahead generalization (§4.4).
//! * [`state`] — the incremental [`InferenceState`]: the consistent-predicate
//!   interval, class partition, and entropy caches, updated in O(affected
//!   classes) per label instead of re-derived from scratch per step.
//! * [`strategy`] — RND, BU, TD, L1S, L2S, LkS, and the minimax-optimal
//!   strategy (§4), all reading the session through [`InferenceState`].
//! * [`engine`] — the general inference algorithm (Algorithm 1) driven by an
//!   [`engine::Oracle`].
//! * [`session`] — a step-by-step API for embedding the loop in a real
//!   interactive application.
//!
//! # Example: inferring the flight & hotel query of the paper's introduction
//!
//! ```
//! use jqi_core::paper::flight_hotel;
//! use jqi_core::universe::Universe;
//! use jqi_core::engine::{run_inference, PredicateOracle};
//! use jqi_core::strategy::TopDown;
//!
//! let inst = flight_hotel();
//! // Goal Q2: Flight.To = Hotel.City ∧ Flight.Airline = Hotel.Discount
//! let goal = jqi_core::predicate_from_names(
//!     &inst,
//!     &[("To", "City"), ("Airline", "Discount")],
//! ).unwrap();
//! let universe = Universe::build(inst);
//! let mut oracle = PredicateOracle::new(goal.clone());
//! let run = run_inference(&universe, &mut TopDown::new(), &mut oracle).unwrap();
//! // The inferred predicate selects exactly the same tuples as the goal.
//! assert_eq!(
//!     universe.instance().equijoin(&run.predicate),
//!     universe.instance().equijoin(&goal),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certain;
pub mod delta;
pub mod engine;
pub mod entropy;
pub mod error;
pub mod ingest;
pub mod lattice;
pub mod paper;
pub mod paths;
pub mod sample;
pub mod session;
pub mod state;
pub mod strategy;
pub mod universe;

pub use certain::CountMode;
pub use delta::{DeltaError, EditOp, RowEdit, UniverseDelta};
pub use entropy::Entropy;
pub use error::{InferenceError, Result};
pub use ingest::{scan_shared_symbols, IngestOptions, IngestStats};
pub use sample::{Label, Sample};
pub use session::{Candidate, OwnedSession, Session};
pub use state::{ClassState, InferenceState, RebindReport};
pub use strategy::{DynStrategy, Strategy, StrategyConfig, StrategyKind};
pub use universe::{ClassId, DecisionCacheStats, Universe, DEFAULT_DECISION_CACHE_BYTES};

use jqi_relation::{BitSet, Instance};

/// Builds a join predicate from `(R-attribute, P-attribute)` name pairs.
///
/// This is the main entry point for constructing goal predicates in tests,
/// benchmarks and applications.
pub fn predicate_from_names(
    instance: &Instance,
    pairs: &[(&str, &str)],
) -> jqi_relation::Result<BitSet> {
    let mut theta = instance.pairs().bottom();
    for (a, b) in pairs {
        theta.insert(instance.pair_index_by_name(a, b)?);
    }
    Ok(theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;

    #[test]
    fn predicate_from_names_builds_expected_bits() {
        let inst = example_2_1();
        let theta = predicate_from_names(&inst, &[("A1", "B1"), ("A2", "B3")]).unwrap();
        assert_eq!(theta.len(), 2);
        assert!(theta.contains(inst.pair_index(0, 0)));
        assert!(theta.contains(inst.pair_index(1, 2)));
    }

    #[test]
    fn predicate_from_names_rejects_unknown() {
        let inst = example_2_1();
        assert!(predicate_from_names(&inst, &[("A1", "Bogus")]).is_err());
        assert!(predicate_from_names(&inst, &[("Bogus", "B1")]).is_err());
    }
}
