//! T-equivalence classes of the Cartesian product.
//!
//! Two product tuples `t, t′ ∈ D = R × P` with `T(t) = T(t′)` are
//! interchangeable for inference: every join predicate selects either both
//! or neither, so labeling one immediately renders the other uninformative
//! (Lemmas 3.3–3.4). The paper exploits this observation when defining the
//! *join ratio* ("if two tuples are selected by the same most specific join
//! predicate, then they are basically equivalent w.r.t. the inference
//! process"). We push it further and make the equivalence classes the
//! primary data structure: a [`Universe`] partitions `D` into classes of
//! equal signature, and all strategies reason over classes weighted by
//! multiplicity. This is what makes TPC-H-scale products (10⁷–10⁸ tuples)
//! tractable: the number of *distinct* signatures stays small.
//!
//! # Construction: profile deduplication before pair enumeration
//!
//! [`Universe::build`] never walks the raw `|R| · |P|` product. It first
//! canonicalizes each row to its *join profile* — the row's symbol tuple
//! restricted to symbols occurring in the opposite relation (see
//! [`Instance::r_profile_key`]) — and deduplicates rows into weighted
//! distinct profiles. Two rows with equal profiles produce identical
//! signatures against every opposite row, so the pair loop only has to
//! visit `distinct_R · distinct_P` profile pairs, multiplying the two
//! profile counts into the class weight. Total cost:
//!
//! * `O(|R| · n + |P| · m)` hashing to deduplicate rows into profiles,
//! * `O(distinct_R · distinct_P · n)` symbol-map lookups for the remaining
//!   pair loop (`n = arity(R)`), using a per-P-profile index from value
//!   symbols to column masks,
//!
//! instead of the former `O(|R| · |P| · n)`. On duplicate-heavy instances
//! (the TPC-H regime the paper targets: 10⁷–10⁸ product tuples, a handful
//! of distinct signatures) this is orders of magnitude less work. When the
//! remaining profile-pair loop is still large it is parallelized with
//! `std::thread::scope` over R-profile chunks; the per-thread class tables
//! are merged in chunk order, so class ids, counts, and representatives are
//! **identical** to the sequential build. P relations of any arity are
//! supported: column masks are multi-word (`bitset::or_shifted`), not
//! capped at 64 attributes.
//!
//! The pre-deduplication row-pair loop is kept as
//! [`Universe::build_rowpair_reference`] — an executable specification used
//! by the equivalence property tests and as the baseline of the `scaling`
//! benchmark.

use jqi_relation::bitset::{hash_words, or_shifted, word_count};
use jqi_relation::{BitSet, Instance, Tuple};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Identifier of a T-equivalence class (an index into [`Universe`] tables).
pub type ClassId = usize;

/// Below this much profile-pair work, [`Universe::build`] stays
/// single-threaded: thread spawn/merge overhead would dominate.
const PARALLEL_THRESHOLD: u64 = 1 << 15;

/// The Cartesian product of an instance, partitioned into T-equivalence
/// classes.
#[derive(Debug, Clone)]
pub struct Universe {
    instance: Instance,
    /// Distinct signatures; `sigs[c]` is `T(t)` for every tuple of class `c`.
    sigs: Vec<BitSet>,
    /// `|T(t)|` per class, precomputed: the BU/TD orderings consult it on
    /// every step and popcounting the signature each time would dominate.
    sig_sizes: Vec<u32>,
    /// Number of product tuples in each class.
    counts: Vec<u64>,
    /// One representative `(ri, pi)` product tuple per class.
    reps: Vec<(u32, u32)>,
    /// Construction-time hash buckets (signature word-hash → candidate
    /// class ids), kept so [`Universe::class_of`] is O(1) expected instead
    /// of a linear scan over all signatures.
    buckets: HashMap<u64, Vec<u32>>,
    /// Number of distinct R-side / P-side join profiles the build
    /// enumerated (`|R|` / `|P|` for the reference build).
    distinct_r: usize,
    distinct_p: usize,
}

/// One distinct join profile of a relation side: its first (representative)
/// row and the number of rows that collapse into it.
#[derive(Debug, Clone, Copy)]
struct Profile {
    rep: u32,
    count: u64,
}

/// Deduplicates profile keys in first-occurrence order.
fn distinct_profiles(keys: impl Iterator<Item = Box<[u32]>>) -> Vec<Profile> {
    let mut ids: HashMap<Box<[u32]>, u32> = HashMap::new();
    let mut out: Vec<Profile> = Vec::new();
    for (row, key) in keys.enumerate() {
        match ids.entry(key) {
            Entry::Occupied(e) => out[*e.get() as usize].count += 1,
            Entry::Vacant(e) => {
                e.insert(out.len() as u32);
                out.push(Profile {
                    rep: row as u32,
                    count: 1,
                });
            }
        }
    }
    out
}

/// Treats every row as its own profile (the reference, no-dedup path).
fn row_profiles(rows: usize) -> Vec<Profile> {
    (0..rows)
        .map(|r| Profile {
            rep: r as u32,
            count: 1,
        })
        .collect()
}

/// Per-distinct-P-profile symbol index: raw value symbol → P-column mask.
///
/// Masks live in one arena with stride `pwords` words, so arbitrary P
/// arities are supported (no 64-column limit). Only symbols shared with R
/// are indexed — everything else can never match an R cell.
struct PIndex {
    pwords: usize,
    /// One map per distinct P profile, aligned with the profile list.
    maps: Vec<HashMap<u32, u32>>,
    masks: Vec<u64>,
}

impl PIndex {
    fn build(p_rows: &[Tuple], shared: &BitSet, p_profiles: &[Profile], m: usize) -> PIndex {
        let pwords = word_count(m);
        let mut maps = Vec::with_capacity(p_profiles.len());
        let mut masks: Vec<u64> = Vec::new();
        for profile in p_profiles {
            let mut map: HashMap<u32, u32> = HashMap::new();
            for (j, sym) in p_rows[profile.rep as usize].symbols().iter().enumerate() {
                if !shared.contains(sym.index()) {
                    continue;
                }
                let slot = match map.entry(sym.0) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let slot = (masks.len() / pwords.max(1)) as u32;
                        masks.resize(masks.len() + pwords, 0);
                        *e.insert(slot)
                    }
                };
                let base = slot as usize * pwords;
                masks[base + j / 64] |= 1u64 << (j % 64);
            }
            maps.push(map);
        }
        PIndex {
            pwords,
            maps,
            masks,
        }
    }

    #[inline]
    fn mask(&self, slot: u32) -> &[u64] {
        let base = slot as usize * self.pwords;
        &self.masks[base..base + self.pwords]
    }
}

/// A growing table of distinct signatures with weights, representatives and
/// hash buckets. Threads build local tables; [`ClassTable::absorb`] merges
/// them deterministically.
#[derive(Default)]
struct ClassTable {
    sigs: Vec<BitSet>,
    counts: Vec<u64>,
    reps: Vec<(u32, u32)>,
    buckets: HashMap<u64, Vec<u32>>,
}

impl ClassTable {
    /// Records `count` product tuples with the signature in `words`; `rep`
    /// is used only if the signature is new.
    fn observe(&mut self, nbits: usize, words: &[u64], count: u64, rep: (u32, u32)) {
        let bucket = self.buckets.entry(hash_words(words)).or_default();
        for &cid in bucket.iter() {
            if self.sigs[cid as usize].words() == words {
                self.counts[cid as usize] += count;
                return;
            }
        }
        let cid = self.sigs.len() as u32;
        self.sigs.push(BitSet::from_words(nbits, words.to_vec()));
        self.counts.push(count);
        self.reps.push(rep);
        bucket.push(cid);
    }

    /// Merges a later chunk's table into this one. First-occurrence order
    /// is preserved because chunks are absorbed in chunk order.
    fn absorb(&mut self, other: ClassTable) {
        for ((sig, count), rep) in other.sigs.into_iter().zip(other.counts).zip(other.reps) {
            self.observe(sig.capacity(), sig.words(), count, rep);
        }
    }
}

/// The profile-pair kernel: classifies every `(r_profile, p_profile)` pair
/// of `r_chunk × p_profiles` into a local class table.
fn scan_chunk(
    r_rows: &[Tuple],
    r_chunk: &[Profile],
    p_profiles: &[Profile],
    pindex: &PIndex,
    nbits: usize,
    m: usize,
) -> ClassTable {
    let mut table = ClassTable::default();
    let mut scratch: Vec<u64> = vec![0; word_count(nbits)];
    for rp in r_chunk {
        let r_syms = r_rows[rp.rep as usize].symbols();
        for (pid, pp) in p_profiles.iter().enumerate() {
            scratch.iter_mut().for_each(|w| *w = 0);
            let pmap = &pindex.maps[pid];
            for (i, sym) in r_syms.iter().enumerate() {
                if let Some(&slot) = pmap.get(&sym.0) {
                    // Place the m-bit column mask at bit offset i·m.
                    or_shifted(&mut scratch, pindex.mask(slot), i * m);
                }
            }
            table.observe(nbits, &scratch, rp.count * pp.count, (rp.rep, pp.rep));
        }
    }
    table
}

impl Universe {
    /// Partitions the Cartesian product of `instance` into T-equivalence
    /// classes, deduplicating rows into weighted join profiles first and
    /// parallelizing the remaining profile-pair loop when it is large (see
    /// the module docs for the complexity budget).
    ///
    /// The result is deterministic: class ids follow the first-occurrence
    /// order of signatures over the (R-profile, P-profile) pair enumeration,
    /// regardless of thread count.
    pub fn build(instance: Instance) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = distinct_profiles(
            (0..instance.r().len()).map(|ri| instance.r_profile_key(ri, &shared)),
        );
        let p_profiles = distinct_profiles(
            (0..instance.p().len()).map(|pi| instance.p_profile_key(pi, &shared)),
        );
        let work = r_profiles.len() as u64 * p_profiles.len() as u64;
        let threads = if work < PARALLEL_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        Self::assemble(instance, shared, r_profiles, p_profiles, threads)
    }

    /// [`Universe::build`] with an explicit worker count, exposed so the
    /// equivalence property tests (and benches) can force the parallel
    /// merge path on any machine.
    pub fn build_with_parallelism(instance: Instance, threads: usize) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = distinct_profiles(
            (0..instance.r().len()).map(|ri| instance.r_profile_key(ri, &shared)),
        );
        let p_profiles = distinct_profiles(
            (0..instance.p().len()).map(|pi| instance.p_profile_key(pi, &shared)),
        );
        Self::assemble(instance, shared, r_profiles, p_profiles, threads)
    }

    /// The pre-deduplication construction: walk every `(ri, pi)` row pair
    /// of the raw Cartesian product, exactly as the seed implementation
    /// did. `O(|R| · |P| · n)`. Kept as an executable specification (the
    /// property tests assert [`Universe::build`] is equivalent) and as the
    /// baseline the `scaling` benchmark measures speedups against.
    pub fn build_rowpair_reference(instance: Instance) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = row_profiles(instance.r().len());
        let p_profiles = row_profiles(instance.p().len());
        Self::assemble(instance, shared, r_profiles, p_profiles, 1)
    }

    fn assemble(
        instance: Instance,
        shared: BitSet,
        r_profiles: Vec<Profile>,
        p_profiles: Vec<Profile>,
        threads: usize,
    ) -> Self {
        let ps = instance.pairs();
        let m = ps.arity_p();
        let nbits = ps.len();
        let pindex = PIndex::build(instance.p().rows(), &shared, &p_profiles, m);
        let r_rows = instance.r().rows();

        let threads = threads.clamp(1, r_profiles.len().max(1));
        let mut table = if threads <= 1 {
            scan_chunk(r_rows, &r_profiles, &p_profiles, &pindex, nbits, m)
        } else {
            let chunk = r_profiles.len().div_ceil(threads);
            let locals: Vec<ClassTable> = std::thread::scope(|s| {
                let handles: Vec<_> = r_profiles
                    .chunks(chunk)
                    .map(|r_chunk| {
                        let (p_profiles, pindex) = (&p_profiles, &pindex);
                        s.spawn(move || scan_chunk(r_rows, r_chunk, p_profiles, pindex, nbits, m))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("universe scan worker panicked"))
                    .collect()
            });
            let mut merged = ClassTable::default();
            for local in locals {
                merged.absorb(local);
            }
            merged
        };

        let sig_sizes = table.sigs.iter().map(|s| s.len() as u32).collect();
        table.buckets.shrink_to_fit();
        Universe {
            instance,
            sigs: table.sigs,
            sig_sizes,
            counts: table.counts,
            reps: table.reps,
            buckets: table.buckets,
            distinct_r: r_profiles.len(),
            distinct_p: p_profiles.len(),
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of T-equivalence classes (the paper's `|N|`, plus possibly the
    /// ∅-signature class).
    pub fn num_classes(&self) -> usize {
        self.sigs.len()
    }

    /// Number of distinct R-side join profiles enumerated at construction
    /// (`|R|` for [`Universe::build_rowpair_reference`]).
    pub fn distinct_r_profiles(&self) -> usize {
        self.distinct_r
    }

    /// Number of distinct P-side join profiles enumerated at construction.
    pub fn distinct_p_profiles(&self) -> usize {
        self.distinct_p
    }

    /// The signature `T(t)` shared by all tuples of class `c`.
    #[inline]
    pub fn sig(&self, c: ClassId) -> &BitSet {
        &self.sigs[c]
    }

    /// All distinct signatures, indexed by class id.
    pub fn sigs(&self) -> &[BitSet] {
        &self.sigs
    }

    /// `|T(t)|` for class `c`, precomputed at construction.
    #[inline]
    pub fn sig_size(&self, c: ClassId) -> usize {
        self.sig_sizes[c] as usize
    }

    /// Number of product tuples in class `c`.
    #[inline]
    pub fn count(&self, c: ClassId) -> u64 {
        self.counts[c]
    }

    /// A representative `(ri, pi)` product tuple of class `c` — the tuple a
    /// strategy actually shows to the user.
    #[inline]
    pub fn representative(&self, c: ClassId) -> (usize, usize) {
        let (ri, pi) = self.reps[c];
        (ri as usize, pi as usize)
    }

    /// Total number of product tuples, `|D|`.
    pub fn total_tuples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `|Ω|`, the capacity of every predicate bitset.
    pub fn omega_len(&self) -> usize {
        self.instance.pairs().len()
    }

    /// The most specific predicate Ω as a bitset.
    pub fn omega(&self) -> BitSet {
        self.instance.pairs().omega()
    }

    /// Finds the class of an arbitrary product tuple.
    ///
    /// O(1) expected: one signature computation plus a probe of the
    /// construction-time hash buckets (full equality is re-checked, so hash
    /// collisions are harmless).
    pub fn class_of(&self, ri: usize, pi: usize) -> Option<ClassId> {
        let sig = self.instance.signature(ri, pi);
        let bucket = self.buckets.get(&hash_words(sig.words()))?;
        bucket
            .iter()
            .map(|&c| c as usize)
            .find(|&c| self.sigs[c] == sig)
    }

    /// Iterates over `(class, signature, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &BitSet, u64)> + '_ {
        self.sigs
            .iter()
            .enumerate()
            .map(move |(c, s)| (c, s, self.counts[c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use jqi_relation::{InstanceBuilder, Value};

    #[test]
    fn example_2_1_has_twelve_singleton_classes() {
        // Figure 3: all 12 product tuples have pairwise distinct T values.
        let u = Universe::build(example_2_1());
        assert_eq!(u.num_classes(), 12);
        assert_eq!(u.total_tuples(), 12);
        assert!(u.iter().all(|(_, _, n)| n == 1));
    }

    #[test]
    fn signatures_match_direct_computation() {
        let u = Universe::build(example_2_1());
        let inst = u.instance();
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            let c = u.class_of(ri, pi).expect("every tuple has a class");
            assert_eq!(u.sig(c), &sig);
        }
    }

    #[test]
    fn duplicate_rows_collapse_into_classes() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        for _ in 0..3 {
            b.row_r(&[Value::int(1)]);
        }
        for _ in 0..2 {
            b.row_p(&[Value::int(1)]);
        }
        b.row_p(&[Value::int(2)]);
        let u = Universe::build(b.build().unwrap());
        // Two classes: {A=B} with 3·2=6 tuples, ∅ with 3·1=3 tuples.
        assert_eq!(u.num_classes(), 2);
        assert_eq!(u.total_tuples(), 9);
        let mut counts: Vec<u64> = u.counts.clone();
        counts.sort();
        assert_eq!(counts, vec![3, 6]);
        // The duplicated rows collapse into single profiles.
        assert_eq!(u.distinct_r_profiles(), 1);
        assert_eq!(u.distinct_p_profiles(), 2);
    }

    #[test]
    fn sig_sizes_match_popcounts() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            assert_eq!(u.sig_size(c), u.sig(c).len());
        }
    }

    #[test]
    fn representative_belongs_to_its_class() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            let (ri, pi) = u.representative(c);
            assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
        }
    }

    #[test]
    fn wide_relations_cross_word_boundaries() {
        // n=3, m=60 → |Ω| = 180 bits, masks straddle word boundaries.
        let mut b = InstanceBuilder::new();
        let r_attrs: Vec<String> = (0..3).map(|i| format!("A{i}")).collect();
        let p_attrs: Vec<String> = (0..60).map(|j| format!("B{j}")).collect();
        let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
        let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
        b.relation_r("R", &r_refs);
        b.relation_p("P", &p_refs);
        b.row_r(&[Value::int(7), Value::int(8), Value::int(9)]);
        let p_row: Vec<Value> = (0..60)
            .map(|j| Value::int(if j % 2 == 0 { 7 } else { 9 }))
            .collect();
        b.row_p(&p_row);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 1);
        let sig = u.sig(0);
        let inst = u.instance();
        let direct = inst.signature(0, 0);
        assert_eq!(sig, &direct, "fast path must agree with naive signature");
        // Spot checks: A0 (=7) matches even B columns, A2 (=9) odd ones.
        assert!(sig.contains(inst.pair_index(0, 0)));
        assert!(!sig.contains(inst.pair_index(0, 1)));
        assert!(sig.contains(inst.pair_index(2, 1)));
        assert!(!sig.contains(inst.pair_index(1, 5)));
    }

    #[test]
    fn relations_wider_than_64_columns_are_supported() {
        // Regression for the former `m <= 64` assert-panic: P has 70
        // attributes, so each per-symbol column mask spans two words.
        let n = 2usize;
        let m = 70usize;
        let mut b = InstanceBuilder::new();
        let r_attrs: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        let p_attrs: Vec<String> = (0..m).map(|j| format!("B{j}")).collect();
        let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
        let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
        b.relation_r("R", &r_refs);
        b.relation_p("P", &p_refs);
        b.row_r(&[Value::int(1), Value::int(2)]);
        b.row_r(&[Value::int(2), Value::int(3)]);
        // P rows hit columns on both sides of the 64-bit boundary.
        let p_row_a: Vec<Value> = (0..m)
            .map(|j| Value::int(if j == 0 || j == 65 { 1 } else { -1 }))
            .collect();
        let p_row_b: Vec<Value> = (0..m)
            .map(|j| Value::int(if j % 7 == 0 { 2 } else { 3 }))
            .collect();
        b.row_p(&p_row_a);
        b.row_p(&p_row_b);
        let u = Universe::build(b.build().unwrap());
        let inst = u.instance();
        assert_eq!(u.omega_len(), n * m);
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            let c = u.class_of(ri, pi).expect("class exists");
            assert_eq!(u.sig(c), &sig, "wide signature diverges at ({ri},{pi})");
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        // Class ids, counts, and representatives must be identical to the
        // sequential build for every worker count.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1", "B2"]);
        for i in 0..40i64 {
            b.row_r_ints(&[i % 5, (i * 3) % 4]);
        }
        for j in 0..30i64 {
            b.row_p_ints(&[(j * 2) % 5, j % 3]);
        }
        let inst = b.build().unwrap();
        let seq = Universe::build_with_parallelism(inst.clone(), 1);
        for threads in [2, 3, 4, 7] {
            let par = Universe::build_with_parallelism(inst.clone(), threads);
            assert_eq!(
                seq.sigs, par.sigs,
                "signatures diverge at {threads} threads"
            );
            assert_eq!(
                seq.counts, par.counts,
                "counts diverge at {threads} threads"
            );
            assert_eq!(seq.reps, par.reps, "reps diverge at {threads} threads");
        }
    }

    #[test]
    fn dedup_build_matches_rowpair_reference() {
        // Duplicate-heavy instance: the deduplicated build must produce the
        // same signature/count multiset and total as the row-pair loop.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1"]);
        for i in 0..24i64 {
            b.row_r_ints(&[i % 3, (i % 2) + 100]); // second column unmatchable
        }
        for j in 0..18i64 {
            b.row_p_ints(&[j % 4]);
        }
        let inst = b.build().unwrap();
        let fast = Universe::build(inst.clone());
        let reference = Universe::build_rowpair_reference(inst);
        assert_eq!(fast.total_tuples(), reference.total_tuples());
        let key = |u: &Universe| {
            let mut v: Vec<(BitSet, u64)> = u.iter().map(|(_, s, n)| (s.clone(), n)).collect();
            v.sort();
            v
        };
        assert_eq!(key(&fast), key(&reference));
        // Representatives land in their own class in both builds.
        for u in [&fast, &reference] {
            for c in 0..u.num_classes() {
                let (ri, pi) = u.representative(c);
                assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
            }
        }
        assert!(fast.distinct_r_profiles() < 24);
    }

    #[test]
    fn class_of_probes_buckets() {
        let u = Universe::build(example_2_1());
        for (ri, pi) in u.instance().product().collect::<Vec<_>>() {
            let c = u.class_of(ri, pi).expect("class exists");
            assert_eq!(u.sig(c), &u.instance().signature(ri, pi));
        }
        // A signature that does not occur maps to no class: build a probe
        // instance whose only signature is Ω-sized, then ask for ∅.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        b.row_p(&[Value::int(2)]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 2);
        assert!(u.class_of(0, 0).is_some());
    }

    #[test]
    fn empty_relation_yields_no_classes() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 0);
        assert_eq!(u.total_tuples(), 0);
    }
}
