//! T-equivalence classes of the Cartesian product.
//!
//! Two product tuples `t, t′ ∈ D = R × P` with `T(t) = T(t′)` are
//! interchangeable for inference: every join predicate selects either both
//! or neither, so labeling one immediately renders the other uninformative
//! (Lemmas 3.3–3.4). The paper exploits this observation when defining the
//! *join ratio* ("if two tuples are selected by the same most specific join
//! predicate, then they are basically equivalent w.r.t. the inference
//! process"). We push it further and make the equivalence classes the
//! primary data structure: a [`Universe`] partitions `D` into classes of
//! equal signature, and all strategies reason over classes weighted by
//! multiplicity. This is what makes TPC-H-scale products (10⁷–10⁸ tuples)
//! tractable: the number of *distinct* signatures stays small.

use jqi_relation::bitset::{hash_words, word_count};
use jqi_relation::{BitSet, Instance, Symbol};
use std::collections::HashMap;

/// Identifier of a T-equivalence class (an index into [`Universe`] tables).
pub type ClassId = usize;

/// The Cartesian product of an instance, partitioned into T-equivalence
/// classes.
#[derive(Debug, Clone)]
pub struct Universe {
    instance: Instance,
    /// Distinct signatures; `sigs[c]` is `T(t)` for every tuple of class `c`.
    sigs: Vec<BitSet>,
    /// `|T(t)|` per class, precomputed: the BU/TD orderings consult it on
    /// every step and popcounting the signature each time would dominate.
    sig_sizes: Vec<u32>,
    /// Number of product tuples in each class.
    counts: Vec<u64>,
    /// One representative `(ri, pi)` product tuple per class.
    reps: Vec<(u32, u32)>,
}

impl Universe {
    /// Partitions the Cartesian product of `instance` into T-equivalence
    /// classes.
    ///
    /// Complexity: `O(|R|·|P|·n)` symbol-map lookups where `n = arity(R)`,
    /// using a per-`P`-row index from value symbols to column masks, rather
    /// than the naive `O(|R|·|P|·n·m)` comparisons.
    pub fn build(instance: Instance) -> Self {
        let ps = instance.pairs();
        let _n = ps.arity_r();
        let m = ps.arity_p();
        let nbits = ps.len();
        let words = word_count(nbits);

        // Fast path requires each row's P-column mask to fit in u64.
        assert!(
            m <= 64,
            "relations with more than 64 attributes in P are not supported"
        );

        // Per-P-row map: value symbol -> bitmask of P columns holding it.
        let p_rows = instance.p().rows();
        let mut p_index: Vec<HashMap<Symbol, u64>> = Vec::with_capacity(p_rows.len());
        for row in p_rows {
            let mut map: HashMap<Symbol, u64> = HashMap::with_capacity(m);
            for (j, &sym) in row.symbols().iter().enumerate() {
                *map.entry(sym).or_insert(0) |= 1u64 << j;
            }
            p_index.push(map);
        }

        let mut sigs: Vec<BitSet> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        let mut reps: Vec<(u32, u32)> = Vec::new();
        // Buckets: word-hash -> candidate class ids.
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut scratch: Vec<u64> = vec![0; words];

        let r_rows = instance.r().rows();
        for (ri, r_row) in r_rows.iter().enumerate() {
            let r_syms = r_row.symbols();
            for (pi, pmap) in p_index.iter().enumerate() {
                scratch.iter_mut().for_each(|w| *w = 0);
                for (i, sym) in r_syms.iter().enumerate() {
                    if let Some(&mask) = pmap.get(sym) {
                        // Place the m-bit mask at bit offset i·m.
                        let base = i * m;
                        let wi = base / 64;
                        let off = base % 64;
                        scratch[wi] |= mask << off;
                        if off != 0 && off + m > 64 {
                            scratch[wi + 1] |= mask >> (64 - off);
                        }
                    }
                }
                let h = hash_words(&scratch);
                let bucket = buckets.entry(h).or_default();
                let mut found = None;
                for &cid in bucket.iter() {
                    if sigs[cid as usize].words() == scratch.as_slice() {
                        found = Some(cid as usize);
                        break;
                    }
                }
                match found {
                    Some(cid) => counts[cid] += 1,
                    None => {
                        let cid = sigs.len() as u32;
                        sigs.push(BitSet::from_words(nbits, scratch.clone()));
                        counts.push(1);
                        reps.push((ri as u32, pi as u32));
                        bucket.push(cid);
                    }
                }
            }
        }

        let sig_sizes = sigs.iter().map(|s| s.len() as u32).collect();
        Universe {
            instance,
            sigs,
            sig_sizes,
            counts,
            reps,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of T-equivalence classes (the paper's `|N|`, plus possibly the
    /// ∅-signature class).
    pub fn num_classes(&self) -> usize {
        self.sigs.len()
    }

    /// The signature `T(t)` shared by all tuples of class `c`.
    #[inline]
    pub fn sig(&self, c: ClassId) -> &BitSet {
        &self.sigs[c]
    }

    /// All distinct signatures, indexed by class id.
    pub fn sigs(&self) -> &[BitSet] {
        &self.sigs
    }

    /// `|T(t)|` for class `c`, precomputed at construction.
    #[inline]
    pub fn sig_size(&self, c: ClassId) -> usize {
        self.sig_sizes[c] as usize
    }

    /// Number of product tuples in class `c`.
    #[inline]
    pub fn count(&self, c: ClassId) -> u64 {
        self.counts[c]
    }

    /// A representative `(ri, pi)` product tuple of class `c` — the tuple a
    /// strategy actually shows to the user.
    #[inline]
    pub fn representative(&self, c: ClassId) -> (usize, usize) {
        let (ri, pi) = self.reps[c];
        (ri as usize, pi as usize)
    }

    /// Total number of product tuples, `|D|`.
    pub fn total_tuples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `|Ω|`, the capacity of every predicate bitset.
    pub fn omega_len(&self) -> usize {
        self.instance.pairs().len()
    }

    /// The most specific predicate Ω as a bitset.
    pub fn omega(&self) -> BitSet {
        self.instance.pairs().omega()
    }

    /// Finds the class of an arbitrary product tuple.
    pub fn class_of(&self, ri: usize, pi: usize) -> Option<ClassId> {
        let sig = self.instance.signature(ri, pi);
        self.sigs.iter().position(|s| *s == sig)
    }

    /// Iterates over `(class, signature, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &BitSet, u64)> + '_ {
        self.sigs
            .iter()
            .enumerate()
            .map(move |(c, s)| (c, s, self.counts[c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;

    #[test]
    fn example_2_1_has_twelve_singleton_classes() {
        // Figure 3: all 12 product tuples have pairwise distinct T values.
        let u = Universe::build(example_2_1());
        assert_eq!(u.num_classes(), 12);
        assert_eq!(u.total_tuples(), 12);
        assert!(u.iter().all(|(_, _, n)| n == 1));
    }

    #[test]
    fn signatures_match_direct_computation() {
        let u = Universe::build(example_2_1());
        let inst = u.instance();
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            let c = u.class_of(ri, pi).expect("every tuple has a class");
            assert_eq!(u.sig(c), &sig);
        }
    }

    #[test]
    fn duplicate_rows_collapse_into_classes() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        for _ in 0..3 {
            b.row_r(&[Value::int(1)]);
        }
        for _ in 0..2 {
            b.row_p(&[Value::int(1)]);
        }
        b.row_p(&[Value::int(2)]);
        let u = Universe::build(b.build().unwrap());
        // Two classes: {A=B} with 3·2=6 tuples, ∅ with 3·1=3 tuples.
        assert_eq!(u.num_classes(), 2);
        assert_eq!(u.total_tuples(), 9);
        let mut counts: Vec<u64> = u.counts.clone();
        counts.sort();
        assert_eq!(counts, vec![3, 6]);
    }

    #[test]
    fn sig_sizes_match_popcounts() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            assert_eq!(u.sig_size(c), u.sig(c).len());
        }
    }

    #[test]
    fn representative_belongs_to_its_class() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            let (ri, pi) = u.representative(c);
            assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
        }
    }

    #[test]
    fn wide_relations_cross_word_boundaries() {
        use jqi_relation::{InstanceBuilder, Value};
        // n=3, m=60 → |Ω| = 180 bits, masks straddle word boundaries.
        let mut b = InstanceBuilder::new();
        let r_attrs: Vec<String> = (0..3).map(|i| format!("A{i}")).collect();
        let p_attrs: Vec<String> = (0..60).map(|j| format!("B{j}")).collect();
        let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
        let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
        b.relation_r("R", &r_refs);
        b.relation_p("P", &p_refs);
        b.row_r(&[Value::int(7), Value::int(8), Value::int(9)]);
        let p_row: Vec<Value> = (0..60)
            .map(|j| Value::int(if j % 2 == 0 { 7 } else { 9 }))
            .collect();
        b.row_p(&p_row);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 1);
        let sig = u.sig(0);
        let inst = u.instance();
        let direct = inst.signature(0, 0);
        assert_eq!(sig, &direct, "fast path must agree with naive signature");
        // Spot checks: A0 (=7) matches even B columns, A2 (=9) odd ones.
        assert!(sig.contains(inst.pair_index(0, 0)));
        assert!(!sig.contains(inst.pair_index(0, 1)));
        assert!(sig.contains(inst.pair_index(2, 1)));
        assert!(!sig.contains(inst.pair_index(1, 5)));
    }

    #[test]
    fn empty_relation_yields_no_classes() {
        use jqi_relation::InstanceBuilder;
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 0);
        assert_eq!(u.total_tuples(), 0);
    }
}
